"""``repro.serve`` — the batched asyncio solver service.

The paper's decision procedures are pure functions of a canonically
encodable input, which makes them ideal for a long-lived serving tier:
one process answers ``solvability``, ``closure``, ``lower_bound``, and
``chaos_campaign`` queries over newline-delimited JSON-RPC on a TCP (or
Unix) socket, with

* **single-flight deduplication** — identical in-flight requests (same
  sha256 digest of the canonical request encoding) coalesce to one
  computation;
* **micro-batching** — solvability queries arriving within one batch
  window are fanned out through a single
  :func:`~repro.parallel.supervisor.supervised_map` call, inheriting
  its retries, pool recovery, and serial degradation;
* **a disk-backed content-addressed result store**
  (:mod:`repro.serve.store`) so warm restarts answer repeated queries
  from disk without recomputing;
* **per-request telemetry spans** exported as one trace artifact per
  request when a trace directory is configured.

Every served payload is byte-identical to the in-process result of
:func:`repro.serve.handlers.execute` — enforced by audit rule AUD015.
See ``docs/SERVICE.md`` for the protocol and an ops runbook.
"""

from repro.serve.client import ServeClient, call_once
from repro.serve.handlers import CACHEABLE_METHODS, METHODS, execute
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    canonical_json,
    request_digest,
)
from repro.serve.server import (
    ServeConfig,
    ServeStats,
    SolverService,
    run_server,
)
from repro.serve.store import STORE_SCHEMA, ResultStore

__all__ = [
    "PROTOCOL_VERSION",
    "canonical_json",
    "request_digest",
    "METHODS",
    "CACHEABLE_METHODS",
    "execute",
    "STORE_SCHEMA",
    "ResultStore",
    "ServeConfig",
    "ServeStats",
    "SolverService",
    "run_server",
    "ServeClient",
    "call_once",
]
