"""The batched asyncio solver service.

A single-event-loop server speaking the line protocol of
:mod:`repro.serve.protocol` over TCP (and optionally a Unix socket).
Three serving-tier optimizations sit between the socket and
:func:`repro.serve.handlers.execute`, none of which may change a single
result byte (AUD015):

* **content-addressed caching** — cacheable results are persisted in a
  :class:`~repro.serve.store.ResultStore` keyed by the request digest,
  so repeated queries (including across restarts) are disk reads;
* **single-flight deduplication** — the first request for a digest owns
  the computation; identical requests arriving while it is in flight
  await the same future instead of recomputing;
* **micro-batching** — ``solvability`` queries arriving within one
  batch window are fanned out through a single
  :func:`~repro.parallel.supervisor.supervised_map` call, inheriting
  its retries, pool recovery, and serial degradation.

Blocking computation runs in executor threads (and, through the
supervisor, worker processes); the event loop only parses, routes, and
awaits.  When a trace directory is configured, each request records a
private :class:`~repro.telemetry.tracer.Tracer` span and writes one
``repro-trace`` artifact — private, so concurrent requests never
interleave their span trees.
"""

from __future__ import annotations

import asyncio
import functools
import json
import os
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import ReproError, ServeError
from repro.parallel.supervisor import (
    SupervisorConfig,
    supervised_map,
)
from repro.serve.handlers import (
    CACHEABLE_METHODS,
    execute,
    solve_entry,
    validate_solvability_params,
)
from repro.serve.protocol import (
    EXECUTION_ERROR,
    PROTOCOL_VERSION,
    error_line,
    parse_request,
    request_digest,
    response_line,
)
from repro.serve.store import ResultStore
from repro.telemetry import Tracer, write_trace

__all__ = ["ServeConfig", "ServeStats", "SolverService", "run_server"]


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of one service instance.

    ``port=0`` binds an ephemeral port (read it back from
    :attr:`SolverService.port` or the ready file).  ``store_dir=None``
    disables the persistent store (single-flight and batching still
    apply).  ``batch_window`` is the seconds the first queued
    solvability query waits for companions before the batch flushes;
    ``batch_max`` flushes early once that many queries are queued.
    """

    host: str = "127.0.0.1"
    port: int = 0
    unix_path: Optional[str] = None
    store_dir: Optional[str] = None
    store_max_bytes: Optional[int] = None
    batch_window: float = 0.02
    batch_max: int = 16
    workers: Optional[int] = None
    trace_dir: Optional[str] = None
    ready_file: Optional[str] = None
    supervisor: Optional[SupervisorConfig] = None

    def validate(self) -> None:
        if not (0 <= self.port <= 65535):
            raise ReproError(f"port must be 0..65535, got {self.port}")
        if self.batch_window < 0:
            raise ReproError(
                f"batch_window must be non-negative, "
                f"got {self.batch_window}"
            )
        if self.batch_max < 1:
            raise ReproError(
                f"batch_max must be positive, got {self.batch_max}"
            )
        if (
            self.store_max_bytes is not None
            and self.store_max_bytes < 0
        ):
            raise ReproError(
                f"store_max_bytes must be non-negative, "
                f"got {self.store_max_bytes}"
            )
        if self.supervisor is not None:
            self.supervisor.validate()


@dataclass
class ServeStats:
    """Serving-tier counters (the store keeps its own)."""

    requests: int = 0
    errors: int = 0
    cache_hits: int = 0
    coalesced: int = 0
    computed: int = 0
    batches: int = 0
    batched_queries: int = 0
    methods: dict[str, int] = field(default_factory=dict)

    def count_method(self, method: str) -> None:
        self.methods[method] = self.methods.get(method, 0) + 1

    def to_json(self) -> dict[str, Any]:
        return {
            "requests": self.requests,
            "errors": self.errors,
            "cache_hits": self.cache_hits,
            "coalesced": self.coalesced,
            "computed": self.computed,
            "batches": self.batches,
            "batched_queries": self.batched_queries,
            "methods": dict(sorted(self.methods.items())),
        }


@dataclass
class _PendingSolve:
    """One queued solvability query awaiting the next batch flush."""

    digest: str
    params: dict[str, Any]
    future: "asyncio.Future[dict[str, Any]]"


class SolverService:
    """One service instance: sockets, store, dedup map, batch queue."""

    def __init__(self, config: ServeConfig) -> None:
        config.validate()
        self.config = config
        self.stats = ServeStats()
        self.store: Optional[ResultStore] = (
            ResultStore(config.store_dir, config.store_max_bytes)
            if config.store_dir is not None
            else None
        )
        self._inflight: dict[str, "asyncio.Future[dict[str, Any]]"] = {}
        self._batch: list[_PendingSolve] = []
        self._batch_flusher: Optional["asyncio.Task[None]"] = None
        self._servers: list[asyncio.AbstractServer] = []
        self._stopping: Optional[asyncio.Event] = None
        self._request_seq = 0
        if config.trace_dir is not None:
            os.makedirs(config.trace_dir, exist_ok=True)

    # -- lifecycle ----------------------------------------------------

    @property
    def port(self) -> Optional[int]:
        """The bound TCP port (after :meth:`start`)."""
        for server in self._servers:
            for sock in server.sockets or ():
                name = sock.getsockname()
                if isinstance(name, tuple) and len(name) >= 2:
                    return int(name[1])
        return None

    async def start(self) -> None:
        """Bind the configured endpoints and write the ready file."""
        self._stopping = asyncio.Event()
        server = await asyncio.start_server(
            self._serve_connection, self.config.host, self.config.port
        )
        self._servers.append(server)
        if self.config.unix_path is not None:
            if not hasattr(asyncio, "start_unix_server"):
                raise ServeError(
                    "unix sockets are not supported on this platform"
                )
            unix_server = await asyncio.start_unix_server(
                self._serve_connection, path=self.config.unix_path
            )
            self._servers.append(unix_server)
        if self.config.ready_file is not None:
            ready = {
                "host": self.config.host,
                "port": self.port,
                "unix_path": self.config.unix_path,
                "pid": os.getpid(),
                "protocol": PROTOCOL_VERSION,
            }
            tmp = self.config.ready_file + ".tmp"
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(ready, handle)
            os.replace(tmp, self.config.ready_file)

    async def serve_forever(self) -> None:
        """Run until :meth:`stop` is called (starts if not started)."""
        if self._stopping is None:
            await self.start()
        assert self._stopping is not None
        await self._stopping.wait()
        await self._shutdown()

    def stop(self) -> None:
        """Request shutdown (thread-unsafe; use ``call_soon_threadsafe``)."""
        if self._stopping is not None:
            self._stopping.set()

    async def _shutdown(self) -> None:
        for server in self._servers:
            server.close()
        for server in self._servers:
            await server.wait_closed()
        self._servers.clear()
        if self._batch_flusher is not None:
            self._batch_flusher.cancel()
            self._batch_flusher = None
        if (
            self.config.unix_path is not None
            and os.path.exists(self.config.unix_path)
        ):
            try:
                os.remove(self.config.unix_path)
            except OSError:
                pass  # stale socket cleanup is best-effort

    # -- connection handling ------------------------------------------

    async def _serve_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            await self._connection_loop(reader, writer)
        except asyncio.CancelledError:
            # Shutdown cancels connection tasks mid-read.  Ending
            # quietly instead of cancelled keeps asyncio streams (3.11)
            # from logging a spurious connection_made callback error.
            pass

    async def _connection_loop(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while True:
                try:
                    raw = await reader.readline()
                except (ConnectionError, asyncio.LimitOverrunError):
                    break
                if not raw:
                    break
                line = raw.decode("utf-8", errors="replace").strip()
                if not line:
                    continue
                response = await self.handle_line(line)
                writer.write(response.encode("utf-8") + b"\n")
                try:
                    await writer.drain()
                except ConnectionError:
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass  # peer already gone; nothing left to flush

    async def handle_line(self, line: str) -> str:
        """One request line in, one response line out (no newline)."""
        self.stats.requests += 1
        try:
            request_id, method, params = parse_request(line)
        except ServeError as exc:
            self.stats.errors += 1
            return error_line(None, exc.code, str(exc))
        self.stats.count_method(method)
        tracer = (
            Tracer(capture_metrics=False)
            if self.config.trace_dir is not None
            else None
        )
        served: dict[str, Any] = {"cached": False, "coalesced": False}
        span_cm = (
            tracer.span("serve/request", method=method)
            if tracer is not None
            else None
        )
        try:
            if span_cm is not None:
                span_cm.__enter__()
            try:
                result = await self._dispatch(method, params, served)
            except Exception as exc:
                self.stats.errors += 1
                code = (
                    exc.code
                    if isinstance(exc, ServeError)
                    else EXECUTION_ERROR
                )
                if span_cm is not None:
                    span_cm.set_attribute("error", type(exc).__name__)
                    span_cm.set_attribute("code", code)
                return error_line(request_id, code, str(exc))
            if span_cm is not None:
                for key, value in served.items():
                    span_cm.set_attribute(key, value)
            return response_line(request_id, result, served)
        finally:
            if span_cm is not None:
                span_cm.__exit__(None, None, None)
            if tracer is not None:
                self._write_request_trace(tracer, served)

    def _write_request_trace(
        self, tracer: Tracer, served: dict[str, Any]
    ) -> None:
        assert self.config.trace_dir is not None
        self._request_seq += 1
        digest = served.get("digest", "direct")
        name = f"req-{self._request_seq:06d}-{str(digest)[:12]}.json"
        path = os.path.join(self.config.trace_dir, name)
        try:
            write_trace(path, tracer)
        except (OSError, ReproError):
            pass  # tracing is observability, never a request failure

    # -- dispatch -----------------------------------------------------

    async def _dispatch(
        self,
        method: str,
        params: dict[str, Any],
        served: dict[str, Any],
    ) -> dict[str, Any]:
        if method == "stats":
            return self._stats_result()
        if method not in CACHEABLE_METHODS:
            # health (and any future uncacheable method): run inline,
            # still through the parity-audited executor.
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(
                None, functools.partial(execute, method, params)
            )
        digest = request_digest(method, params)
        served["digest"] = digest
        inflight = self._inflight.get(digest)
        if inflight is not None:
            self.stats.coalesced += 1
            served["coalesced"] = True
            return await asyncio.shield(inflight)
        if self.store is not None:
            hit = self.store.get(digest)
            if hit is not None:
                self.stats.cache_hits += 1
                served["cached"] = True
                return hit
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[dict[str, Any]]" = loop.create_future()
        # Coalesced awaiters retrieve the outcome; when there are none,
        # this no-op retrieval keeps asyncio from logging the exception
        # as never-consumed.
        future.add_done_callback(_consume_outcome)
        self._inflight[digest] = future
        try:
            if method == "solvability":
                # Fail malformed params fast (INVALID_PARAMS) instead
                # of shipping them to the batch fan-out, where they
                # would surface as quarantined workers.
                validate_solvability_params(params)
                result = await self._solve_batched(digest, params)
            else:
                result = await loop.run_in_executor(
                    None, functools.partial(execute, method, params)
                )
        except Exception as exc:
            # Whatever failed, the coalesced awaiters must be released
            # with the same outcome — a stuck single-flight future would
            # hang every duplicate of this digest forever.
            failure = (
                exc
                if isinstance(exc, ServeError)
                else ServeError(
                    f"{method} failed: {type(exc).__name__}: {exc}",
                    EXECUTION_ERROR,
                )
            )
            future.set_exception(failure)
            self._inflight.pop(digest, None)
            raise failure from exc
        self.stats.computed += 1
        if self.store is not None:
            self.store.put(digest, method, result)
        future.set_result(result)
        self._inflight.pop(digest, None)
        return result

    def _stats_result(self) -> dict[str, Any]:
        return {
            "protocol": PROTOCOL_VERSION,
            "serve": self.stats.to_json(),
            "store": (
                self.store.stats.to_json()
                if self.store is not None
                else None
            ),
            "store_entries": (
                len(self.store) if self.store is not None else 0
            ),
            "inflight": len(self._inflight),
            "batch_queue": len(self._batch),
        }

    # -- micro-batching -----------------------------------------------

    async def _solve_batched(
        self, digest: str, params: dict[str, Any]
    ) -> dict[str, Any]:
        """Queue one solvability query and await its batch's flush."""
        loop = asyncio.get_running_loop()
        pending = _PendingSolve(digest, params, loop.create_future())
        self._batch.append(pending)
        if len(self._batch) >= self.config.batch_max:
            await self._flush_batch()
        elif self._batch_flusher is None or self._batch_flusher.done():
            self._batch_flusher = loop.create_task(
                self._flush_after_window()
            )
        return await pending.future

    async def _flush_after_window(self) -> None:
        await asyncio.sleep(self.config.batch_window)
        await self._flush_batch()

    async def _flush_batch(self) -> None:
        """Fan the queued queries out through one supervised map."""
        batch, self._batch = self._batch, []
        if self._batch_flusher is not None:
            if asyncio.current_task() is not self._batch_flusher:
                self._batch_flusher.cancel()
            self._batch_flusher = None
        if not batch:
            return
        self.stats.batches += 1
        self.stats.batched_queries += len(batch)
        loop = asyncio.get_running_loop()
        call = functools.partial(
            supervised_map,
            solve_entry,
            [entry.params for entry in batch],
            workers=self.config.workers,
            config=self.config.supervisor,
            label="serve-solvability",
            on_quarantine="keep",
        )
        try:
            outcome = await loop.run_in_executor(None, call)
        except ReproError as exc:
            failure = ServeError(
                f"solvability batch failed: {exc}", EXECUTION_ERROR
            )
            for entry in batch:
                if not entry.future.done():
                    entry.future.set_exception(failure)
            return
        quarantined = {
            record.index: record for record in outcome.quarantined
        }
        for index, entry in enumerate(batch):
            if entry.future.done():
                continue
            record = quarantined.get(index)
            if record is not None:
                entry.future.set_exception(
                    ServeError(
                        f"solvability failed after "
                        f"{record.attempts} attempt(s): "
                        f"{record.error}: {record.message}",
                        EXECUTION_ERROR,
                    )
                )
                continue
            result = outcome.results[index]
            if result is None:
                entry.future.set_exception(
                    ServeError(
                        "solvability batch dropped a query",
                        EXECUTION_ERROR,
                    )
                )
                continue
            entry.future.set_result(result)


def _consume_outcome(future: "asyncio.Future[dict[str, Any]]") -> None:
    """Mark a single-flight future's exception as retrieved."""
    if not future.cancelled():
        future.exception()


async def run_server(config: ServeConfig) -> None:
    """Build a :class:`SolverService` from ``config`` and serve forever."""
    service = SolverService(config)
    await service.start()
    await service.serve_forever()
