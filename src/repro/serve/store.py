"""Disk-backed content-addressed result store for the solver service.

One JSON file per request digest, written atomically (temp file in the
same directory + ``os.replace``) so a crashed or concurrent writer can
never leave a torn entry.  Every entry embeds

* the store **schema version** — entries written by an older layout are
  treated as misses and recomputed, never misread;
* its own **request digest** — a file renamed or copied to the wrong
  address is detected and dropped;
* a **payload checksum** (sha256 of the canonical JSON of the result) —
  bit-rot or a truncated write is detected on read, the entry is
  discarded, and the service recomputes.

Eviction is LRU by access time under a byte budget.  Access time is
tracked in the entry's file mtime, stamped from an injectable
monotonically increasing clock so tests can drive eviction order
deterministically.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.serve.protocol import canonical_json

__all__ = ["STORE_SCHEMA", "StoreStats", "ResultStore"]

#: Layout version of store entries.  Bump on any change to the entry
#: format; old entries then read as schema mismatches and are recomputed.
STORE_SCHEMA = 1

_ENTRY_SUFFIX = ".json"


def _payload_checksum(result: Any) -> str:
    """sha256 hex of the canonical JSON bytes of a result payload."""
    data = canonical_json(result).encode("utf-8")
    return hashlib.sha256(data).hexdigest()


@dataclass
class StoreStats:
    """Counters the store accumulates over its lifetime (per instance)."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    evictions: int = 0
    corrupt: int = 0
    schema_mismatches: int = 0

    def to_json(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "evictions": self.evictions,
            "corrupt": self.corrupt,
            "schema_mismatches": self.schema_mismatches,
        }


@dataclass
class ResultStore:
    """Content-addressed result cache under ``root`` (created lazily).

    ``max_bytes`` bounds the total size of entry files; ``None`` means
    unbounded.  ``clock`` supplies access timestamps (seconds); inject a
    counter in tests to make LRU eviction order exact.
    """

    root: str
    max_bytes: Optional[int] = None
    clock: Callable[[], float] = time.time
    stats: StoreStats = field(default_factory=StoreStats)

    def __post_init__(self) -> None:
        self._lock = threading.Lock()
        os.makedirs(self.root, exist_ok=True)

    # -- addressing ---------------------------------------------------

    def _path(self, digest: str) -> str:
        return os.path.join(self.root, digest + _ENTRY_SUFFIX)

    def __len__(self) -> int:
        return len(self._digests())

    def _digests(self) -> list[str]:
        try:
            names = os.listdir(self.root)
        except OSError:
            return []
        return sorted(
            name[: -len(_ENTRY_SUFFIX)]
            for name in names
            if name.endswith(_ENTRY_SUFFIX)
        )

    def __contains__(self, digest: str) -> bool:
        return os.path.exists(self._path(digest))

    # -- reads --------------------------------------------------------

    def get(self, digest: str) -> Optional[dict[str, Any]]:
        """The stored result for ``digest``, or ``None`` on any miss.

        Corrupt, misaddressed, and schema-mismatched entries are
        deleted (they would fail identically on every future read) and
        reported as misses; the caller recomputes and overwrites.
        """
        with self._lock:
            path = self._path(digest)
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    entry = json.load(handle)
            except FileNotFoundError:
                self.stats.misses += 1
                return None
            except (OSError, ValueError):
                self.stats.corrupt += 1
                self.stats.misses += 1
                self._discard(path)
                return None
            if not isinstance(entry, dict):
                self.stats.corrupt += 1
                self.stats.misses += 1
                self._discard(path)
                return None
            if entry.get("schema") != STORE_SCHEMA:
                self.stats.schema_mismatches += 1
                self.stats.misses += 1
                self._discard(path)
                return None
            result = entry.get("result")
            if (
                entry.get("digest") != digest
                or entry.get("checksum") != _payload_checksum(result)
            ):
                self.stats.corrupt += 1
                self.stats.misses += 1
                self._discard(path)
                return None
            self.stats.hits += 1
            self._touch(path)
            if isinstance(result, dict):
                return result
            # Results are endpoint dicts by protocol contract; anything
            # else got here through a foreign writer — treat as corrupt.
            self.stats.hits -= 1
            self.stats.corrupt += 1
            self.stats.misses += 1
            self._discard(path)
            return None

    # -- writes -------------------------------------------------------

    def put(
        self, digest: str, method: str, result: dict[str, Any]
    ) -> None:
        """Persist ``result`` under ``digest`` atomically, then evict."""
        entry = {
            "schema": STORE_SCHEMA,
            "digest": digest,
            "method": method,
            "checksum": _payload_checksum(result),
            "result": result,
        }
        data = canonical_json(entry).encode("utf-8")
        with self._lock:
            path = self._path(digest)
            tmp = path + f".tmp-{os.getpid()}-{threading.get_ident()}"
            try:
                with open(tmp, "wb") as handle:
                    handle.write(data)
                os.replace(tmp, path)
            except OSError:
                # A failed write leaves the store exactly as it was;
                # the service still answers from the live computation.
                self._discard(tmp)
                return
            self.stats.writes += 1
            self._touch(path)
            self._evict()

    # -- maintenance --------------------------------------------------

    def _touch(self, path: str) -> None:
        """Stamp ``path``'s access time from the injected clock."""
        stamp = self.clock()
        try:
            os.utime(path, (stamp, stamp))
        except OSError:
            pass  # entry raced an eviction/delete; reads handle it

    def _discard(self, path: str) -> None:
        try:
            os.remove(path)
        except OSError:
            pass  # already gone (or never created): the desired state

    def total_bytes(self) -> int:
        """Total size of all entry files currently on disk."""
        total = 0
        for digest in self._digests():
            try:
                total += os.path.getsize(self._path(digest))
            except OSError:
                continue
        return total

    def _evict(self) -> None:
        """Drop least-recently-used entries until under the byte budget."""
        if self.max_bytes is None:
            return
        entries: list[tuple[float, str, int]] = []
        total = 0
        for digest in self._digests():
            path = self._path(digest)
            try:
                info = os.stat(path)
            except OSError:
                continue
            entries.append((info.st_mtime, path, info.st_size))
            total += info.st_size
        entries.sort()
        for _mtime, path, size in entries:
            if total <= self.max_bytes:
                break
            self._discard(path)
            self.stats.evictions += 1
            total -= size

    def clear(self) -> int:
        """Remove every entry; the number removed."""
        with self._lock:
            digests = self._digests()
            for digest in digests:
                self._discard(self._path(digest))
            return len(digests)
