"""Wire protocol of the solver service: canonical JSON-RPC over lines.

One request per line, one response per line, UTF-8 JSON (a framing that
``asyncio`` streams, netcat, and four lines of any language can speak)::

    → {"jsonrpc": "2.0", "id": 1, "method": "lower_bound",
       "params": {"n": 3, "eps": "1/8"}}
    ← {"jsonrpc": "2.0", "id": 1, "result": {...},
       "served": {"digest": "…", "cached": false, "coalesced": false}}

The ``result`` member is exactly the in-process payload of
:func:`repro.serve.handlers.execute`; serving metadata (digest, cache
provenance) lives in the separate ``served`` member so cached, coalesced,
and freshly computed responses stay byte-identical in ``result`` — the
property audit rule AUD015 enforces.

Requests are keyed by :func:`request_digest`: the sha256 of the
canonical byte encoding (:func:`repro.topology.wire.digest_payload`) of
``(tag, protocol version, method, params)``.  Two requests that decode
to the same structured value digest equally regardless of JSON key
order or whitespace, which is what makes the digest usable as the
single-flight and store key.
"""

from __future__ import annotations

import json
from typing import Any, Optional

from repro.errors import ServeError
from repro.topology.wire import digest_payload

__all__ = [
    "PROTOCOL_VERSION",
    "PARSE_ERROR",
    "INVALID_REQUEST",
    "METHOD_NOT_FOUND",
    "INVALID_PARAMS",
    "EXECUTION_ERROR",
    "canonical_json",
    "request_digest",
    "parse_request",
    "response_line",
    "error_line",
]

#: Version stamp mixed into every request digest: bumping it invalidates
#: every store entry and dedup key at once when the protocol changes.
PROTOCOL_VERSION = 1

#: JSON-RPC 2.0 error codes the service emits.
PARSE_ERROR = -32700
INVALID_REQUEST = -32600
METHOD_NOT_FOUND = -32601
INVALID_PARAMS = -32602
EXECUTION_ERROR = -32000

#: Digest domain separator, so a request digest can never collide with a
#: :func:`~repro.topology.wire.digest_complex` digest.
_DIGEST_TAG = "repro-serve-request"


def canonical_json(payload: Any) -> str:
    """Serialize a JSON payload canonically (sorted keys, no spaces).

    This is the byte-identity currency of the service: AUD015 and the
    CI smoke compare ``canonical_json`` of a served ``result`` against
    ``canonical_json`` of the in-process computation.
    """
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def request_digest(method: str, params: dict[str, Any]) -> str:
    """The content-address of one request (sha256 hex, 64 chars)."""
    return digest_payload((_DIGEST_TAG, PROTOCOL_VERSION, method, params))


def parse_request(line: str) -> tuple[Optional[Any], str, dict[str, Any]]:
    """Parse one request line into ``(id, method, params)``.

    Raises :class:`~repro.errors.ServeError` with the appropriate
    JSON-RPC code on malformed input.  The request id is returned as-is
    (clients choose their own correlation values); ``params`` defaults
    to ``{}``.
    """
    try:
        payload = json.loads(line)
    except ValueError as exc:
        raise ServeError(f"request is not JSON: {exc}", PARSE_ERROR)
    if not isinstance(payload, dict):
        raise ServeError(
            f"request must be a JSON object, got "
            f"{type(payload).__name__}",
            INVALID_REQUEST,
        )
    method = payload.get("method")
    if not isinstance(method, str) or not method:
        raise ServeError(
            "request has no non-empty string 'method'", INVALID_REQUEST
        )
    params = payload.get("params", {})
    if not isinstance(params, dict):
        raise ServeError(
            f"params must be a JSON object, got "
            f"{type(params).__name__}",
            INVALID_PARAMS,
        )
    return payload.get("id"), method, params


def response_line(
    request_id: Optional[Any],
    result: Any,
    served: Optional[dict[str, Any]] = None,
) -> str:
    """Render one success response (without the trailing newline)."""
    envelope: dict[str, Any] = {
        "jsonrpc": "2.0",
        "id": request_id,
        "result": result,
    }
    if served is not None:
        envelope["served"] = served
    return canonical_json(envelope)


def error_line(
    request_id: Optional[Any], code: int, message: str
) -> str:
    """Render one error response (without the trailing newline)."""
    return canonical_json(
        {
            "jsonrpc": "2.0",
            "id": request_id,
            "error": {"code": code, "message": message},
        }
    )
