"""Minimal synchronous client for the solver service.

A blocking line-protocol client over TCP or a Unix socket — enough for
the CLI ``repro client``, the smoke/load scripts, and tests, without
requiring callers to run an event loop.  One request per call; the
connection persists across calls until :meth:`ServeClient.close`.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Optional

from repro.errors import ServeError
from repro.serve.protocol import EXECUTION_ERROR, canonical_json

__all__ = ["ServeClient", "call_once"]


class ServeClient:
    """A blocking JSON-RPC-over-lines connection to one service."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        unix_path: Optional[str] = None,
        timeout: float = 60.0,
    ) -> None:
        self.timeout = timeout
        if unix_path is not None:
            if not hasattr(socket, "AF_UNIX"):
                raise ServeError(
                    "unix sockets are not supported on this platform"
                )
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(unix_path)
        else:
            self._sock = socket.create_connection(
                (host, port), timeout=timeout
            )
        self._reader = self._sock.makefile("r", encoding="utf-8")
        self._seq = 0

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def call_raw(
        self, method: str, params: Optional[dict[str, Any]] = None
    ) -> dict[str, Any]:
        """Send one request; the full response envelope (result/error)."""
        self._seq += 1
        request = canonical_json(
            {
                "jsonrpc": "2.0",
                "id": self._seq,
                "method": method,
                "params": params or {},
            }
        )
        self._sock.sendall(request.encode("utf-8") + b"\n")
        line = self._reader.readline()
        if not line:
            raise ServeError("server closed the connection")
        try:
            envelope = json.loads(line)
        except ValueError as exc:
            raise ServeError(f"malformed response: {exc}")
        if not isinstance(envelope, dict):
            raise ServeError(
                f"malformed response envelope: "
                f"{type(envelope).__name__}"
            )
        return envelope

    def call(
        self, method: str, params: Optional[dict[str, Any]] = None
    ) -> dict[str, Any]:
        """Send one request; the ``result`` payload, or raise the error."""
        envelope = self.call_raw(method, params)
        if "error" in envelope:
            error = envelope["error"]
            if isinstance(error, dict):
                raise ServeError(
                    str(error.get("message", "request failed")),
                    int(error.get("code", EXECUTION_ERROR)),
                )
            raise ServeError(str(error))
        result = envelope.get("result")
        if not isinstance(result, dict):
            raise ServeError("response carries no result object")
        return result


def call_once(
    method: str,
    params: Optional[dict[str, Any]] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    unix_path: Optional[str] = None,
    timeout: float = 60.0,
) -> dict[str, Any]:
    """Connect, issue one request, close; the ``result`` payload."""
    with ServeClient(
        host=host, port=port, unix_path=unix_path, timeout=timeout
    ) as client:
        return client.call(method, params)
