"""In-process server harness for tests, audits, and scripts.

:class:`ServerHandle` hosts a :class:`~repro.serve.server.SolverService`
on a private event loop in a daemon thread, binds an ephemeral port, and
tears everything down on :meth:`ServerHandle.stop` (or context-manager
exit).  Audit rule AUD015 and the serve test suite both drive real
sockets through this harness — the served path under test is the exact
production code path, not a mock.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Optional

from repro.errors import ServeError
from repro.serve.client import ServeClient
from repro.serve.server import ServeConfig, SolverService

__all__ = ["ServerHandle"]

_START_TIMEOUT_S = 30.0


class ServerHandle:
    """A running service on a background thread, stoppable and pokeable."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config if config is not None else ServeConfig()
        self.service: Optional[SolverService] = None
        self.port: Optional[int] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._failure: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(_START_TIMEOUT_S):
            raise ServeError("server failed to start within timeout")
        if self._failure is not None:
            raise ServeError(f"server failed to start: {self._failure}")

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except Exception as exc:
            self._failure = exc
            self._ready.set()

    async def _main(self) -> None:
        service = SolverService(self.config)
        await service.start()
        self.service = service
        self.port = service.port
        self._loop = asyncio.get_running_loop()
        self._ready.set()
        await service.serve_forever()

    # -- client-side conveniences -------------------------------------

    def connect(self, timeout: float = 60.0) -> ServeClient:
        """A fresh TCP client bound to this server."""
        assert self.port is not None
        return ServeClient(
            host=self.config.host, port=self.port, timeout=timeout
        )

    def call(
        self, method: str, params: Optional[dict[str, Any]] = None
    ) -> dict[str, Any]:
        """One request over a throwaway connection; the result payload."""
        with self.connect() as client:
            return client.call(method, params)

    # -- lifecycle ----------------------------------------------------

    def stop(self, timeout: float = _START_TIMEOUT_S) -> None:
        loop, service = self._loop, self.service
        if loop is not None and service is not None:
            try:
                loop.call_soon_threadsafe(service.stop)
            except RuntimeError:
                pass  # loop already closed: the thread is finishing
        self._thread.join(timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
