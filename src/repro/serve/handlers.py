"""In-process endpoint handlers — the service's ground truth.

Every endpoint is a pure function from validated JSON params to a
JSON-serializable, deterministically ordered result dict.  The server
(:mod:`repro.serve.server`) calls :func:`execute` for live requests, the
content-addressed store persists its results verbatim, and audit rule
AUD015 calls it directly to assert that served responses are
byte-identical to in-process computation — so nothing in this module may
depend on ambient state (wall-clock, worker counts, randomness).

Batched solvability fan-outs ship :func:`solve_entry` through
:func:`~repro.parallel.supervisor.supervised_map`; it is module-level
and pure in its payload, per the RPR009 worker contract.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Callable, Optional

from repro.core import (
    aa_lower_bound_iis,
    aa_lower_bound_iis_bc,
    aa_lower_bound_iis_tas,
    aa_upper_bound_iis,
    is_solvable,
)
from repro.core.closure import ClosureComputer
from repro.errors import ReproError, ServeError
from repro.models import ImmediateSnapshotModel
from repro.models.base import ComputationModel
from repro.objects import (
    AugmentedModel,
    BinaryConsensusBox,
    TestAndSetBox,
    beta_input_function,
)
from repro.serve.protocol import INVALID_PARAMS, PROTOCOL_VERSION
from repro.tasks import (
    approximate_agreement_task,
    binary_consensus_task,
    liberal_approximate_agreement_task,
    relaxed_consensus_task,
)
from repro.tasks.inputs import input_simplex
from repro.tasks.task import Task
from repro.telemetry import span

__all__ = [
    "METHODS",
    "CACHEABLE_METHODS",
    "execute",
    "solve_entry",
    "validate_solvability_params",
]

#: Methods whose results are content-addressed: pure in their params,
#: so identical requests may be answered from the store or coalesced.
CACHEABLE_METHODS = (
    "solvability",
    "closure",
    "lower_bound",
    "chaos_campaign",
)


def _int_param(
    params: dict[str, Any],
    key: str,
    default: Optional[int] = None,
    minimum: Optional[int] = None,
) -> int:
    """Extract a (bounded) integer parameter or raise INVALID_PARAMS."""
    value = params.get(key, default)
    if value is None:
        raise ServeError(f"missing required param {key!r}", INVALID_PARAMS)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ServeError(
            f"param {key!r} must be an integer, got {value!r}",
            INVALID_PARAMS,
        )
    if minimum is not None and value < minimum:
        raise ServeError(
            f"param {key!r} must be ≥ {minimum}, got {value}",
            INVALID_PARAMS,
        )
    return value


def _fraction_param(
    params: dict[str, Any], key: str, default: Optional[str] = None
) -> Fraction:
    """Extract a rational parameter (``"1/8"`` strings or integers)."""
    value = params.get(key, default)
    if value is None:
        raise ServeError(f"missing required param {key!r}", INVALID_PARAMS)
    if isinstance(value, bool) or not isinstance(value, (str, int)):
        raise ServeError(
            f"param {key!r} must be a rational string like '1/8', "
            f"got {value!r}",
            INVALID_PARAMS,
        )
    try:
        return Fraction(value)
    except (ValueError, ZeroDivisionError) as exc:
        raise ServeError(
            f"param {key!r} is not a rational: {exc}", INVALID_PARAMS
        )


def _choice_param(
    params: dict[str, Any],
    key: str,
    choices: tuple[str, ...],
    default: Optional[str] = None,
) -> str:
    """Extract an enumerated string parameter or raise INVALID_PARAMS."""
    value = params.get(key, default)
    if value not in choices:
        raise ServeError(
            f"param {key!r} must be one of {'/'.join(choices)}, "
            f"got {value!r}",
            INVALID_PARAMS,
        )
    return str(value)


def _bool_param(
    params: dict[str, Any], key: str, default: bool = False
) -> bool:
    value = params.get(key, default)
    if not isinstance(value, bool):
        raise ServeError(
            f"param {key!r} must be a boolean, got {value!r}",
            INVALID_PARAMS,
        )
    return value


def _resolve_model(name: str, n: int) -> ComputationModel:
    """Map a protocol model name to a model instance (CLI-compatible)."""
    if name == "iis":
        return ImmediateSnapshotModel()
    if name == "tas":
        return AugmentedModel(TestAndSetBox())
    # Theorem 4 style: ID-called binary consensus, alternating bits.
    beta = {i: i % 2 for i in range(1, n + 1)}
    return AugmentedModel(BinaryConsensusBox(), beta_input_function(beta))


def _resolve_task(params: dict[str, Any], n: int) -> Task:
    """Build the task named by ``params['task']`` over ``n`` processes."""
    kind = _choice_param(
        params,
        "task",
        ("consensus", "relaxed-consensus", "aa", "liberal-aa"),
    )
    ids = list(range(1, n + 1))
    if kind == "consensus":
        return binary_consensus_task(ids)
    if kind == "relaxed-consensus":
        return relaxed_consensus_task(ids)
    eps = _fraction_param(params, "eps", "1/4")
    m = _int_param(params, "m", 4, minimum=1)
    builder = (
        liberal_approximate_agreement_task
        if kind == "liberal-aa"
        else approximate_agreement_task
    )
    try:
        return builder(ids, eps, m)
    except ReproError as exc:
        raise ServeError(
            f"cannot build {kind} task: {exc}", INVALID_PARAMS
        )


def validate_solvability_params(params: dict[str, Any]) -> None:
    """Parse-check solvability params without running the solver.

    Raises :class:`~repro.errors.ServeError` (``INVALID_PARAMS``) on the
    same inputs :func:`_handle_solvability` would reject.  The serving
    tier calls this *before* queueing a query for the batch fan-out, so
    malformed requests fail fast with the right JSON-RPC code instead
    of surfacing as quarantined workers.
    """
    n = _int_param(params, "n", 2, minimum=2)
    _int_param(params, "rounds", 1, minimum=0)
    _choice_param(params, "model", ("iis", "tas", "bc"), "iis")
    _resolve_task(params, n)


def _handle_solvability(params: dict[str, Any]) -> dict[str, Any]:
    """Decide ``t``-round solvability of a named task in a named model."""
    n = _int_param(params, "n", 2, minimum=2)
    rounds = _int_param(params, "rounds", 1, minimum=0)
    model_name = _choice_param(
        params, "model", ("iis", "tas", "bc"), "iis"
    )
    task = _resolve_task(params, n)
    model = _resolve_model(model_name, n)
    with span(
        "serve/solvability", task=task.name, model=model.name, rounds=rounds
    ):
        # Worker count pinned to 1: the serving tier's parallelism is the
        # batch fan-out itself, and nested pools inside a shipped task
        # would break the RPR009 purity contract.
        solvable = is_solvable(task, model, rounds, workers=1)
    return {
        "task": task.name,
        "model": model.name,
        "n": n,
        "rounds": rounds,
        "solvable": solvable,
    }


def _handle_closure(params: dict[str, Any]) -> dict[str, Any]:
    """Compute ``Δ'`` data of ε-approximate agreement (CLI-compatible)."""
    n = _int_param(params, "n", 2, minimum=2)
    m = _int_param(params, "m", 4, minimum=1)
    eps = _fraction_param(params, "eps", "1/4")
    liberal = _bool_param(params, "liberal")
    model_name = _choice_param(
        params, "model", ("iis", "tas", "bc"), "iis"
    )
    ids = list(range(1, n + 1))
    builder = (
        liberal_approximate_agreement_task
        if liberal
        else approximate_agreement_task
    )
    try:
        task = builder(ids, eps, m)
    except ReproError as exc:
        raise ServeError(
            f"cannot build closure task: {exc}", INVALID_PARAMS
        )
    model = _resolve_model(model_name, n)
    # The same evenly spread, grid-snapped input the CLI uses.
    values = {i: Fraction(k, n - 1) for k, i in enumerate(ids)}
    values = {i: Fraction(round(v * m), m) for i, v in values.items()}
    with span("serve/closure", task=task.name, model=model.name):
        computer = ClosureComputer(task, model)
        sigma = input_simplex(values)
        outputs = computer.legal_outputs(sigma)
    spreads = sorted(
        {
            max(v.value for v in tau.vertices)
            - min(v.value for v in tau.vertices)
            for tau in outputs
        }
    )
    return {
        "task": task.name,
        "model": model.name,
        "inputs": {str(i): str(v) for i, v in sorted(values.items())},
        "legal_outputs": len(outputs),
        "spreads": [str(s) for s in spreads],
        "max_spread": str(max(spreads)),
        "epsilon": str(eps),
    }


def _handle_lower_bound(params: dict[str, Any]) -> dict[str, Any]:
    """The closed-form ε-AA round bounds per model family."""
    n = _int_param(params, "n", 3, minimum=2)
    eps = _fraction_param(params, "eps", "1/8")
    with span("serve/lower-bound", n=n):
        return {
            "n": n,
            "epsilon": str(eps),
            "iis": aa_lower_bound_iis(n, eps),
            "iis_tas": aa_lower_bound_iis_tas(n, eps),
            "iis_bc": (
                aa_lower_bound_iis_bc(n, eps) if n >= 3 else None
            ),
            "upper_iis": aa_upper_bound_iis(n, eps),
        }


def _handle_chaos_campaign(params: dict[str, Any]) -> dict[str, Any]:
    """Run a seeded chaos campaign; the deterministic JSON report."""
    from repro.faults.campaign import (
        CampaignConfig,
        report_to_json,
        run_campaign,
    )

    config = CampaignConfig(
        cell=_choice_param(
            params,
            "cell",
            ("aa", "aa2", "consensus"),
            "aa",
        ),
        model=_choice_param(
            params, "model", ("iis", "snapshot", "collect"), "iis"
        ),
        n=_int_param(params, "n", 3, minimum=2),
        t=_int_param(params, "t", 1, minimum=0),
        executions=_int_param(params, "executions", 50, minimum=1),
        seed=_int_param(params, "seed", 0),
        epsilon=_fraction_param(params, "eps", "1/8"),
    )
    try:
        config.validate()
    except ReproError as exc:
        raise ServeError(str(exc), INVALID_PARAMS)
    with span(
        "serve/chaos-campaign",
        cell=config.cell,
        executions=config.executions,
    ):
        # Serial trials: determinism is the contract (the report must be
        # byte-identical however the request reached us), and the serving
        # tier already parallelizes across requests.
        report = run_campaign(config, workers=1)
    return report_to_json(report)


def _handle_health(params: dict[str, Any]) -> dict[str, Any]:
    """Static liveness payload (no server state, hence cache-exempt)."""
    return {
        "status": "ok",
        "protocol": PROTOCOL_VERSION,
        "methods": sorted(METHODS),
    }


METHODS: dict[str, Callable[[dict[str, Any]], dict[str, Any]]] = {
    "solvability": _handle_solvability,
    "closure": _handle_closure,
    "lower_bound": _handle_lower_bound,
    "chaos_campaign": _handle_chaos_campaign,
    "health": _handle_health,
}


def execute(method: str, params: dict[str, Any]) -> dict[str, Any]:
    """Run one endpoint in-process; the service's parity baseline.

    Raises :class:`~repro.errors.ServeError` with a JSON-RPC code on
    unknown methods and invalid params; any other
    :class:`~repro.errors.ReproError` escaping a handler is wrapped as
    an execution error.
    """
    handler = METHODS.get(method)
    if handler is None:
        from repro.serve.protocol import METHOD_NOT_FOUND

        known = ", ".join(sorted(METHODS))
        raise ServeError(
            f"unknown method {method!r}; known methods: {known}",
            METHOD_NOT_FOUND,
        )
    try:
        return handler(params)
    except ServeError:
        raise
    except ReproError as exc:
        raise ServeError(f"{method} failed: {exc}")


def solve_entry(params: dict[str, Any]) -> dict[str, Any]:
    """One batched solvability computation (ships to pool workers).

    Module-level and pure in its payload (RPR009): the batch fan-out in
    :mod:`repro.serve.server` maps this over the window's queries via
    :func:`~repro.parallel.supervisor.supervised_map`.
    """
    return _handle_solvability(params)
