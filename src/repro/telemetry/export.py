"""Trace exporters: JSON span tree, Chrome trace events, text summary.

Three renderings of one recorded :class:`~repro.telemetry.tracer.Tracer`:

* :func:`render_json` — the canonical ``repro-trace`` JSON span tree.
  Deterministic (sorted keys, stable child order); this is the format
  ``repro trace summarize`` consumes and audit rule AUD011 validates.
* :func:`render_chrome` — Chrome trace-event JSON (complete ``"X"``
  events, microsecond timestamps) loadable in ``chrome://tracing`` and
  `Perfetto <https://ui.perfetto.dev>`_.
* :func:`render_text` — a human-readable top-N *self-time* table:
  per span name, the time spent in spans of that name minus the time
  spent in their child spans, which is what actually identifies the
  dominating phase of a run.

Every exporter also accepts an already-parsed span tree (the dict
produced by :func:`trace_tree` / :func:`load_trace`), so the summary CLI
works on artifacts recorded by an earlier process.
"""

from __future__ import annotations

import json
from typing import Any, Optional, Sequence, Union

from repro.errors import TelemetryError
from repro.telemetry.tracer import Span, Tracer

__all__ = [
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "span_node",
    "trace_tree",
    "render_json",
    "chrome_events",
    "render_chrome",
    "self_time_table",
    "render_text",
    "load_trace",
    "merge_traces",
    "write_trace",
]

#: The ``format`` field of the canonical JSON artifact.
TRACE_FORMAT = "repro-trace"
#: Schema version of the canonical JSON artifact.
TRACE_VERSION = 1

#: Where the exporters keep timestamps: seconds (JSON tree) vs
#: microseconds (Chrome trace events).
_MICROSECONDS = 1_000_000.0

TraceInput = Union[Tracer, dict]


def span_node(entry: Span) -> dict[str, Any]:
    """One span as a JSON-ready node (children recursively included)."""
    if not entry.closed:
        raise TelemetryError(
            f"span {entry.name!r} is still open; finish the traced "
            "region before exporting"
        )
    return {
        "name": entry.name,
        "start": entry.start,
        "end": entry.end,
        "status": entry.status,
        "attributes": dict(entry.attributes),
        "metrics": dict(entry.metrics),
        "children": [span_node(child) for child in entry.children],
    }


def trace_tree(tracer: Tracer) -> dict[str, Any]:
    """The canonical ``repro-trace`` artifact of a finished tracer."""
    if not tracer.finished():
        open_span = tracer.active
        assert open_span is not None
        raise TelemetryError(
            f"cannot export: span {open_span.name!r} is still open"
        )
    return {
        "format": TRACE_FORMAT,
        "version": TRACE_VERSION,
        "spans": [span_node(root) for root in tracer.roots],
    }


def _as_tree(trace: TraceInput) -> dict[str, Any]:
    if isinstance(trace, Tracer):
        return trace_tree(trace)
    return trace


def render_json(trace: TraceInput) -> str:
    """Serialize the canonical span tree deterministically."""
    return json.dumps(_as_tree(trace), indent=2, sort_keys=True)


# ----------------------------------------------------------------------
# Chrome trace-event format
# ----------------------------------------------------------------------
def _chrome_walk(
    node: dict[str, Any], events: list[dict[str, Any]]
) -> None:
    args: dict[str, Any] = dict(node.get("attributes", {}))
    for key, value in node.get("metrics", {}).items():
        args[f"metric:{key}"] = value
    start = float(node["start"])
    end = float(node["end"])
    events.append(
        {
            "name": node["name"],
            "cat": "repro",
            "ph": "X",
            "ts": start * _MICROSECONDS,
            "dur": (end - start) * _MICROSECONDS,
            "pid": 1,
            "tid": 1,
            "args": args,
        }
    )
    for child in node.get("children", ()):
        _chrome_walk(child, events)


def chrome_events(trace: TraceInput) -> dict[str, Any]:
    """The trace as a Chrome trace-event object (``{"traceEvents": …}``).

    Complete events (``ph: "X"``) with microsecond ``ts``/``dur``; the
    viewer reconstructs nesting from the containment of time ranges on
    one ``pid``/``tid``, which holds by construction for a span tree.
    """
    events: list[dict[str, Any]] = []
    for root in _as_tree(trace)["spans"]:
        _chrome_walk(root, events)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def render_chrome(trace: TraceInput) -> str:
    """Serialize the Chrome trace-event rendering deterministically."""
    return json.dumps(chrome_events(trace), indent=2, sort_keys=True)


# ----------------------------------------------------------------------
# Text summary (top-N self time)
# ----------------------------------------------------------------------
def _self_time_walk(
    node: dict[str, Any], totals: dict[str, list[float]]
) -> None:
    duration = float(node["end"]) - float(node["start"])
    child_time = 0.0
    for child in node.get("children", ()):
        child_time += float(child["end"]) - float(child["start"])
        _self_time_walk(child, totals)
    row = totals.setdefault(node["name"], [0.0, 0.0, 0.0])
    row[0] += 1  # count
    row[1] += duration  # total
    row[2] += max(duration - child_time, 0.0)  # self


def self_time_table(
    trace: TraceInput,
) -> list[tuple[str, int, float, float]]:
    """``(name, count, total_s, self_s)`` rows, sorted by self time.

    *Self time* of a span is its duration minus the durations of its
    direct children; summed per span name, it is exactly the wall time
    attributable to that phase itself, which a plain total would
    double-count across nesting levels.
    """
    totals: dict[str, list[float]] = {}
    for root in _as_tree(trace)["spans"]:
        _self_time_walk(root, totals)
    rows = [
        (name, int(values[0]), values[1], values[2])
        for name, values in totals.items()
    ]
    rows.sort(key=lambda row: (-row[3], row[0]))
    return rows


def render_text(trace: TraceInput, top: int = 15) -> str:
    """The top-``top`` self-time table plus a one-line trace census."""
    # Imported lazily: repro.analysis pulls in the instrumentation shim,
    # which imports repro.telemetry — a module-level import here would
    # close that cycle during package initialization.
    from repro.analysis.reporting import render_rows

    tree = _as_tree(trace)
    rows = self_time_table(tree)
    span_count = sum(row[1] for row in rows)
    wall = sum(
        float(root["end"]) - float(root["start"])
        for root in tree["spans"]
    )
    kept = rows[: max(top, 0)]
    table = render_rows(
        f"trace summary — {span_count} spans, "
        f"{len(tree['spans'])} roots, {wall * 1000.0:.3f} ms wall",
        (
            (
                name,
                str(count),
                f"{total * 1000.0:.3f}",
                f"{self_ * 1000.0:.3f}",
                f"{(self_ / wall * 100.0) if wall else 0.0:.1f}%",
            )
            for name, count, total, self_ in kept
        ),
        ("span", "count", "total ms", "self ms", "self %"),
    )
    if len(rows) > len(kept):
        table += f"\n(+ {len(rows) - len(kept)} more span names)"
    return table


# ----------------------------------------------------------------------
# Artifact I/O
# ----------------------------------------------------------------------
def load_trace(text: str) -> dict[str, Any]:
    """Parse a ``repro-trace`` artifact, rejecting foreign payloads.

    Raises :class:`~repro.errors.TelemetryError` with a one-line cause on
    malformed JSON, Chrome-format artifacts (which carry no span tree),
    and unknown formats/versions.
    """
    try:
        payload = json.loads(text)
    except ValueError as exc:
        raise TelemetryError(f"not JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise TelemetryError("trace artifact must be a JSON object")
    if "traceEvents" in payload and "format" not in payload:
        raise TelemetryError(
            "this is a Chrome trace-event artifact; summarize needs the "
            "canonical span tree (--trace-format json)"
        )
    if payload.get("format") != TRACE_FORMAT:
        raise TelemetryError(
            f"unknown trace format {payload.get('format')!r} "
            f"(expected {TRACE_FORMAT!r})"
        )
    if payload.get("version") != TRACE_VERSION:
        raise TelemetryError(
            f"unsupported trace version {payload.get('version')!r} "
            f"(expected {TRACE_VERSION})"
        )
    if not isinstance(payload.get("spans"), list):
        raise TelemetryError("trace artifact has no 'spans' list")
    return payload


def merge_traces(trees: Sequence[dict[str, Any]]) -> dict[str, Any]:
    """Concatenate several trace artifacts into one span forest.

    Built for per-request service traces (one small artifact per
    request, see :mod:`repro.serve`): summarizing a whole trace
    directory means merging the root spans of every artifact into a
    single tree the existing exporters already understand.  Inputs must
    be validated artifacts (:func:`load_trace` output); their root
    spans are kept in input order.
    """
    spans: list[Any] = []
    for tree in trees:
        if (
            tree.get("format") != TRACE_FORMAT
            or tree.get("version") != TRACE_VERSION
        ):
            raise TelemetryError(
                f"cannot merge artifact with format="
                f"{tree.get('format')!r} version={tree.get('version')!r}"
            )
        spans.extend(tree.get("spans", []))
    return {
        "format": TRACE_FORMAT,
        "version": TRACE_VERSION,
        "spans": spans,
    }


_RENDERERS = {
    "json": render_json,
    "chrome": render_chrome,
    "text": render_text,
}


def write_trace(
    path: str, trace: TraceInput, fmt: str = "json", top: Optional[int] = None
) -> None:
    """Render ``trace`` in the given format and write it to ``path``."""
    if fmt not in _RENDERERS:
        known = ", ".join(sorted(_RENDERERS))
        raise TelemetryError(
            f"unknown trace format {fmt!r}; known formats: {known}"
        )
    if fmt == "text" and top is not None:
        rendered = render_text(trace, top=top)
    else:
        rendered = _RENDERERS[fmt](trace)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(rendered + "\n")
