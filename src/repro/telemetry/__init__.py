"""repro.telemetry — tracing, metrics, and profiling observability.

The observability layer of the proof machine, in three pieces:

* **spans** (:mod:`repro.telemetry.tracer`) — nested, exception-safe
  ``with span("closure/decide", …)`` regions carrying wall time from an
  injectable clock, attributes, and per-span metric deltas.  Disabled by
  default; the module-level :func:`span` fast path makes disabled
  telemetry effectively free on the hot loops.
* **metrics** (:mod:`repro.telemetry.metrics`) — the process-wide
  :class:`MetricsRegistry` of counters, gauges, histograms, and the PR-1
  cache hit/miss tallies (re-exported through the
  :mod:`repro.instrumentation` compatibility shim).
* **exporters** (:mod:`repro.telemetry.export`) — the canonical JSON span
  tree, Chrome trace-event JSON (``chrome://tracing`` / Perfetto), and a
  top-N self-time text summary; surfaced on the CLI as
  ``repro run/experiment/chaos --trace PATH`` and
  ``repro trace summarize PATH``.

See docs/OBSERVABILITY.md for the span taxonomy and naming conventions.
"""

from repro.telemetry.clock import (
    Clock,
    ManualClock,
    MonotonicClock,
    ambient_clock,
    set_ambient_clock,
)
from repro.telemetry.export import (
    TRACE_FORMAT,
    TRACE_VERSION,
    chrome_events,
    load_trace,
    merge_traces,
    render_chrome,
    render_json,
    render_text,
    self_time_table,
    span_node,
    trace_tree,
    write_trace,
)
from repro.telemetry.metrics import (
    CacheCounter,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
)
from repro.telemetry.tracer import (
    NOOP_SPAN,
    Span,
    SpanLike,
    Tracer,
    current_tracer,
    disable,
    enable,
    is_enabled,
    span,
    tracing,
)

__all__ = [
    # clocks
    "Clock",
    "ManualClock",
    "MonotonicClock",
    "ambient_clock",
    "set_ambient_clock",
    # metrics
    "CacheCounter",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    # tracing
    "NOOP_SPAN",
    "Span",
    "SpanLike",
    "Tracer",
    "current_tracer",
    "disable",
    "enable",
    "is_enabled",
    "span",
    "tracing",
    # export
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "chrome_events",
    "load_trace",
    "merge_traces",
    "render_chrome",
    "render_json",
    "render_text",
    "self_time_table",
    "span_node",
    "trace_tree",
    "write_trace",
]
