"""Counters, gauges, histograms, and cache tallies in one registry.

:class:`MetricsRegistry` is the process-wide home of every metric the
library records.  Four metric kinds cover what the hot paths need:

* :class:`Counter` — a monotone event count (``campaign executions``);
* :class:`Gauge` — a last-written level (``peak facets per round``);
* :class:`Histogram` — a value distribution with exact percentile math
  (``closure decision latency``);
* :class:`CacheCounter` — paired hit/miss tallies for one memoized layer
  (the PR-1 instrumentation counters, now registry-resident).

Naming convention (see docs/OBSERVABILITY.md): lowercase dotted/bracketed
component paths, e.g. ``faults.campaign.executions`` or
``one-round-complex[iterated-immediate-snapshot]``.  Snapshots flatten a
registry into ``kind:name[:field] -> number`` entries so the tracer can
attach per-span metric *deltas* — the difference between the snapshots
taken when the span opened and closed.

All recording methods are single attribute updates; fetch the metric once
(at import, or first use) and keep the reference on the hot path — the
``repro check`` lint rule RPR003 enforces this for cache counters.
"""

from __future__ import annotations

from typing import Optional, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "CacheCounter",
    "MetricsRegistry",
    "default_registry",
]

Number = Union[int, float]


class Counter:
    """A monotonically increasing event tally."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (non-negative) events."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def reset(self) -> None:
        """Zero the tally (the counter stays registered)."""
        self.value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """A last-written level; unlike a counter it may move both ways."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: Number) -> None:
        """Record the current level."""
        self.value = float(value)

    def reset(self) -> None:
        """Return the gauge to zero."""
        self.value = 0.0

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value})"


class Histogram:
    """An exact value distribution (all observations are retained).

    The workloads this library measures are bounded (thousands of closure
    decisions, hundreds of campaign trials), so the histogram keeps the
    raw observations and computes percentiles exactly by linear
    interpolation between closest ranks — the same convention as
    ``numpy.percentile(..., interpolation="linear")``, reimplemented here
    to stay dependency-free.
    """

    __slots__ = ("name", "_values", "_sorted")

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: list[float] = []
        self._sorted = True

    def observe(self, value: Number) -> None:
        """Record one observation."""
        self._values.append(float(value))
        self._sorted = False

    @property
    def count(self) -> int:
        """Number of observations."""
        return len(self._values)

    @property
    def total(self) -> float:
        """Sum of all observations."""
        return sum(self._values)

    @property
    def mean(self) -> Optional[float]:
        """Arithmetic mean (``None`` when empty)."""
        return self.total / len(self._values) if self._values else None

    def percentile(self, p: float) -> Optional[float]:
        """The ``p``-th percentile, ``0 ≤ p ≤ 100`` (``None`` when empty).

        Linear interpolation between closest ranks: rank
        ``r = (n - 1) · p / 100`` interpolates between the observations at
        ``⌊r⌋`` and ``⌈r⌉`` of the sorted sample.
        """
        if not 0 <= p <= 100:
            raise ValueError(f"percentile {p} outside [0, 100]")
        if not self._values:
            return None
        if not self._sorted:
            self._values.sort()
            self._sorted = True
        rank = (len(self._values) - 1) * p / 100.0
        low = int(rank)
        high = min(low + 1, len(self._values) - 1)
        fraction = rank - low
        return (
            self._values[low] * (1.0 - fraction)
            + self._values[high] * fraction
        )

    def summary(self) -> dict[str, float]:
        """``count/sum/min/max/p50/p90/p99`` (all zero when empty)."""
        if not self._values:
            return {
                "count": 0.0, "sum": 0.0, "min": 0.0, "max": 0.0,
                "p50": 0.0, "p90": 0.0, "p99": 0.0,
            }
        p50 = self.percentile(50)
        p90 = self.percentile(90)
        p99 = self.percentile(99)
        assert p50 is not None and p90 is not None and p99 is not None
        return {
            "count": float(len(self._values)),
            "sum": self.total,
            "min": min(self._values),
            "max": max(self._values),
            "p50": p50,
            "p90": p90,
            "p99": p99,
        }

    def reset(self) -> None:
        """Drop every observation (the histogram stays registered)."""
        self._values.clear()
        self._sorted = True

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={len(self._values)})"


class CacheCounter:
    """Hit/miss tallies for one named cache (or construction site).

    For a memoizing layer, every ``miss`` is one materialization of the
    cached object, so ``constructions`` is an alias of ``misses``; layers
    that build unconditionally (no cache in front) record via
    :meth:`built` and report zero hits.
    """

    __slots__ = ("name", "hits", "misses")

    def __init__(self, name: str) -> None:
        self.name = name
        self.hits = 0
        self.misses = 0

    def hit(self) -> None:
        """Record a lookup served from the cache."""
        self.hits += 1

    def miss(self) -> None:
        """Record a lookup that had to materialize the object."""
        self.misses += 1

    #: Construction sites without a cache record every build as a miss.
    built = miss

    @property
    def calls(self) -> int:
        """Total lookups (hits + misses)."""
        return self.hits + self.misses

    @property
    def constructions(self) -> int:
        """Materializations — for a memoized layer, exactly the misses."""
        return self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        calls = self.calls
        return self.hits / calls if calls else 0.0

    def reset(self) -> None:
        """Zero the tallies (the counter stays registered)."""
        self.hits = 0
        self.misses = 0

    def __repr__(self) -> str:
        return (
            f"CacheCounter({self.name!r}, hits={self.hits}, "
            f"misses={self.misses})"
        )


class MetricsRegistry:
    """Name-keyed home of every metric of one process (or one test).

    Metrics are created lazily on first fetch and aggregate across every
    holder of the same name — exactly what a sweep constructing many
    short-lived operators needs.  A fresh registry can be instantiated for
    isolation (tests, nested benchmark harnesses); the library's shared
    instance is :func:`default_registry`.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._caches: dict[str, CacheCounter] = {}

    # ------------------------------------------------------------------
    # Lazy fetch-or-create accessors
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created lazily)."""
        found = self._counters.get(name)
        if found is None:
            found = self._counters[name] = Counter(name)
        return found

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created lazily)."""
        found = self._gauges.get(name)
        if found is None:
            found = self._gauges[name] = Gauge(name)
        return found

    def histogram(self, name: str) -> Histogram:
        """The histogram registered under ``name`` (created lazily)."""
        found = self._histograms.get(name)
        if found is None:
            found = self._histograms[name] = Histogram(name)
        return found

    def cache(self, name: str) -> CacheCounter:
        """The cache counter registered under ``name`` (created lazily)."""
        found = self._caches.get(name)
        if found is None:
            found = self._caches[name] = CacheCounter(name)
        return found

    # ------------------------------------------------------------------
    # Enumeration
    # ------------------------------------------------------------------
    def caches(self) -> list[CacheCounter]:
        """Every registered cache counter, sorted by name."""
        return [self._caches[name] for name in sorted(self._caches)]

    def counters(self) -> list[Counter]:
        """Every registered counter, sorted by name."""
        return [self._counters[name] for name in sorted(self._counters)]

    def gauges(self) -> list[Gauge]:
        """Every registered gauge, sorted by name."""
        return [self._gauges[name] for name in sorted(self._gauges)]

    def histograms(self) -> list[Histogram]:
        """Every registered histogram, sorted by name."""
        return [
            self._histograms[name] for name in sorted(self._histograms)
        ]

    # ------------------------------------------------------------------
    # Snapshots and deltas (the tracer's per-span accounting)
    # ------------------------------------------------------------------
    def cache_snapshot(self) -> dict[str, tuple[int, int]]:
        """An immutable ``{name: (hits, misses)}`` view of the caches."""
        return {
            name: (entry.hits, entry.misses)
            for name, entry in self._caches.items()
        }

    def snapshot(self) -> dict[str, float]:
        """Flatten every *cumulative* metric into ``key -> number``.

        Keys are ``counter:<name>``, ``cache:<name>:hits``,
        ``cache:<name>:misses``, ``hist:<name>:count`` and
        ``hist:<name>:sum``.  Gauges are levels, not accumulations, so
        they are excluded — a gauge delta is meaningless.
        """
        flat: dict[str, float] = {}
        for name, entry in self._counters.items():
            flat[f"counter:{name}"] = entry.value
        for name, cache in self._caches.items():
            flat[f"cache:{name}:hits"] = cache.hits
            flat[f"cache:{name}:misses"] = cache.misses
        for name, histogram in self._histograms.items():
            flat[f"hist:{name}:count"] = histogram.count
            flat[f"hist:{name}:sum"] = histogram.total
        return flat

    @staticmethod
    def delta(
        before: dict[str, float], after: dict[str, float]
    ) -> dict[str, float]:
        """Per-key accumulation between two snapshots (zeros omitted).

        Keys absent from ``before`` start from zero; keys unchanged
        between the snapshots are omitted.
        """
        changed: dict[str, float] = {}
        for key, value in after.items():
            step = value - before.get(key, 0)
            if step:
                changed[key] = step
        return changed

    # ------------------------------------------------------------------
    # Reset
    # ------------------------------------------------------------------
    def reset_caches(self) -> None:
        """Zero every cache counter (compat with the PR-1 counters)."""
        for cache in self._caches.values():
            cache.reset()

    def reset(self) -> None:
        """Zero every metric of every kind (all stay registered)."""
        for counter in self._counters.values():
            counter.reset()
        for gauge in self._gauges.values():
            gauge.reset()
        for histogram in self._histograms.values():
            histogram.reset()
        for cache in self._caches.values():
            cache.reset()


_DEFAULT = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide shared registry (what the hot paths report into)."""
    return _DEFAULT
