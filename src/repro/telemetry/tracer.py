"""Nested, exception-safe tracing spans with a disabled-mode fast path.

The library's hot layers call the module-level :func:`span` factory::

    from repro.telemetry import span

    with span("closure/decide", task=name) as sp:
        ...
        sp.set_attribute("solvable", found)

With no tracer installed (the default), :func:`span` reads one module
attribute and returns a shared no-op handle whose ``__enter__``/``__exit__``
do nothing — the hot loops pay a dict-free constant, measured below 3 % on
the E22 perf workload (``benchmarks/bench_telemetry_overhead.py``).  With a
tracer installed via :func:`enable` (or the :func:`tracing` context
manager), each ``with`` block records a :class:`Span` carrying wall time
from an injectable :class:`~repro.telemetry.clock.Clock`, caller-supplied
attributes, and the per-span delta of the cumulative metrics in a
:class:`~repro.telemetry.metrics.MetricsRegistry`.

Spans nest by ``with``-block structure; an exception unwinding through a
span closes it (recording ``status="error"`` and the exception type) and
propagates, so a trace of a failing run is still a well-formed tree —
exactly what audit rule AUD011 checks on finished artifacts.
"""

from __future__ import annotations

from contextlib import contextmanager
from types import TracebackType
from typing import Iterator, Optional, Union

from repro.errors import TelemetryError
from repro.telemetry.clock import Clock, MonotonicClock
from repro.telemetry.metrics import MetricsRegistry, default_registry

__all__ = [
    "Span",
    "Tracer",
    "SpanLike",
    "NOOP_SPAN",
    "span",
    "enable",
    "disable",
    "current_tracer",
    "is_enabled",
    "tracing",
]

#: Attribute types stored verbatim; everything else is coerced via ``str``
#: at record time so finished spans are JSON-serializable by construction.
_VERBATIM = (str, int, float, bool, type(None))

AttributeValue = Union[str, int, float, bool, None]


def coerce_attribute(value: object) -> AttributeValue:
    """Clamp an attribute value to the JSON-safe scalar types.

    Strings, ints, floats, bools, and ``None`` pass through; any other
    object (a ``Fraction``, a ``Simplex``, …) is recorded as ``str(value)``
    — traces are observability artifacts, not object stores.
    """
    if isinstance(value, _VERBATIM):
        return value
    return str(value)


class Span:
    """One timed, attributed region of a traced run.

    Created by :meth:`Tracer.span` and driven exclusively through the
    ``with`` protocol; ``start``/``end`` are clock readings in seconds and
    ``metrics`` is the per-span delta of the registry's cumulative
    metrics.  ``children`` are the spans opened (directly) inside this
    one, in opening order.
    """

    __slots__ = (
        "name",
        "attributes",
        "start",
        "end",
        "status",
        "children",
        "metrics",
        "_tracer",
        "_metrics_before",
    )

    def __init__(
        self, tracer: "Tracer", name: str, attributes: dict[str, object]
    ) -> None:
        self.name = name
        self.attributes: dict[str, AttributeValue] = {
            key: coerce_attribute(value)
            for key, value in attributes.items()
        }
        self.start: Optional[float] = None
        self.end: Optional[float] = None
        self.status = "ok"
        self.children: list[Span] = []
        self.metrics: dict[str, float] = {}
        self._tracer = tracer
        self._metrics_before: Optional[dict[str, float]] = None

    @property
    def closed(self) -> bool:
        """Whether the span has been exited."""
        return self.end is not None

    @property
    def duration(self) -> float:
        """Wall time between enter and exit (0.0 while still open)."""
        if self.start is None or self.end is None:
            return 0.0
        return self.end - self.start

    def set_attribute(self, name: str, value: object) -> None:
        """Attach (or overwrite) one attribute on the open span."""
        self.attributes[name] = coerce_attribute(value)

    def __enter__(self) -> "Span":
        self._tracer._open(self)
        return self

    def __exit__(
        self,
        exc_type: Optional[type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> bool:
        self._tracer._close(self, exc_type)
        return False  # never swallow the exception

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return f"Span({self.name!r}, {state}, children={len(self.children)})"


class _NoOpSpan:
    """The shared disabled-mode handle: every operation is a no-op."""

    __slots__ = ()

    def set_attribute(self, name: str, value: object) -> None:
        pass

    def __enter__(self) -> "_NoOpSpan":
        return self

    def __exit__(
        self,
        exc_type: Optional[type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> bool:
        return False


#: The singleton returned by :func:`span` while tracing is disabled.  Its
#: enter/exit are stateless, so one shared instance serves every caller.
NOOP_SPAN = _NoOpSpan()

SpanLike = Union[Span, _NoOpSpan]


class Tracer:
    """Builds the span tree of one traced run.

    Parameters
    ----------
    clock:
        Time source for span boundaries (default: monotonic wall clock).
        Inject a :class:`~repro.telemetry.clock.ManualClock` for
        deterministic artifacts.
    registry:
        The metrics registry whose cumulative metrics are snapshotted at
        span boundaries (default: the process-wide registry).
    capture_metrics:
        Disable to skip the per-span registry snapshots (cheaper tracing
        when only timing is wanted).
    """

    def __init__(
        self,
        clock: Optional[Clock] = None,
        registry: Optional[MetricsRegistry] = None,
        capture_metrics: bool = True,
    ) -> None:
        self.clock: Clock = clock if clock is not None else MonotonicClock()
        self.registry: MetricsRegistry = (
            registry if registry is not None else default_registry()
        )
        self.capture_metrics = capture_metrics
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    # ------------------------------------------------------------------
    # Span lifecycle (driven by Span.__enter__/__exit__)
    # ------------------------------------------------------------------
    def span(self, name: str, **attributes: object) -> Span:
        """A new span handle; enters the tree when the ``with`` opens."""
        if not name:
            raise TelemetryError("span names must be non-empty")
        return Span(self, name, attributes)

    def _open(self, entry: Span) -> None:
        if entry.start is not None:
            raise TelemetryError(
                f"span {entry.name!r} entered twice; create a fresh span "
                "per with-block"
            )
        if self._stack:
            self._stack[-1].children.append(entry)
        else:
            self.roots.append(entry)
        self._stack.append(entry)
        if self.capture_metrics:
            entry._metrics_before = self.registry.snapshot()
        entry.start = self.clock.now()

    def _close(
        self, entry: Span, exc_type: Optional[type[BaseException]]
    ) -> None:
        if not self._stack or self._stack[-1] is not entry:
            raise TelemetryError(
                f"unbalanced span exit: {entry.name!r} is not the "
                "innermost open span"
            )
        self._stack.pop()
        entry.end = self.clock.now()
        if entry._metrics_before is not None:
            entry.metrics = self.registry.delta(
                entry._metrics_before, self.registry.snapshot()
            )
            entry._metrics_before = None
        if exc_type is not None:
            entry.status = "error"
            entry.attributes.setdefault("error", exc_type.__name__)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def active(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    @property
    def depth(self) -> int:
        """How many spans are currently open."""
        return len(self._stack)

    def finished(self) -> bool:
        """``True`` iff every opened span has been closed."""
        return not self._stack


# ----------------------------------------------------------------------
# The module-level fast path
# ----------------------------------------------------------------------
_ACTIVE: Optional[Tracer] = None


def span(name: str, **attributes: object) -> SpanLike:
    """A span handle from the installed tracer, or the shared no-op.

    This is *the* instrumentation entry point for the hot layers: one
    module-attribute read decides between real tracing and the free
    no-op, so disabled telemetry costs nothing measurable.
    """
    tracer = _ACTIVE
    if tracer is None:
        return NOOP_SPAN
    return tracer.span(name, **attributes)


def current_tracer() -> Optional[Tracer]:
    """The installed tracer, or ``None`` while tracing is disabled."""
    return _ACTIVE


def is_enabled() -> bool:
    """Whether a tracer is currently installed."""
    return _ACTIVE is not None


def enable(
    tracer: Optional[Tracer] = None,
    clock: Optional[Clock] = None,
    registry: Optional[MetricsRegistry] = None,
) -> Tracer:
    """Install a tracer process-wide and return it.

    Passing an existing ``tracer`` installs it as-is; otherwise a fresh
    :class:`Tracer` is built from the ``clock``/``registry`` arguments.
    Re-enabling while a tracer is installed replaces it (the previous
    tracer keeps its recorded spans).
    """
    global _ACTIVE
    if tracer is None:
        tracer = Tracer(clock=clock, registry=registry)
    _ACTIVE = tracer
    return tracer


def disable() -> Optional[Tracer]:
    """Uninstall the tracer and return it (``None`` if none was active)."""
    global _ACTIVE
    tracer = _ACTIVE
    _ACTIVE = None
    return tracer


@contextmanager
def tracing(
    clock: Optional[Clock] = None,
    registry: Optional[MetricsRegistry] = None,
) -> Iterator[Tracer]:
    """Scoped tracing: install a fresh tracer, uninstall on exit.

    The yielded tracer (and its recorded spans) stays usable after the
    block — hand it to the exporters in :mod:`repro.telemetry.export`.
    """
    tracer = enable(clock=clock, registry=registry)
    try:
        yield tracer
    finally:
        disable()
