"""Injectable time sources for the telemetry layer.

Every timestamp the tracer records flows through a :class:`Clock`, so the
observability layer never calls ``time.monotonic()`` directly.  Production
tracing uses :class:`MonotonicClock`; tests and deterministic artifacts
(the fault-campaign reports, the exporter golden files) inject a
:class:`ManualClock` whose ``now()`` is fully scripted — a trace recorded
under a manual clock is byte-for-byte reproducible.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod

__all__ = ["Clock", "MonotonicClock", "ManualClock"]


class Clock(ABC):
    """A monotone time source measured in seconds."""

    @abstractmethod
    def now(self) -> float:
        """The current time in seconds; must never decrease."""


class MonotonicClock(Clock):
    """Wall-clock spans via :func:`time.monotonic` (the default)."""

    def now(self) -> float:
        return time.monotonic()


class ManualClock(Clock):
    """A scripted clock for deterministic traces.

    Parameters
    ----------
    start:
        The initial reading.
    tick:
        Amount ``now()`` auto-advances *after* every reading.  The default
        of ``0.0`` keeps time frozen until :meth:`advance` is called; a
        positive tick gives every successive timestamp a distinct,
        predictable value without any explicit advancing.
    """

    def __init__(self, start: float = 0.0, tick: float = 0.0) -> None:
        self._now = start
        self._tick = tick

    def now(self) -> float:
        reading = self._now
        self._now += self._tick
        return reading

    def advance(self, seconds: float) -> None:
        """Move the clock forward by ``seconds`` (must be non-negative)."""
        if seconds < 0:
            raise ValueError("a monotone clock cannot move backwards")
        self._now += seconds
