"""Injectable time sources for the telemetry layer.

Every timestamp the tracer records flows through a :class:`Clock`, so the
observability layer never calls ``time.monotonic()`` directly.  Production
tracing uses :class:`MonotonicClock`; tests and deterministic artifacts
(the fault-campaign reports, the exporter golden files) inject a
:class:`ManualClock` whose ``now()`` is fully scripted — a trace recorded
under a manual clock is byte-for-byte reproducible.

Beyond the tracer, the process keeps one *ambient* clock
(:func:`ambient_clock`/:func:`set_ambient_clock`): the time source for
every deadline comparison and backoff sleep in the execution layers
(``repro.parallel`` deadlines, the supervisor's retry backoff, the chaos
campaign budget).  Production leaves the monotonic default in place;
tests inject a :class:`ManualClock` so deadline and backoff behaviour is
scripted instead of racing the wall clock — the same injectability
contract RPR008 enforces for the pure computation paths.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from typing import Optional

__all__ = [
    "Clock",
    "MonotonicClock",
    "ManualClock",
    "ambient_clock",
    "set_ambient_clock",
]


class Clock(ABC):
    """A monotone time source measured in seconds."""

    @abstractmethod
    def now(self) -> float:
        """The current time in seconds; must never decrease."""

    def sleep(self, seconds: float) -> None:
        """Block for ``seconds`` (scripted clocks advance instead)."""
        if seconds > 0:
            time.sleep(seconds)


class MonotonicClock(Clock):
    """Wall-clock spans via :func:`time.monotonic` (the default)."""

    def now(self) -> float:
        return time.monotonic()


class ManualClock(Clock):
    """A scripted clock for deterministic traces.

    Parameters
    ----------
    start:
        The initial reading.
    tick:
        Amount ``now()`` auto-advances *after* every reading.  The default
        of ``0.0`` keeps time frozen until :meth:`advance` is called; a
        positive tick gives every successive timestamp a distinct,
        predictable value without any explicit advancing.
    """

    def __init__(self, start: float = 0.0, tick: float = 0.0) -> None:
        self._now = start
        self._tick = tick

    def now(self) -> float:
        reading = self._now
        self._now += self._tick
        return reading

    def advance(self, seconds: float) -> None:
        """Move the clock forward by ``seconds`` (must be non-negative)."""
        if seconds < 0:
            raise ValueError("a monotone clock cannot move backwards")
        self._now += seconds

    def sleep(self, seconds: float) -> None:
        """Scripted sleep: advance the clock instead of blocking."""
        if seconds > 0:
            self._now += seconds


_AMBIENT: Optional[Clock] = None


def ambient_clock() -> Clock:
    """The process-wide clock used for deadlines and backoff sleeps."""
    global _AMBIENT
    if _AMBIENT is None:
        _AMBIENT = MonotonicClock()
    return _AMBIENT


def set_ambient_clock(clock: Optional[Clock]) -> None:
    """Install ``clock`` as the ambient time source (``None`` resets)."""
    global _AMBIENT
    _AMBIENT = clock
