"""Round lower bounds from closure iteration.

Two engines:

* a **generic** one (:func:`iterated_closure_lower_bound`): repeatedly
  replace the task by its closure and test 0-round solvability.  By the
  speedup theorem, if the ``r``-fold closure is still not 0-round solvable,
  the task needs more than ``r`` rounds.  Exact, but exponential — use it on
  small instances.

* **closed forms** for approximate agreement, encoding the recursions the
  paper derives from the verified closure identities:

  - Corollary 3:  ``⌈log₃ 1/ε⌉`` rounds for ``n = 2`` (the closure of ε-AA
    is 3ε-AA) and ``⌈log₂ 1/ε⌉`` for ``n ≥ 3`` (the closure of liberal ε-AA
    is liberal 2ε-AA), both in wait-free IIS;
  - Theorem 3: the same ``⌈log₂ 1/ε⌉`` with test&set, for ``n ≥ 3``
    (test&set does not help);
  - Theorem 4: ``min{⌈log₂ 1/ε⌉, ⌈log₂ n⌉ − 1}`` with an ID-called binary
    consensus object (each β-closure halves the participant set *and*
    doubles ε).

The closed forms are backed by benches that verify the closure identities
computationally on grid instances (Claims 2–4, 6).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Union

from repro.core.closure import ClosureComputer
from repro.core.solvability import is_solvable
from repro.errors import SolvabilityError
from repro.models.base import ComputationModel
from repro.tasks.task import Task
from repro.telemetry import span

__all__ = [
    "ceil_log",
    "iterated_closure_lower_bound",
    "aa_lower_bound_iis",
    "aa_lower_bound_iis_tas",
    "aa_lower_bound_iis_bc",
    "aa_upper_bound_iis",
]

Rational = Union[Fraction, int, str]


def ceil_log(base: int, value: Rational) -> int:
    """``⌈log_base(value)⌉`` computed exactly over the rationals.

    The smallest non-negative integer ``t`` with ``base^t ≥ value``.
    """
    if base < 2:
        raise SolvabilityError("logarithm base must be at least 2")
    target = Fraction(value)
    if target <= 1:
        return 0
    t = 0
    power = Fraction(1)
    while power < target:
        power *= base
        t += 1
    return t


def iterated_closure_lower_bound(
    task: Task,
    model: ComputationModel,
    max_rounds: int,
    quantify_beta: bool = False,
) -> int:
    """A certified round lower bound by explicit closure iteration.

    Returns the largest ``r ≤ max_rounds`` such that the ``(r-1)``-fold
    closure of the task is not solvable in zero rounds — hence, by the
    speedup theorem, the task needs at least ``r`` rounds.  Returns 0 when
    the task itself is 0-round solvable.

    This materializes each closure over the full input complex; keep the
    instances small (it is exact, not clever).
    """
    with span(
        "core/lower-bound",
        task=task.name,
        model=model.name,
        max_rounds=max_rounds,
    ) as bound_span:
        current = task
        bound = 0
        for _ in range(max_rounds):
            # One span per closure iteration: round r tests 0-round
            # solvability of the r-fold closure and, if unsolved,
            # materializes the next closure.
            with span("closure/iterate", round=bound):
                if is_solvable(current, model, 0):
                    break
                bound += 1
                computer = ClosureComputer(
                    current, model, quantify_beta=quantify_beta
                )
                current = computer.as_task()
        bound_span.set_attribute("bound", bound)
        return bound


def aa_lower_bound_iis(n: int, epsilon: Rational) -> int:
    """Corollary 3: rounds needed for ε-AA in wait-free IIS.

    ``⌈log₃ 1/ε⌉`` for two processes, ``⌈log₂ 1/ε⌉`` for three or more.
    Tight (Hoest–Shavit; also witnessed by the algorithms of
    :mod:`repro.algorithms.approximate_agreement`).
    """
    if n < 2:
        raise SolvabilityError("approximate agreement needs at least 2 processes")
    inverse = 1 / Fraction(epsilon)
    if n == 2:
        return ceil_log(3, inverse)
    return ceil_log(2, inverse)


def aa_lower_bound_iis_tas(n: int, epsilon: Rational) -> int:
    """Theorem 3: rounds needed for ε-AA in wait-free IIS + test&set.

    For ``n ≥ 3`` the bound is the same ``⌈log₂ 1/ε⌉`` as without the
    object — test&set does not accelerate approximate agreement.  For
    ``n = 2``, consensus (hence AA) is solvable in a single round (Fig. 4).
    """
    if n < 2:
        raise SolvabilityError("approximate agreement needs at least 2 processes")
    if n == 2:
        return 1 if Fraction(epsilon) < 1 else 0
    return ceil_log(2, 1 / Fraction(epsilon))


def aa_lower_bound_iis_bc(n: int, epsilon: Rational) -> int:
    """Theorem 4: ε-AA with an ID-called binary consensus object, ``n ≥ 3``.

    ``min{⌈log₂ 1/ε⌉, ⌈log₂ n⌉ − 1}``: each β-closure step doubles ε but
    halves the participants, so the recursion bottoms out either when ε
    reaches 1 or when too few processes remain.
    """
    if n < 3:
        raise SolvabilityError("Theorem 4 is stated for n ≥ 3 processes")
    by_epsilon = ceil_log(2, 1 / Fraction(epsilon))
    by_processes = ceil_log(2, n) - 1
    return min(by_epsilon, by_processes)


def aa_upper_bound_iis(n: int, epsilon: Rational) -> int:
    """The matching upper bounds (Aspnes–Herlihy / Hoest–Shavit).

    ``⌈log₃ 1/ε⌉`` rounds for two processes (Eq. 2 divides the diameter by
    3 per round), ``⌈log₂ 1/ε⌉`` for ``n ≥ 3`` (Eq. 3 halves it).
    """
    return aa_lower_bound_iis(n, epsilon)
