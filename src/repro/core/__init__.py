"""The paper's core machinery.

* :mod:`repro.core.solvability` — a complete decision procedure for
  "``Π`` is solvable in ``t`` rounds in ``M``" on finite instances, by
  exhaustive search for a chromatic simplicial map ``f : P^(t) → O``
  agreeing with ``Δ`` (Section 2.2's definition of solvability).
* :mod:`repro.core.local_task` — the local task ``Π_{τ,σ}``
  (Definition 1).
* :mod:`repro.core.closure` — the closure ``CL_M(Π)`` (Definition 2) and
  the β-restricted closure ``CL_M(Π|β)`` of Theorem 4.
* :mod:`repro.core.speedup` — the constructive speedup transformation
  ``f ↦ f'`` of Theorems 1 and 2, with verification.
* :mod:`repro.core.fixed_point` — fixed-point detection and the
  impossibility argument of Lemma 1.
* :mod:`repro.core.lower_bounds` — round-lower-bound engines: generic
  closure iteration, and the closed-form bounds of Corollary 3,
  Theorem 3, and Theorem 4.
"""

from repro.core.solvability import (
    DecisionMap,
    SolvabilityProblem,
    build_solvability_problem,
    find_decision_map,
    is_solvable,
)
from repro.core.local_task import local_task
from repro.core.closure import ClosureComputer, closure_task
from repro.core.speedup import speedup_decision_map, verify_speedup_theorem
from repro.core.fixed_point import (
    FixedPointReport,
    is_fixed_point,
    impossibility_from_fixed_point,
)
from repro.core.lower_bounds import (
    ceil_log,
    iterated_closure_lower_bound,
    aa_lower_bound_iis,
    aa_lower_bound_iis_tas,
    aa_lower_bound_iis_bc,
    aa_upper_bound_iis,
)

__all__ = [
    "DecisionMap",
    "SolvabilityProblem",
    "build_solvability_problem",
    "find_decision_map",
    "is_solvable",
    "local_task",
    "ClosureComputer",
    "closure_task",
    "speedup_decision_map",
    "verify_speedup_theorem",
    "FixedPointReport",
    "is_fixed_point",
    "impossibility_from_fixed_point",
    "ceil_log",
    "iterated_closure_lower_bound",
    "aa_lower_bound_iis",
    "aa_lower_bound_iis_tas",
    "aa_lower_bound_iis_bc",
    "aa_upper_bound_iis",
]
