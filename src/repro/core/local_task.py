"""Local tasks ``Π_{τ,σ}`` (Definition 1).

Given a task ``Π = (I, O, Δ)``, an input simplex ``σ``, and a chromatic set
``τ ⊆ V(Δ(σ))`` with ``ID(τ) = ID(σ)``, the local task asks the processes,
starting from the (possibly illegal) configuration ``τ``, to converge to a
legal output in ``Δ(σ)``:

1. a process running solo must keep its value (``Δ_{τ,σ}(v) = {v}``);
2. any larger group may output any ``Δ(σ)``-simplex on its colors
   (``Δ_{τ,σ}(τ') = proj_{ID(τ')}(Δ(σ))``).

``τ`` need not be a simplex of ``Δ(σ)`` — it is an arbitrary chromatic set
of legal-output *vertices* — but it always forms an abstract simplex, which
serves as the local task's input complex.  Note that ``Δ_{τ,σ}`` is *not*
monotone: singletons are pinned while faces of dimension ≥ 1 are free, so
the solvability engine must constrain every face of ``τ``, which it does.
"""

from __future__ import annotations


from repro.errors import TaskSpecificationError
from repro.tasks.task import Task
from repro.topology.complex import SimplicialComplex
from repro.topology.simplex import Simplex

__all__ = ["local_task"]


def local_task(task: Task, sigma: Simplex, tau: Simplex) -> Task:
    """Build the local task ``Π_{τ,σ} = (τ, Δ(σ), Δ_{τ,σ})``.

    Parameters
    ----------
    task:
        The ambient task ``Π``.
    sigma:
        An input simplex of ``Π``.
    tau:
        A chromatic set of output vertices with ``ID(τ) = ID(σ)``, all drawn
        from ``V(Δ(σ))``.

    Raises
    ------
    TaskSpecificationError
        If ``τ``'s colors differ from ``σ``'s or some vertex of ``τ`` is not
        a vertex of ``Δ(σ)``.
    """
    if tau.ids != sigma.ids:
        raise TaskSpecificationError(
            f"local task needs ID(τ) = ID(σ): got {sorted(tau.ids)} vs "
            f"{sorted(sigma.ids)}"
        )
    allowed = task.delta(sigma)
    stray = set(tau.vertices) - allowed.vertices
    if stray:
        raise TaskSpecificationError(
            f"τ must be drawn from V(Δ(σ)); offending vertices: "
            f"{sorted(stray, key=lambda v: v._sort_key())}"
        )

    input_complex = SimplicialComplex.from_simplex(tau)

    def delta_local(face: Simplex) -> SimplicialComplex:
        if face not in input_complex:
            raise TaskSpecificationError(
                f"{face!r} is not a face of the local task's input τ"
            )
        if len(face) == 1:
            # Condition 1: solo processes are pinned to their τ-value.
            return SimplicialComplex.from_simplex(face)
        # Condition 2: free within Δ(σ), projected onto the face's colors.
        return allowed.proj(face.ids)

    name = f"local[{task.name}]"
    return Task(name, input_complex, allowed, delta_local)
