"""Fixed points of the closure operator and Lemma 1.

A task ``Π`` is a *fixed point* for model ``M`` when ``CL_M(Π) = Π``, i.e.
``Δ'(σ) = Δ(σ)`` for every input simplex.  Lemma 1: a fixed point is either
solvable in zero rounds or unsolvable — iterating the speedup theorem would
otherwise shrink a ``t``-round algorithm to a 0-round one.

Consensus is a fixed point of wait-free IIS (Corollary 1) and the relaxed
consensus of Corollary 2 is a fixed point of IIS+test&set; both yield their
impossibility results through :func:`impossibility_from_fixed_point`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.core.closure import ClosureComputer
from repro.core.solvability import is_solvable
from repro.models.base import ComputationModel
from repro.tasks.task import Task
from repro.telemetry import span
from repro.topology.complex import SimplicialComplex
from repro.topology.simplex import Simplex

__all__ = ["is_fixed_point", "impossibility_from_fixed_point", "FixedPointReport"]


def is_fixed_point(
    task: Task,
    model: ComputationModel,
    input_simplices: Optional[Iterable[Simplex]] = None,
    quantify_beta: bool = False,
) -> bool:
    """``True`` iff ``Δ'(σ) = Δ(σ)`` on every given input simplex.

    ``Δ ⊆ Δ'`` always holds (remark after Definition 2), so the check
    amounts to ruling out any *extra* legal output in the closure.
    """
    computer = ClosureComputer(task, model, quantify_beta=quantify_beta)
    pool = (
        list(input_simplices)
        if input_simplices is not None
        else list(task.input_complex)
    )
    with span(
        "core/fixed-point-check",
        task=task.name,
        model=model.name,
        inputs=len(pool),
    ):
        for sigma in pool:
            closed: SimplicialComplex = computer.delta_prime(sigma)
            if closed.simplices != task.delta(sigma).simplices:
                return False
        return True


@dataclass
class FixedPointReport:
    """Certificate produced by :func:`impossibility_from_fixed_point`.

    Attributes
    ----------
    fixed_point:
        ``CL_M(Π) = Π`` held on the checked simplices.
    zero_round_solvable:
        Whether a 0-round algorithm solves the instance.
    counterexamples:
        Input simplices where ``Δ'(σ) ≠ Δ(σ)``, if any.
    """

    task_name: str
    model_name: str
    fixed_point: bool
    zero_round_solvable: bool
    counterexamples: list[Simplex] = field(default_factory=list)

    @property
    def unsolvable(self) -> bool:
        """Lemma 1's conclusion: fixed point + not 0-round ⟹ unsolvable."""
        return self.fixed_point and not self.zero_round_solvable

    def summary(self) -> str:
        """One-line human-readable verdict."""
        if self.unsolvable:
            return (
                f"{self.task_name} is a fixed point of {self.model_name} and "
                "not 0-round solvable ⟹ unsolvable (Lemma 1)"
            )
        if not self.fixed_point:
            return (
                f"{self.task_name} is NOT a fixed point of {self.model_name} "
                f"({len(self.counterexamples)} counterexample simplices)"
            )
        return f"{self.task_name} is solvable in zero rounds"


def impossibility_from_fixed_point(
    task: Task,
    model: ComputationModel,
    input_simplices: Optional[Iterable[Simplex]] = None,
    quantify_beta: bool = False,
) -> FixedPointReport:
    """Run the full Lemma 1 pipeline and return a certificate.

    Checks the fixed-point property ``Δ' = Δ`` simplex by simplex, then
    decides 0-round solvability; ``report.unsolvable`` is the impossibility
    verdict.
    """
    computer = ClosureComputer(task, model, quantify_beta=quantify_beta)
    pool = (
        list(input_simplices)
        if input_simplices is not None
        else list(task.input_complex)
    )
    with span(
        "core/fixed-point",
        task=task.name,
        model=model.name,
        inputs=len(pool),
    ) as report_span:
        counterexamples: list[Simplex] = []
        for sigma in pool:
            closed = computer.delta_prime(sigma).simplices
            if closed != task.delta(sigma).simplices:
                counterexamples.append(sigma)
        zero_round = is_solvable(task, model, 0, input_simplices=pool)
        report = FixedPointReport(
            task_name=task.name,
            model_name=model.name,
            fixed_point=not counterexamples,
            zero_round_solvable=zero_round,
            counterexamples=counterexamples,
        )
        report_span.set_attribute("unsolvable", report.unsolvable)
        return report
