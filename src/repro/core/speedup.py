"""The asynchronous speedup theorem, constructively (Theorems 1 and 2).

Given a decision map ``f`` solving ``Π`` in ``t`` rounds, the proof of
Theorem 1 *constructs* a map ``f'`` solving ``CL_M(Π)`` in ``t - 1``
rounds:

    ``f'(i, V_i) = f(i, {(i, V_i)})``

— evaluate ``f`` on the round-``t`` vertex obtained when process ``i`` runs
its last round solo.  For augmented models (Theorem 2) the solo extension
also carries the black box's solo answer:
``f'(i, V_i) = f(i, (b_i, {(i, V_i)}))``.

:func:`speedup_decision_map` performs the construction;
:func:`verify_speedup_theorem` additionally *checks* the theorem's statement
on a concrete instance: it verifies that ``f`` solves ``Π`` in ``t`` rounds
and that the constructed ``f'`` solves the closure in ``t - 1`` rounds
(every image configuration ``τ = f'(ρ)`` is certified by exhibiting the
1-round solvability of the local task ``Π_{τ,σ}``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.closure import ClosureComputer
from repro.core.solvability import DecisionMap
from repro.errors import SolvabilityError
from repro.models.base import ComputationModel
from repro.models.protocol import ProtocolOperator
from repro.tasks.task import Task
from repro.telemetry import span
from repro.topology.simplex import Simplex
from repro.topology.vertex import Vertex

__all__ = ["speedup_decision_map", "verify_speedup_theorem", "SpeedupReport"]


def speedup_decision_map(
    task: Task,
    model: ComputationModel,
    decision_map: DecisionMap,
    operator: Optional[ProtocolOperator] = None,
) -> DecisionMap:
    """Construct ``f'`` from ``f`` per the proof of Theorems 1/2.

    Parameters
    ----------
    decision_map:
        A map solving ``task`` after ``decision_map.rounds ≥ 1`` rounds.

    Returns
    -------
    DecisionMap
        ``f'`` defined on every vertex of ``P^(t-1)``, with
        ``rounds = t - 1``.
    """
    rounds = decision_map.rounds
    if rounds < 1:
        raise SolvabilityError(
            "the speedup construction needs a map deciding after ≥ 1 rounds"
        )
    op = operator or ProtocolOperator(model)
    assignment: dict[Vertex, Vertex] = {}
    for sigma in task.input_complex:
        previous = op.of_simplex(sigma, rounds - 1)
        for vertex in previous.vertices:
            if vertex in assignment:
                continue
            solo = model.solo_vertex(vertex)
            try:
                assignment[vertex] = decision_map.assignment[solo]
            except KeyError:
                raise SolvabilityError(
                    f"decision map is undefined on the solo extension "
                    f"{solo!r} of {vertex!r}; was it computed for "
                    f"{rounds} rounds on the same input complex?"
                ) from None
    return DecisionMap(assignment, rounds - 1)


@dataclass
class SpeedupReport:
    """Outcome of a constructive verification of the speedup theorem.

    Attributes
    ----------
    rounds:
        The round count ``t`` of the original map.
    original_valid:
        Whether ``f`` indeed solves the task in ``t`` rounds.
    sped_up_valid:
        Whether the constructed ``f'`` solves the closure in ``t-1`` rounds.
    violations:
        Any ``(σ, ρ, τ)`` triples where ``τ = f'(ρ) ∉ Δ'(σ)`` (empty when
        the theorem holds, as it must on models allowing solo executions).
    """

    rounds: int
    original_valid: bool
    sped_up_valid: bool
    violations: list[tuple[Simplex, Simplex, Simplex]] = field(
        default_factory=list
    )

    @property
    def holds(self) -> bool:
        """The theorem's statement held on this instance."""
        return self.original_valid and self.sped_up_valid


def _solves(
    task: Task,
    decision_map: DecisionMap,
    operator: ProtocolOperator,
    rounds: int,
) -> bool:
    for sigma in task.input_complex:
        allowed = task.delta(sigma).simplices
        protocol = operator.of_simplex(sigma, rounds)
        for facet in protocol.facets:
            if decision_map.output_simplex(facet) not in allowed:
                return False
    return True


def verify_speedup_theorem(
    task: Task,
    model: ComputationModel,
    decision_map: DecisionMap,
) -> SpeedupReport:
    """Check Theorem 1/2 end to end on a concrete instance.

    Verifies that ``decision_map`` solves ``task`` in ``t`` rounds, builds
    ``f'``, and certifies that ``f'`` solves ``CL_M(task)`` in ``t - 1``
    rounds by deciding closure membership of every image configuration.
    """
    rounds = decision_map.rounds
    with span(
        "core/speedup-verify",
        task=task.name,
        model=model.name,
        rounds=rounds,
    ) as verify_span:
        operator = ProtocolOperator(model)
        original_valid = _solves(task, decision_map, operator, rounds)

        faster = speedup_decision_map(task, model, decision_map, operator)
        closure = ClosureComputer(task, model)
        violations: list[tuple[Simplex, Simplex, Simplex]] = []
        for sigma in task.input_complex:
            protocol = operator.of_simplex(sigma, rounds - 1)
            for facet in protocol.facets:
                tau = faster.output_simplex(facet)
                if not closure.contains(sigma, tau):
                    violations.append((sigma, facet, tau))
        report = SpeedupReport(
            rounds=rounds,
            original_valid=original_valid,
            sped_up_valid=not violations,
            violations=violations,
        )
        verify_span.set_attribute("holds", report.holds)
        return report
