"""Deciding ``t``-round solvability by exhaustive simplicial-map search.

A task ``Π = (I, O, Δ)`` is solvable in ``t`` rounds in model ``M`` iff
there is a chromatic simplicial map ``f : P^(t) → O`` with
``f(P^(t)(σ)) ⊆ Δ(σ)`` for **every** simplex ``σ ∈ I`` (Section 2.2).  On a
finite instance this is a finite constraint-satisfaction problem over the
protocol vertices:

* the variables are the vertices of ``P^(t)`` (one per (process, view));
* the domain of a vertex is the set of same-colored output vertices allowed
  by every ``Δ(σ)`` whose protocol complex contains it;
* for every input simplex ``σ`` and every facet ``ρ`` of ``P^(t)(σ)``, the
  image ``f(ρ)`` must be a simplex of ``Δ(σ)``.

Because complexes are face-closed, a *partial* image of a facet must already
be a simplex of the allowed complex — which gives the backtracking search a
cheap, exact forward check.  The engine is model-agnostic: register-only and
augmented models both work, and the closure machinery reuses it for the
one-round local tasks of Definition 2 (whose ``Δ`` is not monotone, which is
why constraints range over all input simplices, not only facets).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable,
    Iterable,
    Mapping,
    Optional,
    Sequence,
)

from repro.errors import SolvabilityError
from repro.models.base import ComputationModel
from repro.models.protocol import ProtocolOperator
from repro.tasks.task import Task
from repro.telemetry import span
from repro.topology.complex import SimplicialComplex
from repro.topology.maps import SimplicialMap
from repro.topology.simplex import Simplex
from repro.topology.vertex import Vertex

__all__ = [
    "DecisionMap",
    "SolvabilityProblem",
    "build_solvability_problem",
    "find_decision_map",
    "is_solvable",
]


@dataclass(frozen=True)
class DecisionMap:
    """A solution to a solvability problem: the algorithm's output map ``f``.

    Attributes
    ----------
    assignment:
        The vertex map: protocol vertex ``(i, V_i)`` ↦ output vertex
        ``(i, y_i)``.
    rounds:
        The number of communication rounds the map decides after.
    """

    assignment: Mapping[Vertex, Vertex]
    rounds: int

    def __call__(self, vertex: Vertex) -> Vertex:
        return self.assignment[vertex]

    def output_simplex(self, protocol_simplex: Simplex) -> Simplex:
        """The decided configuration for one execution."""
        return Simplex(
            self.assignment[v] for v in protocol_simplex.vertices
        )

    def as_simplicial_map(
        self, source: SimplicialComplex, target: SimplicialComplex
    ) -> SimplicialMap:
        """Package the assignment as a checked :class:`SimplicialMap`."""
        restricted = {
            vertex: self.assignment[vertex] for vertex in source.vertices
        }
        return SimplicialMap(source, target, restricted)


@dataclass
class SolvabilityProblem:
    """A compiled solvability instance, ready to be searched.

    Attributes
    ----------
    candidates:
        Allowed output vertices per protocol vertex.
    constraints:
        Pairs ``(protocol facet, allowed face set)``: the image of the facet
        (and of each of its faces, incrementally) must belong to the set.
    rounds:
        Recorded for reporting only.
    """

    candidates: dict[Vertex, tuple[Vertex, ...]]
    constraints: list[tuple[Simplex, frozenset[Simplex]]]
    rounds: int = 0
    #: Number of search nodes explored by the most recent :meth:`solve`.
    #: Derived state, not a constructor parameter: keeping it out of
    #: ``__init__`` guarantees positional construction binds exactly
    #: ``(candidates, constraints, rounds)`` and nothing more.
    last_search_nodes: int = field(default=0, init=False, compare=False)
    _by_vertex: dict[Vertex, list[int]] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    #: Lookup tables derived by :meth:`_index`, all mask-native: every
    #: output vertex appearing in some allowed family gets a bit in a
    #: problem-local bit space (``_out_bit``), an allowed face becomes
    #: the OR of its vertices' bits, and a partial image is consistent
    #: iff its OR is in the constraint's ``set[int]``.  Building the
    #: image frozenset per probe was the search's hottest allocation;
    #: an int OR plus one set lookup replaces it.  Partner tables for
    #: the pairwise propagation are ``bit → color → partner bit-mask``,
    #: so arc survival is a single AND against the partner's domain
    #: mask.  Tables are shared between constraints with the same
    #: allowed family.
    _constraint_vertices: list[tuple[Vertex, ...]] = field(
        default_factory=list, init=False, repr=False, compare=False
    )
    _allowed_masks: list[set[int]] = field(
        default_factory=list, init=False, repr=False, compare=False
    )
    _allowed_partners: list[dict[int, dict[int, int]]] = field(
        default_factory=list, init=False, repr=False, compare=False
    )
    _out_bit: dict[Vertex, int] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def _index(self) -> None:
        self._by_vertex = {vertex: [] for vertex in self.candidates}
        self._constraint_vertices = []
        self._allowed_masks = []
        self._allowed_partners = []
        bit_of: dict[Vertex, int] = {}
        self._out_bit = bit_of
        mask_tables: dict[frozenset[Simplex], set[int]] = {}
        partner_tables: dict[
            frozenset[Simplex], dict[int, dict[int, int]]
        ] = {}
        for position, (facet, allowed) in enumerate(self.constraints):
            vertices = facet.vertices
            self._constraint_vertices.append(vertices)
            for vertex in vertices:
                self._by_vertex[vertex].append(position)
            masks = mask_tables.get(allowed)
            if masks is None:
                masks = set()
                partners: dict[int, dict[int, int]] = {}
                for simplex in allowed:
                    mask = 0
                    for vertex in simplex.vertices:
                        bit = bit_of.get(vertex)
                        if bit is None:
                            bit = bit_of[vertex] = len(bit_of)
                        mask |= 1 << bit
                    masks.add(mask)
                    if len(simplex.vertices) == 2:
                        first, second = simplex.vertices
                        first_bit = bit_of[first]
                        second_bit = bit_of[second]
                        by_color = partners.setdefault(first_bit, {})
                        by_color[second.color] = by_color.get(
                            second.color, 0
                        ) | (1 << second_bit)
                        by_color = partners.setdefault(second_bit, {})
                        by_color[first.color] = by_color.get(
                            first.color, 0
                        ) | (1 << first_bit)
                mask_tables[allowed] = masks
                partner_tables[allowed] = partners
            self._allowed_masks.append(masks)
            self._allowed_partners.append(partner_tables[allowed])

    def _image_mask(
        self,
        vertices: tuple[Vertex, ...],
        assignment: dict[Vertex, Vertex],
    ) -> Optional[int]:
        """OR of the assigned images' bits over one constraint facet.

        Returns ``None`` when fewer than two of ``vertices`` are
        assigned (partial images of size < 2 are vacuously consistent:
        single vertices were filtered into the domains already), and
        ``-1`` when some image has no bit at all — it appears in no
        allowed family, so no allowed face can contain it, and ``-1``
        is never a member of a mask set, making the membership test
        reject it without a special case.
        """
        bit_of = self._out_bit
        mask = 0
        count = 0
        missing = False
        for vertex in vertices:
            image = assignment.get(vertex)
            if image is None:
                continue
            count += 1
            bit = bit_of.get(image)
            if bit is None:
                missing = True
            else:
                mask |= 1 << bit
        if count < 2:
            return None
        return -1 if missing else mask

    def solve(
        self,
        use_propagation: bool = True,
        use_components: bool = True,
        node_limit: Optional[int] = None,
    ) -> Optional[DecisionMap]:
        """Search for a satisfying assignment; ``None`` if none exists.

        The search runs in three stages: pairwise arc-consistency
        propagation (prunes values with no compatible partner inside some
        constraint facet — complete for binary constraints), decomposition
        of the constraint graph into connected components (independent
        sub-searches cannot poison each other), and per-component
        backtracking with incremental face checks for the higher-arity
        constraints.

        The two flags disable the first two stages; they exist for the
        ablation benchmarks — leave them on in real use (without them,
        refutations can degenerate to exponential thrashing).  An optional
        ``node_limit`` bounds the number of explored search nodes; when it
        is exceeded a :class:`SolvabilityError` is raised (used by the same
        benchmarks to quantify the thrashing without waiting it out).
        """
        with span(
            "solvability/solve",
            vertices=len(self.candidates),
            constraints=len(self.constraints),
            rounds=self.rounds,
        ) as solve_span:
            result = self._solve(use_propagation, use_components, node_limit)
            solve_span.set_attribute("nodes", self.last_search_nodes)
            solve_span.set_attribute("solvable", result is not None)
            return result

    def prepare_search(
        self,
        use_propagation: bool = True,
        use_components: bool = True,
    ) -> Optional[
        tuple[
            dict[Vertex, list[Vertex]],
            dict[Vertex, Vertex],
            list[list[Vertex]],
        ]
    ]:
        """Run every pre-search stage; ``None`` refutes the instance.

        The stages shared by the serial and parallel engines: the
        empty-domain check, constraint indexing, pairwise
        arc-consistency propagation, up-front assignment of forced
        (singleton-domain) vertices, the pinned-pair constraint
        precheck, and the connected-component decomposition.  Returns
        ``(domains, assignment, components)`` ready for per-component
        backtracking — each component is independent of the others
        given the forced assignment, which is exactly what the parallel
        engine fans out.
        """
        self.last_search_nodes = 0
        if any(not domain for domain in self.candidates.values()):
            return None
        self._index()
        domains: dict[Vertex, list[Vertex]] = {
            vertex: list(options)
            for vertex, options in self.candidates.items()
        }
        if use_propagation and not self._propagate_pairwise(domains):
            return None

        # Forced vertices (singleton domains — e.g. every solo view, whose
        # carrier intersection pins the output) are assigned up front.
        # Beyond saving search depth, this is what lets the component
        # decomposition genuinely split the problem: forced vertices are
        # shared between otherwise-independent input windows and would
        # bridge their components.
        assignment: dict[Vertex, Vertex] = {
            vertex: options[0]
            for vertex, options in domains.items()
            if len(options) == 1
        }
        for position, vertices in enumerate(self._constraint_vertices):
            pinned = self._image_mask(vertices, assignment)
            if (
                pinned is not None
                and pinned not in self._allowed_masks[position]
            ):
                return None

        free = [v for v in domains if v not in assignment]
        components = (
            self._components(free)
            if use_components
            else ([sorted(free, key=lambda v: v._sort_key())] if free else [])
        )
        return domains, assignment, components

    def search_component(
        self,
        component: list[Vertex],
        domains: dict[Vertex, list[Vertex]],
        assignment: dict[Vertex, Vertex],
        node_limit: Optional[int] = None,
    ) -> bool:
        """Backtrack one component over state from :meth:`prepare_search`.

        Extends ``assignment`` in place with images for the component's
        vertices; ``True`` iff the component is satisfiable.
        """
        return self._search_component(
            component, domains, assignment, node_limit
        )

    def _solve(
        self,
        use_propagation: bool,
        use_components: bool,
        node_limit: Optional[int],
    ) -> Optional[DecisionMap]:
        prepared = self.prepare_search(use_propagation, use_components)
        if prepared is None:
            return None
        domains, assignment, components = prepared
        for component in components:
            if not self._search_component(
                component, domains, assignment, node_limit
            ):
                return None
        return DecisionMap(dict(assignment), self.rounds)

    def _propagate_pairwise(
        self, domains: dict[Vertex, list[Vertex]]
    ) -> bool:
        """AC-3 over the pairs of every constraint facet.

        A candidate for ``u`` survives only if, for every facet containing
        both ``u`` and some ``v``, a candidate of ``v`` forms an allowed
        edge with it (complexes are face-closed, so the pair must itself
        be an allowed simplex).  Edge tests go through the bit-indexed
        partner tables built by :meth:`_index`: each domain is mirrored
        as an OR of its candidates' bits, so one arc test is a dict
        lookup plus a single AND — no simplices (or sets) are
        materialized during the fixpoint.
        """
        arcs = []
        arc_set = set()
        for position, vertices in enumerate(self._constraint_vertices):
            partners = self._allowed_partners[position]
            for i, u in enumerate(vertices):
                for v in vertices[i + 1 :]:
                    for left, right in ((u, v), (v, u)):
                        key = (left, right, id(partners))
                        if key not in arc_set:
                            arc_set.add(key)
                            arcs.append((left, right, partners))
        from collections import deque

        queue = deque(arcs)
        watchers: dict[Vertex, list] = {}
        for arc in arcs:
            watchers.setdefault(arc[1], []).append(arc)

        bit_of = self._out_bit

        def domain_mask(options: list[Vertex]) -> int:
            mask = 0
            for option in options:
                bit = bit_of.get(option)
                if bit is not None:
                    mask |= 1 << bit
            return mask

        domain_masks = {
            vertex: domain_mask(options)
            for vertex, options in domains.items()
        }
        empty: dict[int, int] = {}
        while queue:
            u, v, partners = queue.popleft()
            mask_v = domain_masks[v]
            color_v = v.color
            kept = []
            for cand_u in domains[u]:
                bit = bit_of.get(cand_u)
                allowed_mask = (
                    partners.get(bit, empty).get(color_v)
                    if bit is not None
                    else None
                )
                if allowed_mask is not None and allowed_mask & mask_v:
                    kept.append(cand_u)
            if len(kept) != len(domains[u]):
                if not kept:
                    return False
                domains[u] = kept
                domain_masks[u] = domain_mask(kept)
                for arc in watchers.get(u, ()):
                    queue.append(arc)
        return True

    def _components(self, free: list[Vertex]) -> list[list[Vertex]]:
        """Connected components of the constraint graph over free vertices.

        Forced vertices are excluded: their values are already fixed, so
        they transmit no uncertainty between the subproblems they touch.
        """
        free_set = set(free)
        neighbors: dict[Vertex, set] = {v: set() for v in free_set}
        for constraint_vertices in self._constraint_vertices:
            vertices = [v for v in constraint_vertices if v in free_set]
            for i, u in enumerate(vertices):
                for v in vertices[i + 1 :]:
                    neighbors[u].add(v)
                    neighbors[v].add(u)
        remaining = set(free_set)
        components: list[list[Vertex]] = []
        while remaining:
            seed = min(remaining, key=lambda v: v._sort_key())
            stack, seen = [seed], {seed}
            while stack:
                current = stack.pop()
                for neighbor in neighbors[current]:
                    if neighbor not in seen:
                        seen.add(neighbor)
                        stack.append(neighbor)
            components.append(
                sorted(seen, key=lambda v: v._sort_key())
            )
            remaining -= seen
        return components

    def _search_component(
        self,
        component: list[Vertex],
        domains: dict[Vertex, list[Vertex]],
        assignment: dict[Vertex, Vertex],
        node_limit: Optional[int] = None,
    ) -> bool:
        order = sorted(
            component, key=lambda v: (len(domains[v]), v._sort_key())
        )
        constraint_vertices = self._constraint_vertices
        allowed_masks = self._allowed_masks
        by_vertex = self._by_vertex
        image_mask = self._image_mask

        def consistent(vertex: Vertex) -> bool:
            # One OR sweep plus one set-of-int lookup per touched
            # constraint, for any arity — the pair case needs no special
            # path since a two-bit mask lookup is exactly as cheap.
            for constraint_index in by_vertex[vertex]:
                partial = image_mask(
                    constraint_vertices[constraint_index], assignment
                )
                if (
                    partial is not None
                    and partial not in allowed_masks[constraint_index]
                ):
                    return False
            return True

        def backtrack(depth: int) -> bool:
            if depth == len(order):
                return True
            vertex = order[depth]
            for image in domains[vertex]:
                self.last_search_nodes += 1
                if node_limit is not None and (
                    self.last_search_nodes > node_limit
                ):
                    raise SolvabilityError(
                        f"search exceeded the node budget of {node_limit}"
                    )
                assignment[vertex] = image
                if consistent(vertex) and backtrack(depth + 1):
                    return True
                del assignment[vertex]
            return False

        try:
            return backtrack(0)
        except SolvabilityError:
            # A budget abort propagates out of backtrack() mid-descent,
            # skipping the per-frame deletions; unwind the component's
            # partial images so a caught error leaves the problem (and the
            # shared assignment) reusable for a later solve.
            for vertex in order:
                assignment.pop(vertex, None)
            raise


def build_solvability_problem(
    input_simplices: Iterable[Simplex],
    delta_of: Callable[[Simplex], SimplicialComplex],
    protocol_of: Callable[[Simplex], SimplicialComplex],
    rounds: int = 0,
) -> SolvabilityProblem:
    """Compile constraints for a (generalized) solvability question.

    Parameters
    ----------
    input_simplices:
        Every input simplex whose executions constrain ``f`` (for tasks,
        all simplices of ``I``; for local tasks, all faces of ``τ``).
    delta_of:
        The specification ``σ ↦ Δ(σ)``.
    protocol_of:
        ``σ ↦ P^(t)(σ)``, the executions where exactly ``ID(σ)``
        participate.
    """
    candidates: dict[Vertex, set] = {}
    constraints: list[tuple[Simplex, frozenset[Simplex]]] = []
    constraint_keys: set = set()

    for sigma in input_simplices:
        allowed = delta_of(sigma)
        allowed_faces = allowed.simplices
        # Accumulate per-color domains in plain sets (rebuilding a frozenset
        # per vertex is quadratic in the color class size).
        allowed_by_color: dict[int, set] = {}
        for output_vertex in allowed.vertices:
            allowed_by_color.setdefault(output_vertex.color, set()).add(
                output_vertex
            )
        protocol = protocol_of(sigma)
        empty: set = set()
        for vertex in protocol.vertices:
            domain = allowed_by_color.get(vertex.color, empty)
            if vertex in candidates:
                candidates[vertex] &= domain
            else:
                candidates[vertex] = set(domain)
        for facet in protocol.facets:
            key = (facet, allowed_faces)
            if key not in constraint_keys:
                constraint_keys.add(key)
                constraints.append((facet, allowed_faces))

    ordered_candidates = {
        vertex: tuple(sorted(domain, key=lambda v: v._sort_key()))
        for vertex, domain in candidates.items()
    }
    return SolvabilityProblem(ordered_candidates, constraints, rounds)


def find_decision_map(
    task: Task,
    model: ComputationModel,
    rounds: int,
    input_simplices: Optional[Iterable[Simplex]] = None,
    operator: Optional[ProtocolOperator] = None,
    workers: Optional[int] = None,
) -> Optional[DecisionMap]:
    """Search for a ``rounds``-round decision map solving ``task`` in ``model``.

    Parameters
    ----------
    input_simplices:
        Restrict the constraints to these input simplices (default: every
        simplex of the task's input complex).  Restricting weakens the
        question, which is safe for *impossibility*: if the restricted
        instance is unsolvable, so is the full task.
    operator:
        Reuse a memoized :class:`ProtocolOperator` across calls.
    workers:
        With more than one (resolved) worker, protocol expansion and the
        independent constraint components are searched concurrently (the
        components with early cancel on the first refuted one).  The
        verdict — and the returned map, if any — are identical to the
        serial search.
    """
    if rounds < 0:
        raise SolvabilityError("rounds must be non-negative")
    op = operator or ProtocolOperator(model)
    simplices: Sequence[Simplex] = (
        list(input_simplices)
        if input_simplices is not None
        else list(task.input_complex)
    )
    # Imported lazily: repro.parallel imports this module at load time.
    from repro.parallel.pool import resolve_workers

    resolved = resolve_workers(workers)
    if resolved > 1:
        from repro.parallel.solving import parallel_find_decision_map

        return parallel_find_decision_map(
            task, op, rounds, list(simplices), resolved
        )
    problem = build_solvability_problem(
        simplices,
        task.delta,
        lambda sigma: op.of_simplex(sigma, rounds),
        rounds=rounds,
    )
    return problem.solve()


def is_solvable(
    task: Task,
    model: ComputationModel,
    rounds: int,
    input_simplices: Optional[Iterable[Simplex]] = None,
    operator: Optional[ProtocolOperator] = None,
    workers: Optional[int] = None,
) -> bool:
    """``True`` iff a ``rounds``-round algorithm solves the task instance."""
    found = find_decision_map(
        task, model, rounds, input_simplices, operator, workers
    )
    return found is not None
