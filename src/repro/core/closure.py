"""The closure of a task with respect to a model (Definition 2).

``CL_M(Π) = (I, O', Δ')`` keeps the inputs of ``Π`` and declares an output
set ``τ ⊆ V(Δ(σ))`` (chromatic, ``ID(τ) = ID(σ)``) legal for ``σ`` iff the
local task ``Π_{τ,σ}`` is solvable in at most one round in ``M``.  Since a
0-round algorithm is subsumed by a 1-round algorithm that ignores what it
collected, membership reduces to 1-round solvability, decided exactly by the
engine of :mod:`repro.core.solvability`.

Two practical notes:

* membership only depends on the pair ``(Δ(σ), τ)``, so results are memoized
  on that pair — sweeps over many input simplices with the same output
  window (ubiquitous in approximate agreement) share almost all the work;
* for augmented models whose box takes inputs, the one-round algorithm is a
  pair ``(α, f)``.  When the model carries a fixed input function (the
  ``β``-restricted closure ``CL_M(Π|β)`` of Theorem 4) it is used as is;
  alternatively the computer can quantify over *all* ID-to-bit functions
  (``quantify_beta=True``), which yields the unrestricted closure for boxes
  called with ID-based inputs.
"""

from __future__ import annotations

from itertools import product
from typing import Iterable, Optional

from repro.core.local_task import local_task
from repro.core.solvability import build_solvability_problem
from repro.errors import ChromaticityError, SolvabilityError
from repro.instrumentation import counter
from repro.models.base import ComputationModel
from repro.models.protocol import ProtocolOperator
from repro.objects.augmented import AugmentedModel
from repro.objects.beta import beta_input_function
from repro.tasks.task import Task
from repro.telemetry import span
from repro.topology.complex import SimplicialComplex
from repro.topology.simplex import Simplex

__all__ = ["ClosureComputer", "closure_task"]

_MEMBERSHIP_STATS = counter("closure.membership")


class ClosureComputer:
    """Computes ``Δ'`` of ``CL_M(Π)`` membership-by-membership.

    Parameters
    ----------
    task:
        The task ``Π`` being closed.
    model:
        The computation model ``M``.  For :class:`AugmentedModel` instances
        with an input-taking box, the model's own input function defines the
        admissible one-round algorithms (the ``β``-closure); set
        ``quantify_beta`` to instead search over every ID-to-{0,1} input
        function.
    quantify_beta:
        Existentially quantify over β functions when deciding local-task
        solvability.  Only meaningful for augmented models.
    """

    def __init__(
        self,
        task: Task,
        model: ComputationModel,
        quantify_beta: bool = False,
    ) -> None:
        self._task = task
        self._model = model
        self._quantify_beta = quantify_beta
        if quantify_beta and not isinstance(model, AugmentedModel):
            raise SolvabilityError(
                "quantify_beta requires an augmented model"
            )
        #: Membership keyed by ``(Δ(σ), mask of τ over Δ(σ)'s table)``.
        #: Equal allowed complexes share one interned table, so the mask
        #: is canonical; the complex itself stays in the key because two
        #: *different* complexes over the same vertex set also share
        #: that table — ``(table_id, mask)`` alone would collide.
        self._membership_cache: dict[
            tuple[SimplicialComplex, int], bool
        ] = {}
        self._delta_cache: dict[Simplex, SimplicialComplex] = {}
        # One memoized operator shared by every (σ, τ, β) decision — the
        # model's own one-round cache makes a fresh operator cheap, but
        # reusing a single instance also shares the iterated ``P^(t)``
        # complexes across decisions.
        self._operator = ProtocolOperator(model)
        self._beta_cache: dict[
            tuple[tuple[int, ...], tuple[int, ...]],
            tuple[ComputationModel, ProtocolOperator],
        ] = {}

    @property
    def task(self) -> Task:
        """The task being closed."""
        return self._task

    @property
    def model(self) -> ComputationModel:
        """The model the closure is taken with respect to."""
        return self._model

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def contains(self, sigma: Simplex, tau: Simplex) -> bool:
        """``τ ∈ Δ'(σ)``: is the local task ``Π_{τ,σ}`` 1-round solvable?

        Definition 2 additionally requires ``ID(τ) = ID(σ)`` and
        ``τ ⊆ V(Δ(σ))``; candidates violating either are simply not in the
        closure.
        """
        if tau.ids != sigma.ids:
            return False
        allowed = self._task.delta(sigma)
        table, _ = allowed._ensure_index()
        try:
            # The strict encode doubles as the τ ⊆ V(Δ(σ)) test: a
            # vertex outside the allowed complex is not in its table.
            mask = table.encode_mask(tau)
        except ChromaticityError:
            return False
        return self._contains_mask(sigma, allowed, mask, tau)

    def _contains_mask(
        self,
        sigma: Simplex,
        allowed: SimplicialComplex,
        mask: int,
        tau: Optional[Simplex] = None,
    ) -> bool:
        """Memoized membership for a τ already encoded over Δ(σ)'s table.

        ``τ`` itself is only materialized on a cache miss (the local-task
        decision needs the simplex); mask-level sweeps like
        :meth:`legal_outputs` pass the mask alone.
        """
        key = (allowed, mask)
        found = self._membership_cache.get(key)
        if found is None:
            _MEMBERSHIP_STATS.miss()
            if tau is None:
                table, _ = allowed._ensure_index()
                tau = table.decode_mask_trusted(mask)
            found = self._membership_cache[key] = self._decide(
                sigma, tau, allowed
            )
        else:
            _MEMBERSHIP_STATS.hit()
        return found

    def _decide(
        self, sigma: Simplex, tau: Simplex, allowed: SimplicialComplex
    ) -> bool:
        # Fast path: τ ∈ Δ(σ) is 0-round solvable (each process keeps its
        # value), hence in the closure — the containment Δ ⊆ Δ' of the
        # paper's remark after Definition 2.
        if tau in allowed:
            return True
        with span(
            "closure/decide",
            task=self._task.name,
            model=self._model.name,
            participants=len(tau.ids),
        ) as decision_span:
            the_local_task = local_task(self._task, sigma, tau)
            member = False
            for _, operator in self._candidate_operators(tau):
                problem = build_solvability_problem(
                    list(the_local_task.input_complex),
                    the_local_task.delta,
                    lambda face: operator.of_simplex(face, 1),
                    rounds=1,
                )
                if problem.solve() is not None:
                    member = True
                    break
            decision_span.set_attribute("member", member)
            return member

    def _candidate_operators(
        self, tau: Simplex
    ) -> Iterable[tuple[ComputationModel, ProtocolOperator]]:
        if not self._quantify_beta:
            yield self._model, self._operator
            return
        assert isinstance(self._model, AugmentedModel)
        ids = tuple(sorted(tau.ids))
        for bits in product((0, 1), repeat=len(ids)):
            key = (ids, bits)
            entry = self._beta_cache.get(key)
            if entry is None:
                beta = dict(zip(ids, bits))
                model = AugmentedModel(
                    self._model.box,
                    beta_input_function(beta),
                    name=f"{self._model.name}|β={bits}",
                )
                entry = self._beta_cache[key] = (
                    model,
                    ProtocolOperator(model),
                )
            yield entry

    def _candidate_models(
        self, tau: Simplex
    ) -> Iterable[ComputationModel]:
        """The models quantified over for ``τ`` (kept for introspection)."""
        for model, _ in self._candidate_operators(tau):
            yield model

    # ------------------------------------------------------------------
    # The closure's specification
    # ------------------------------------------------------------------
    def legal_outputs(self, sigma: Simplex) -> list[Simplex]:
        """All chromatic sets ``τ ∈ Δ'(σ)`` with ``ID(τ) = ID(σ)``, sorted."""
        with span(
            "closure/legal-outputs",
            task=self._task.name,
            model=self._model.name,
        ):
            allowed = self._task.delta(sigma)
            table, _ = allowed._ensure_index()
            # Candidate τ masks come straight off the table's per-color
            # bits; a Simplex is built only for cache-missing members
            # (inside _contains_mask) and for the returned results.
            per_color = [
                [
                    1 << table.index_of(vertex)
                    for vertex in allowed.vertices_of_color(color)
                ]
                for color in sorted(sigma.ids)
            ]
            found = []
            for combo in product(*per_color):
                mask = 0
                for bit in combo:
                    mask |= bit
                if self._contains_mask(sigma, allowed, mask):
                    found.append(mask)
            return sorted(
                (table.decode_mask_trusted(mask) for mask in found),
                key=lambda s: s._sort_key(),
            )

    def delta_prime(self, sigma: Simplex) -> SimplicialComplex:
        """``Δ'(σ)`` as a complex (the legal ``τ`` sets and their faces)."""
        if sigma not in self._delta_cache:
            self._delta_cache[sigma] = SimplicialComplex(
                self.legal_outputs(sigma)
            )
        return self._delta_cache[sigma]

    def as_task(
        self,
        name: Optional[str] = None,
        input_simplices: Optional[Iterable[Simplex]] = None,
    ) -> Task:
        """Materialize ``CL_M(Π)`` as a :class:`Task`.

        The output complex ``O'`` is the union of ``Δ'`` over the given
        input simplices (default: the whole input complex), per
        Definition 2 ("the simplices of O' are the images of Δ' and all
        their faces").
        """
        pool = (
            list(input_simplices)
            if input_simplices is not None
            else list(self._task.input_complex)
        )
        with span(
            "closure/as-task",
            task=self._task.name,
            model=self._model.name,
            inputs=len(pool),
        ):
            output_facets = []
            for sigma in pool:
                output_facets.extend(self.delta_prime(sigma).facets)
            output_complex = SimplicialComplex(output_facets)
        label = name or f"CL_{self._model.name}({self._task.name})"
        return Task(
            label,
            self._task.input_complex,
            output_complex,
            self.delta_prime,
        )


def closure_task(
    task: Task,
    model: ComputationModel,
    name: Optional[str] = None,
    quantify_beta: bool = False,
) -> Task:
    """One-call convenience wrapper: materialize ``CL_M(Π)``."""
    computer = ClosureComputer(task, model, quantify_beta=quantify_beta)
    return computer.as_task(name=name)
