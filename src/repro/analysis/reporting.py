"""Plain-text experiment tables.

The benchmark harness prints, for every reproduced artifact, a
"paper vs. measured" table.  This module renders those tables without any
third-party dependency and in a stable format so EXPERIMENTS.md diffs stay
readable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["ExperimentRow", "render_table", "render_rows"]


@dataclass(frozen=True)
class ExperimentRow:
    """One row of a paper-vs-measured table."""

    instance: str
    paper: str
    measured: str
    match: bool

    def cells(self) -> Sequence[str]:
        """The row's rendered cells."""
        return (
            self.instance,
            self.paper,
            self.measured,
            "ok" if self.match else "MISMATCH",
        )


def render_rows(
    title: str,
    rows: Iterable[Sequence[str]],
    headers: Sequence[str],
) -> str:
    """Render arbitrary cell rows as a fixed-width table with a title line.

    The generic engine behind :func:`render_table`; the checks subsystem
    reuses it for finding reports.
    """
    materialized: list[Sequence[str]] = [tuple(headers)]
    materialized.extend(tuple(row) for row in rows)
    widths = [
        max(len(str(row[col])) for row in materialized)
        for col in range(len(headers))
    ]

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(
            str(cell).ljust(width) for cell, width in zip(cells, widths)
        ).rstrip()

    lines = [title, "-" * len(title), fmt(materialized[0])]
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(fmt(cells) for cells in materialized[1:])
    return "\n".join(lines)


def render_table(
    title: str,
    rows: Iterable[ExperimentRow],
    headers: Sequence[str] = ("instance", "paper", "measured", "verdict"),
) -> str:
    """Render a fixed-width paper-vs-measured table with a title line.

    Returns the table as a string; callers print it (benchmarks) or write
    it to EXPERIMENTS.md.
    """
    return render_rows(title, (row.cells() for row in rows), headers)
