"""Cache-stats reporting for the memoized hot paths.

The substrate memoizes at four layers (one-round complexes per model,
view maps per participant set, ``P^(t)`` per protocol operator, closure
membership per ``(Δ(σ), τ)`` window); every layer reports into the
process-wide counters of :mod:`repro.instrumentation`.  This module turns
those counters into rows and plain-text tables, in the same format as the
experiment tables, so benchmarks can record cache effectiveness alongside
the reproduced artifacts.

Typical use::

    from repro.instrumentation import counters_snapshot, counters_delta

    before = counters_snapshot()
    ...  # run the workload
    print(render_cache_report(counters_delta(before, counters_snapshot())))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.reporting import render_table
from repro.instrumentation import all_counters

__all__ = ["CacheStatsRow", "cache_stats_rows", "render_cache_report"]

_HEADERS = ("cache", "hits", "misses (constructions)", "hit rate")


@dataclass(frozen=True)
class CacheStatsRow:
    """One cache's tallies, renderable by :func:`render_table`."""

    cache: str
    hits: int
    misses: int

    @property
    def calls(self) -> int:
        return self.hits + self.misses

    def cells(self) -> Sequence[str]:
        rate = f"{self.hits / self.calls:.1%}" if self.calls else "n/a"
        return (self.cache, str(self.hits), str(self.misses), rate)


def cache_stats_rows(
    stats: Optional[dict[str, tuple[int, int]]] = None,
) -> list[CacheStatsRow]:
    """One row per cache, sorted by cache name.

    Parameters
    ----------
    stats:
        ``{name: (hits, misses)}``, e.g. from
        :func:`repro.instrumentation.counters_delta`.  Defaults to the
        lifetime totals of every registered counter.
    """
    if stats is None:
        stats = {
            entry.name: (entry.hits, entry.misses)
            for entry in all_counters()
        }
    # stats.get with a zero default: a delta dict may mention a counter
    # group without tallies (e.g. assembled by hand, or filtered), and a
    # fresh process — telemetry never enabled, no cache touched — has no
    # groups at all.  Both must render, not raise.
    return [
        CacheStatsRow(name, *stats.get(name, (0, 0)))
        for name in sorted(stats)
    ]


def render_cache_report(
    stats: Optional[dict[str, tuple[int, int]]] = None,
    title: str = "Cache effectiveness (hits / misses = constructions)",
) -> str:
    """Render the counters as a fixed-width table.

    Renders cleanly — headers only, no division by zero — when no
    counter group has been touched (or telemetry was never enabled).
    """
    rows = cache_stats_rows(stats)
    table = render_table(title, rows, headers=_HEADERS)
    if not rows:
        table += "\n(no cache activity recorded)"
    return table
