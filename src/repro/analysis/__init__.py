"""Analysis and reporting: census of complexes, figure reconstructions,
experiment tables.

* :mod:`repro.analysis.counting` — f-vectors, per-color view censuses,
  model comparisons (the numbers behind Fig. 8 and Fig. 5);
* :mod:`repro.analysis.figures` — the structures shown in the paper's
  figures, reconstructed as data;
* :mod:`repro.analysis.reporting` — plain-text tables for EXPERIMENTS.md
  and the benchmark harness.
"""

from repro.analysis.counting import (
    model_census,
    per_color_census,
    compare_models,
)
from repro.analysis.figures import (
    figure4_complex_and_map,
    figure5_complex,
    figure6_simplices,
    figure7_complex,
    figure8_census,
)
from repro.analysis.reporting import render_table, ExperimentRow
from repro.analysis.cache_report import (
    CacheStatsRow,
    cache_stats_rows,
    render_cache_report,
)
from repro.analysis.export import to_dot, facet_listing, vertex_legend

__all__ = [
    "model_census",
    "per_color_census",
    "compare_models",
    "figure4_complex_and_map",
    "figure5_complex",
    "figure6_simplices",
    "figure7_complex",
    "figure8_census",
    "render_table",
    "ExperimentRow",
    "CacheStatsRow",
    "cache_stats_rows",
    "render_cache_report",
    "to_dot",
    "facet_listing",
    "vertex_legend",
]
