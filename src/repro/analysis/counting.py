"""Census utilities for protocol complexes.

These functions compute the combinatorial data the paper's figures display:
facet counts, f-vectors, per-color vertex counts, and strict-inclusion
comparisons between models (Fig. 8's message is precisely
``IIS ⊂ snapshot ⊂ collect`` with facet counts 13 / 19 / 25 for ``n = 3``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.base import ComputationModel
from repro.topology.complex import SimplicialComplex
from repro.topology.simplex import Simplex

__all__ = ["ComplexCensus", "model_census", "per_color_census", "compare_models"]


@dataclass(frozen=True)
class ComplexCensus:
    """Summary statistics of a complex."""

    facets: int
    vertices: int
    f_vector: tuple[int, ...]
    euler_characteristic: int
    dim: int
    pure: bool

    @classmethod
    def of(cls, complex_: SimplicialComplex) -> "ComplexCensus":
        """Compute the census of a complex."""
        return cls(
            facets=len(complex_.facets),
            vertices=len(complex_.vertices),
            f_vector=complex_.f_vector(),
            euler_characteristic=complex_.euler_characteristic(),
            dim=complex_.dim,
            pure=complex_.is_pure(),
        )


def model_census(
    model: ComputationModel, sigma: Simplex, rounds: int = 1
) -> ComplexCensus:
    """Census of the ``rounds``-round protocol complex of one input simplex.

    Includes the sub-executions of the faces of ``σ`` (i.e. the protocol
    complex over ``σ̄``), matching what the paper's figures draw.
    """
    base = SimplicialComplex.from_simplex(sigma)
    protocol = model.protocol_complex(base, rounds)
    return ComplexCensus.of(protocol)


def per_color_census(complex_: SimplicialComplex) -> dict[int, int]:
    """Vertex count per color — Fig. 5's "seven vertices with the same ID"."""
    counts: dict[int, int] = {}
    for vertex in complex_.vertices:
        counts[vertex.color] = counts.get(vertex.color, 0) + 1
    return dict(sorted(counts.items()))


def compare_models(
    smaller: ComputationModel,
    larger: ComputationModel,
    sigma: Simplex,
    rounds: int = 1,
) -> dict[str, object]:
    """Check (strict) inclusion of two models' protocol complexes.

    Returns a report dictionary with the simplex-level containment verdicts
    and the facet counts of both complexes.
    """
    base = SimplicialComplex.from_simplex(sigma)
    small = smaller.protocol_complex(base, rounds)
    large = larger.protocol_complex(base, rounds)
    return {
        "smaller_model": smaller.name,
        "larger_model": larger.name,
        "contained": small.simplices <= large.simplices,
        "strict": small.simplices < large.simplices,
        "smaller_facets": len(small.facets),
        "larger_facets": len(large.facets),
        "extra_facets": len(large.facets - small.facets),
    }
