"""Exporting complexes for inspection and visualization.

Protocol complexes are the paper's figures; these helpers serialize them
into formats a human (or graphviz) can look at:

* :func:`to_dot` — the 1-skeleton as a Graphviz ``graph``, colored by
  process, with box outputs annotated for augmented models;
* :func:`facet_listing` — a deterministic, diff-friendly text dump of the
  facets (useful in golden tests and bug reports);
* :func:`vertex_legend` — a numbered legend mapping short vertex labels to
  full views.
"""

from __future__ import annotations

from typing import Hashable

from repro.topology.complex import SimplicialComplex
from repro.topology.connectivity import one_skeleton_adjacency
from repro.topology.vertex import Vertex
from repro.topology.views import View

__all__ = ["to_dot", "facet_listing", "vertex_legend"]

# A small qualitative palette; colors cycle for > 8 processes.
_PALETTE = (
    "#1b6ca8",
    "#c23b22",
    "#2e8540",
    "#8e44ad",
    "#d98e04",
    "#16a085",
    "#7f8c8d",
    "#c2185b",
)


def _short_value(value: Hashable) -> str:
    """A compact single-line rendering of a vertex value."""
    if isinstance(value, View):
        inner = ",".join(str(color) for color, _ in value)
        return "{" + inner + "}"
    if isinstance(value, tuple) and len(value) == 2 and isinstance(value[1], View):
        return f"b={value[0]}·{_short_value(value[1])}"
    return str(value)


def vertex_legend(complex_: SimplicialComplex) -> dict[str, Vertex]:
    """Map deterministic short labels (``p1_0``, ``p1_1``, …) to vertices."""
    legend: dict[str, Vertex] = {}
    counters: dict[int, int] = {}
    for vertex in complex_.sorted_vertices():
        index = counters.get(vertex.color, 0)
        counters[vertex.color] = index + 1
        legend[f"p{vertex.color}_{index}"] = vertex
    return legend


def to_dot(complex_: SimplicialComplex, title: str = "complex") -> str:
    """Render the 1-skeleton as Graphviz DOT text.

    Vertices are colored by process; labels show the process and a compact
    view summary.  Deterministic output (stable node order), so the result
    can be used in golden tests.
    """
    legend = vertex_legend(complex_)
    label_of = {vertex: label for label, vertex in legend.items()}
    lines: list[str] = [
        f'graph "{title}" {{',
        "  node [style=filled, fontcolor=white];",
    ]
    for label, vertex in legend.items():
        color = _PALETTE[(vertex.color - 1) % len(_PALETTE)]
        text = f"{vertex.color}:{_short_value(vertex.value)}"
        lines.append(
            f'  {label} [label="{text}", fillcolor="{color}"];'
        )
    adjacency = one_skeleton_adjacency(complex_)
    emitted = set()
    for vertex in complex_.sorted_vertices():
        for neighbor in sorted(
            adjacency[vertex], key=lambda v: v._sort_key()
        ):
            edge = frozenset((vertex, neighbor))
            if edge in emitted:
                continue
            emitted.add(edge)
            lines.append(f"  {label_of[vertex]} -- {label_of[neighbor]};")
    lines.append("}")
    return "\n".join(lines)


def facet_listing(complex_: SimplicialComplex) -> str:
    """A deterministic text listing of the complex's facets.

    One facet per line, vertices sorted by color, views summarized.
    """
    lines: list[str] = [
        f"# {len(complex_.facets)} facets, "
        f"{len(complex_.vertices)} vertices, dim {complex_.dim}"
    ]
    for index, facet in enumerate(complex_.sorted_facets()):
        cells = ", ".join(
            f"{v.color}:{_short_value(v.value)}" for v in facet.vertices
        )
        lines.append(f"[{index:>3}] {cells}")
    return "\n".join(lines)
