"""Reconstruction of the paper's figures as data.

The paper's figures are combinatorial objects; each function here rebuilds
one of them from the library's models so that tests and benchmarks can
assert the drawn structure exactly:

* Fig. 4 — the 1-round IIS+test&set complex for two processes and a
  simplicial decision map solving binary consensus on it;
* Fig. 5 — the 1-round IIS+test&set complex for three processes (7 vertices
  per color: every subdivision vertex duplicated per outcome except solo
  vertices, which always win);
* Fig. 6 — the two simplices ``ρ_{i,j,k}`` and ``ρ_{j,i,k}`` used in the
  proof of Corollary 2;
* Fig. 7 — the 1-round IIS+binary-consensus complex: two decorated copies
  of the chromatic subdivision minus the assignments invalid for the call
  bits;
* Fig. 8 — the census and strict inclusions of the collect / snapshot /
  immediate-snapshot one-round complexes.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Optional

from repro.analysis.counting import ComplexCensus, per_color_census
from repro.core.solvability import DecisionMap, find_decision_map
from repro.models.collect import CollectModel
from repro.models.immediate import ImmediateSnapshotModel
from repro.models.snapshot import SnapshotModel
from repro.objects.augmented import AugmentedModel
from repro.objects.beta import beta_input_function
from repro.objects.binary_consensus import BinaryConsensusBox
from repro.objects.test_and_set import TestAndSetBox
from repro.tasks.consensus import binary_consensus_task
from repro.topology.complex import SimplicialComplex
from repro.topology.simplex import Simplex
from repro.topology.vertex import Vertex
from repro.topology.views import View

__all__ = [
    "figure4_complex_and_map",
    "figure5_complex",
    "figure6_simplices",
    "figure7_complex",
    "figure8_census",
]


def figure4_complex_and_map() -> tuple[SimplicialComplex, Optional[DecisionMap]]:
    """Fig. 4: 2-process binary consensus is 1-round solvable with test&set.

    Returns the 1-round protocol complex over the binary input complex and a
    decision map found by the solvability engine (``None`` would falsify the
    figure).
    """
    model = AugmentedModel(TestAndSetBox())
    task = binary_consensus_task([1, 2])
    decision = find_decision_map(task, model, rounds=1)
    base = task.input_complex
    protocol = model.protocol_complex(base, 1)
    return protocol, decision


def figure5_complex(
    values: Optional[Mapping[int, Hashable]] = None,
) -> dict[str, object]:
    """Fig. 5: the 1-round IIS+test&set complex for three processes.

    Returns the complex together with the census the figure displays:
    vertices per color (7 each), solo views always carrying outcome 1, and
    non-solo views duplicated across outcomes 0 and 1.
    """
    inputs = dict(values or {1: "x1", 2: "x2", 3: "x3"})
    sigma = Simplex(inputs.items())
    model = AugmentedModel(TestAndSetBox())
    complex_ = model.protocol_complex(
        SimplicialComplex.from_simplex(sigma), 1
    )
    full_participation = model.one_round_complex(sigma)
    solo_outcomes = {
        vertex.color: vertex.value[0]
        for vertex in complex_.vertices
        if len(vertex.value[1]) == 1
    }
    duplicated = {}
    for color in sorted(sigma.ids):
        non_solo_views = {
            vertex.value[1]
            for vertex in complex_.vertices
            if vertex.color == color and len(vertex.value[1]) > 1
        }
        duplicated[color] = all(
            Vertex(color, (bit, view)) in complex_.vertices
            for view in non_solo_views
            for bit in (0, 1)
        )
    return {
        "complex": complex_,
        "full_participation_facets": len(full_participation.facets),
        "per_color": per_color_census(complex_),
        "solo_outcomes": solo_outcomes,
        "non_solo_views_duplicated": duplicated,
    }


def figure6_simplices(
    tau_values: Mapping[int, Hashable],
    i: int,
    j: int,
    k: int,
) -> tuple[Simplex, Simplex]:
    """Fig. 6: the simplices ``ρ_{i,j,k}`` and ``ρ_{j,i,k}`` of Corollary 2.

    ``ρ_{i,j,k}``: process ``i`` runs solo first (winning test&set), then
    ``j`` (seeing ``{i, j}``), then ``k`` (seeing everything), with ``j``
    and ``k`` losing the object.
    """
    y = dict(tau_values)

    def vertex(process: int, bit: int, seen: tuple[int, ...]) -> Vertex:
        return Vertex(process, (bit, View((s, y[s]) for s in seen)))

    rho_ijk = Simplex(
        [
            vertex(i, 1, (i,)),
            vertex(j, 0, (i, j)),
            vertex(k, 0, (i, j, k)),
        ]
    )
    rho_jik = Simplex(
        [
            vertex(j, 1, (j,)),
            vertex(i, 0, (i, j)),
            vertex(k, 0, (i, j, k)),
        ]
    )
    return rho_ijk, rho_jik


def figure7_complex(
    call_bits: Optional[Mapping[int, int]] = None,
    values: Optional[Mapping[int, Hashable]] = None,
) -> dict[str, object]:
    """Fig. 7: the 1-round IIS+binary-consensus complex for three processes.

    Default call bits follow the figure: the "black" process (ID 1) calls
    the object with 0, the other two with 1.  Returns the complex and the
    structural facts the figure shows: which solo vertices are removed and
    that the complex splits into (sub)copies indexed by the agreed bit.
    """
    beta = dict(call_bits or {1: 0, 2: 1, 3: 1})
    inputs = dict(values or {i: f"x{i}" for i in beta})
    sigma = Simplex(inputs.items())
    model = AugmentedModel(
        BinaryConsensusBox(), beta_input_function(beta)
    )
    complex_ = model.protocol_complex(
        SimplicialComplex.from_simplex(sigma), 1
    )
    removed_solo = {}
    for process, bit in beta.items():
        opposite = 1 - bit
        solo_view = View([(process, inputs[process])])
        removed_solo[process] = (
            Vertex(process, (opposite, solo_view)) not in complex_.vertices
        )
    per_bit_facets = {
        bit: sum(
            1
            for facet in complex_.facets
            if facet.vertices[0].value[0] == bit
        )
        for bit in (0, 1)
    }
    return {
        "complex": complex_,
        "call_bits": beta,
        "opposite_solo_removed": removed_solo,
        "facets_per_agreed_bit": per_bit_facets,
    }


def figure8_census(
    values: Optional[Mapping[int, Hashable]] = None,
) -> dict[str, object]:
    """Fig. 8: one-round complexes of the three register models, compared."""
    inputs = dict(values or {1: 1, 2: 2, 3: 3})
    sigma = Simplex(inputs.items())
    base = SimplicialComplex.from_simplex(sigma)
    iis = ImmediateSnapshotModel().protocol_complex(base, 1)
    snapshot = SnapshotModel().protocol_complex(base, 1)
    collect = CollectModel().protocol_complex(base, 1)
    return {
        "immediate_snapshot": ComplexCensus.of(iis),
        "snapshot": ComplexCensus.of(snapshot),
        "collect": ComplexCensus.of(collect),
        "iis_strictly_inside_snapshot": iis.simplices < snapshot.simplices,
        "snapshot_strictly_inside_collect": (
            snapshot.simplices < collect.simplices
        ),
        "snapshot_only_facets": len(snapshot.facets - iis.facets),
        "collect_only_facets": len(collect.facets - snapshot.facets),
    }
