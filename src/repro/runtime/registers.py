"""Single-writer multiple-reader registers.

The iterated model organizes shared memory as arrays ``M_r`` of ``n`` SWMR
registers, one per process and per round (Section 2.1).  Registers enforce
the single-writer discipline and record every access for trace analysis.

Fault-injection hooks: a :class:`RegisterArray` optionally carries a
``write_filter`` and a ``snapshot_filter``.  The filters model *illegal*
shared-memory behavior — a dropped write, a snapshot inconsistent with the
writes that happened — and exist so the chaos harness
(:mod:`repro.faults.injectors`) can prove the executors detect such faults
rather than absorb them.  A ``None`` filter (the default) is the faithful
atomic semantics.
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import RuntimeModelError

__all__ = ["SWMRRegister", "RegisterArray"]

#: ``write_filter(process, value) -> bool``; ``False`` drops the write.
WriteFilter = Callable[[int, Hashable], bool]

#: ``snapshot_filter(content) -> content``; may corrupt the snapshot view.
SnapshotFilter = Callable[[dict], dict]


@dataclass
class SWMRRegister:
    """A single-writer multiple-reader atomic register.

    Attributes
    ----------
    owner:
        The only process allowed to write.
    value:
        Current content; ``None`` means "not yet written" (registers start
        empty each round).
    """

    owner: int
    value: Optional[Hashable] = None
    write_count: int = 0
    read_count: int = 0

    def write(self, process: int, value: Hashable) -> None:
        """Atomic write; only the owner may call this."""
        if process != self.owner:
            raise RuntimeModelError(
                f"process {process} attempted to write register of "
                f"process {self.owner}"
            )
        self.value = value
        self.write_count += 1

    def read(self) -> Optional[Hashable]:
        """Atomic read; ``None`` when the owner has not written yet."""
        self.read_count += 1
        return self.value


class RegisterArray:
    """One round's array ``M_r`` of SWMR registers, one per process.

    Parameters
    ----------
    write_filter, snapshot_filter:
        Optional fault-injection hooks (see the module docstring).  Both
        default to ``None``: faithful atomic behavior.
    """

    def __init__(
        self,
        ids: tuple[int, ...],
        write_filter: Optional[WriteFilter] = None,
        snapshot_filter: Optional[SnapshotFilter] = None,
    ) -> None:
        self._registers: dict[int, SWMRRegister] = {
            process: SWMRRegister(owner=process) for process in ids
        }
        self._write_filter = write_filter
        self._snapshot_filter = snapshot_filter

    @property
    def ids(self) -> tuple[int, ...]:
        """The processes owning a register in this array."""
        return tuple(sorted(self._registers))

    def write(self, process: int, value: Hashable) -> None:
        """``M_r[process] ← value`` (owner-checked)."""
        try:
            register = self._registers[process]
        except KeyError:
            raise RuntimeModelError(
                f"no register for process {process} in this array"
            ) from None
        if self._write_filter is not None and not self._write_filter(
            process, value
        ):
            # Injected fault: the write is lost.  The executors detect the
            # resulting view inconsistency and raise FaultInjectionError.
            return
        register.write(process, value)

    def read(self, process: int) -> Optional[Hashable]:
        """Read one register (any process may call)."""
        try:
            return self._registers[process].read()
        except KeyError:
            raise RuntimeModelError(
                f"no register for process {process} in this array"
            ) from None

    def snapshot(self) -> dict[int, Hashable]:
        """An atomic snapshot: every written register, in one step."""
        content = {
            process: register.value
            for process, register in self._registers.items()
            if register.value is not None
        }
        if self._snapshot_filter is not None:
            content = dict(self._snapshot_filter(content))
        return content

    def written(self) -> tuple[int, ...]:
        """The processes that have written so far."""
        return tuple(
            sorted(
                process
                for process, register in self._registers.items()
                if register.value is not None
            )
        )
