"""Single-writer multiple-reader registers.

The iterated model organizes shared memory as arrays ``M_r`` of ``n`` SWMR
registers, one per process and per round (Section 2.1).  Registers enforce
the single-writer discipline and record every access for trace analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional

from repro.errors import RuntimeModelError

__all__ = ["SWMRRegister", "RegisterArray"]


@dataclass
class SWMRRegister:
    """A single-writer multiple-reader atomic register.

    Attributes
    ----------
    owner:
        The only process allowed to write.
    value:
        Current content; ``None`` means "not yet written" (registers start
        empty each round).
    """

    owner: int
    value: Optional[Hashable] = None
    write_count: int = 0
    read_count: int = 0

    def write(self, process: int, value: Hashable) -> None:
        """Atomic write; only the owner may call this."""
        if process != self.owner:
            raise RuntimeModelError(
                f"process {process} attempted to write register of "
                f"process {self.owner}"
            )
        self.value = value
        self.write_count += 1

    def read(self) -> Optional[Hashable]:
        """Atomic read; ``None`` when the owner has not written yet."""
        self.read_count += 1
        return self.value


class RegisterArray:
    """One round's array ``M_r`` of SWMR registers, one per process."""

    def __init__(self, ids: tuple[int, ...]) -> None:
        self._registers: dict[int, SWMRRegister] = {
            process: SWMRRegister(owner=process) for process in ids
        }

    @property
    def ids(self) -> tuple[int, ...]:
        """The processes owning a register in this array."""
        return tuple(sorted(self._registers))

    def write(self, process: int, value: Hashable) -> None:
        """``M_r[process] ← value`` (owner-checked)."""
        try:
            register = self._registers[process]
        except KeyError:
            raise RuntimeModelError(
                f"no register for process {process} in this array"
            ) from None
        register.write(process, value)

    def read(self, process: int) -> Optional[Hashable]:
        """Read one register (any process may call)."""
        try:
            return self._registers[process].read()
        except KeyError:
            raise RuntimeModelError(
                f"no register for process {process} in this array"
            ) from None

    def snapshot(self) -> dict[int, Hashable]:
        """An atomic snapshot: every written register, in one step."""
        return {
            process: register.value
            for process, register in self._registers.items()
            if register.value is not None
        }

    def written(self) -> tuple[int, ...]:
        """The processes that have written so far."""
        return tuple(
            sorted(
                process
                for process, register in self._registers.items()
                if register.value is not None
            )
        )
