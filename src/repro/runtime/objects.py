"""Linearizable shared objects for operation-level executions.

The combinatorial boxes of :mod:`repro.objects` describe *all* behaviors a
consistent object may exhibit; these classes are concrete, deterministic,
linearizable implementations — the kind a real system would run.  Every
behavior they produce is admissible for the corresponding combinatorial box
(tested in ``tests/runtime/``), which is exactly the soundness direction
lower bounds need.

Fault-injection hooks: each object accepts an optional ``fault_hook``
callable ``(object_name, process, response) -> response`` interposed at the
linearization point.  The hook may tamper with the response (the chaos
harness uses this to model a byzantine or broken object); the object's own
consistency guards then detect the tampering — two test&set winners, or a
consensus object contradicting its earlier decision — and raise
:class:`~repro.errors.FaultInjectionError` instead of returning garbage.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable
from typing import Optional

from repro.errors import FaultInjectionError, RuntimeModelError

__all__ = ["LinearizableTestAndSet", "LinearizableConsensus"]

FaultHook = Callable[[str, int, Hashable], Hashable]


class LinearizableTestAndSet:
    """A one-shot test&set: the first invoker wins.

    ``invoke`` is the linearization point; the simulator calls it in the
    chosen real-time order.
    """

    def __init__(self, fault_hook: Optional[FaultHook] = None) -> None:
        self._winner: Optional[int] = None
        self._fault_hook = fault_hook
        self._wins_returned = 0

    @property
    def winner(self) -> Optional[int]:
        """The process that won, or ``None`` before the first invocation."""
        return self._winner

    def invoke(self, process: int) -> int:
        """Return 1 to the first caller, 0 to everyone after."""
        if self._winner is None:
            self._winner = process
            response = 1
        else:
            response = 0
        if self._fault_hook is not None:
            response = self._fault_hook("test&set", process, response)
        if response == 1:
            self._wins_returned += 1
            if self._wins_returned > 1:
                raise FaultInjectionError(
                    f"test&set returned 1 to process {process} after "
                    "already crowning a winner — non-linearizable "
                    "behavior detected"
                )
        return response

    def reset(self) -> None:
        """Forget the winner (fresh copy per round, per Algorithm 2)."""
        self._winner = None
        self._wins_returned = 0


class LinearizableConsensus:
    """A one-shot consensus object: the first proposal is decided.

    Agreement and validity are immediate from the implementation; the
    decided value is the input of the first invoker, which is one of the
    behaviors the adversarial box of
    :mod:`repro.objects.binary_consensus` admits.
    """

    def __init__(self, fault_hook: Optional[FaultHook] = None) -> None:
        self._decided: bool = False
        self._value: Optional[Hashable] = None
        self._fault_hook = fault_hook
        self._returned: Optional[Hashable] = None

    @property
    def decided_value(self) -> Optional[Hashable]:
        """The agreed value, or ``None`` before the first proposal."""
        return self._value

    def propose(self, process: int, value: Hashable) -> Hashable:
        """Propose a value; return the object's (now fixed) decision."""
        if value is None:
            raise RuntimeModelError(
                f"process {process} proposed None to a consensus object"
            )
        if not self._decided:
            self._decided = True
            self._value = value
        response = self._value
        if self._fault_hook is not None:
            response = self._fault_hook("consensus", process, response)
        if self._returned is None:
            self._returned = response
        elif response != self._returned:
            raise FaultInjectionError(
                f"consensus object answered {response!r} to process "
                f"{process} after answering {self._returned!r} earlier — "
                "agreement violation detected"
            )
        return response

    def reset(self) -> None:
        """Forget the decision (fresh copy per round)."""
        self._decided = False
        self._value = None
        self._returned = None
