"""Linearizable shared objects for operation-level executions.

The combinatorial boxes of :mod:`repro.objects` describe *all* behaviors a
consistent object may exhibit; these classes are concrete, deterministic,
linearizable implementations — the kind a real system would run.  Every
behavior they produce is admissible for the corresponding combinatorial box
(tested in ``tests/runtime/``), which is exactly the soundness direction
lower bounds need.
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.errors import RuntimeModelError

__all__ = ["LinearizableTestAndSet", "LinearizableConsensus"]


class LinearizableTestAndSet:
    """A one-shot test&set: the first invoker wins.

    ``invoke`` is the linearization point; the simulator calls it in the
    chosen real-time order.
    """

    def __init__(self) -> None:
        self._winner: Optional[int] = None

    @property
    def winner(self) -> Optional[int]:
        """The process that won, or ``None`` before the first invocation."""
        return self._winner

    def invoke(self, process: int) -> int:
        """Return 1 to the first caller, 0 to everyone after."""
        if self._winner is None:
            self._winner = process
            return 1
        return 0

    def reset(self) -> None:
        """Forget the winner (fresh copy per round, per Algorithm 2)."""
        self._winner = None


class LinearizableConsensus:
    """A one-shot consensus object: the first proposal is decided.

    Agreement and validity are immediate from the implementation; the
    decided value is the input of the first invoker, which is one of the
    behaviors the adversarial box of
    :mod:`repro.objects.binary_consensus` admits.
    """

    def __init__(self) -> None:
        self._decided: bool = False
        self._value: Optional[Hashable] = None

    @property
    def decided_value(self) -> Optional[Hashable]:
        """The agreed value, or ``None`` before the first proposal."""
        return self._value

    def propose(self, process: int, value: Hashable) -> Hashable:
        """Propose a value; return the object's (now fixed) decision."""
        if value is None:
            raise RuntimeModelError(
                f"process {process} proposed None to a consensus object"
            )
        if not self._decided:
            self._decided = True
            self._value = value
        return self._value

    def reset(self) -> None:
        """Forget the decision (fresh copy per round)."""
        self._decided = False
        self._value = None
