"""Operational runtime: an executable asynchronous shared-memory simulator.

The combinatorial models of :mod:`repro.models` *define* which executions
exist; this subpackage *runs* them:

* :mod:`repro.runtime.registers` — SWMR register arrays ``M_r``;
* :mod:`repro.runtime.lowlevel` — an operation-level executor that
  interleaves individual atomic reads/writes/snapshots (used to validate
  that real interleavings produce exactly the view maps of the matrix
  representation, Appendix A.3.4);
* :mod:`repro.runtime.algorithm` — the generic round-based full-information
  algorithm shape of Algorithms 1–2, plus extraction of the combinatorial
  decision map ``f`` from an algorithm;
* :mod:`repro.runtime.iterated` — a round-level executor driving algorithms
  under adversarial schedules, black boxes, and crashes;
* :mod:`repro.runtime.adversary` — schedulers: random, solo-first,
  synchronous, fixed, exhaustive;
* :mod:`repro.runtime.objects` — linearizable test&set / consensus objects
  for the operation-level world.
"""

from repro.runtime.registers import SWMRRegister, RegisterArray
from repro.runtime.algorithm import (
    RoundAlgorithm,
    extract_decision_map,
)
from repro.runtime.adversary import (
    Adversary,
    RandomAdversary,
    FullSyncAdversary,
    SoloFirstAdversary,
    FixedScheduleAdversary,
    RandomMatrixAdversary,
    FixedMatrixAdversary,
    all_schedule_sequences,
)
from repro.runtime.iterated import (
    IteratedExecutor,
    ExecutionResult,
    RoundRecord,
)
from repro.runtime.noniterated import NonIteratedExecutor, NonIteratedResult
from repro.runtime.lowlevel import (
    random_collect_round,
    random_snapshot_round,
    random_immediate_snapshot_round,
)
from repro.runtime.objects import LinearizableTestAndSet, LinearizableConsensus

__all__ = [
    "SWMRRegister",
    "RegisterArray",
    "RoundAlgorithm",
    "extract_decision_map",
    "Adversary",
    "RandomAdversary",
    "FullSyncAdversary",
    "SoloFirstAdversary",
    "FixedScheduleAdversary",
    "RandomMatrixAdversary",
    "FixedMatrixAdversary",
    "all_schedule_sequences",
    "IteratedExecutor",
    "ExecutionResult",
    "RoundRecord",
    "NonIteratedExecutor",
    "NonIteratedResult",
    "random_collect_round",
    "random_snapshot_round",
    "random_immediate_snapshot_round",
    "LinearizableTestAndSet",
    "LinearizableConsensus",
]
