"""The iterated executor: run a round algorithm against an adversary.

Implements Algorithms 1–2 operationally.  Each round uses a fresh register
array ``M_r`` and (in augmented models) a fresh copy ``B_r`` of the black
box.  The adversary picks crashes, the immediate-snapshot blocks, and the
box's admissible output assignment; the executor materializes views through
real register writes/snapshots and threads the algorithm's state.

Crashed processes simply stop taking steps — the wait-free survivors still
finish their ``t`` rounds and decide, which is the whole point of the model.

Fault injection: the executor accepts an optional
:class:`~repro.faults.injectors.FaultInjector` (duck-typed — anything with
the same hooks works).  The injector can kill processes *mid-round*
(between their write and their snapshot), substitute a faulty register
array, or override the black box's output assignment.  Every deviation
from the model that the injector produces — a lost write, a snapshot
inconsistent with the realized schedule, a non-admissible box assignment —
is detected by the executor's cross-checks and raised as
:class:`~repro.errors.FaultInjectionError`, never silently absorbed.
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import FaultInjectionError, RuntimeModelError
from repro.models.schedules import OneRoundSchedule
from repro.objects.base import BlackBox
from repro.runtime.adversary import Adversary, FullSyncAdversary
from repro.runtime.algorithm import RoundAlgorithm
from repro.runtime.registers import RegisterArray

__all__ = ["IteratedExecutor", "ExecutionResult", "RoundRecord"]


@dataclass(frozen=True)
class RoundRecord:
    """What happened in one round: schedule, box outputs, per-process views.

    ``blocks`` holds the temporal blocks of immediate-snapshot schedules,
    or the matrix groups for general snapshot/collect schedules (in which
    case ``schedule_views`` carries the matching view sets ``P_s`` so the
    matrix can be reconstructed).  ``box_choice`` is the index of the
    realized assignment among the box's admissible options, and
    ``mid_crashed`` lists processes killed between their write and their
    snapshot — both feed the replayable fault traces of
    :mod:`repro.faults`.
    """

    round_index: int
    active: tuple[int, ...]
    blocks: tuple[tuple[int, ...], ...]
    views: Mapping[int, tuple[int, ...]]
    box_outputs: Mapping[int, Hashable]
    schedule_views: Optional[tuple[tuple[int, ...], ...]] = None
    box_choice: Optional[int] = None
    mid_crashed: tuple[int, ...] = ()


@dataclass
class ExecutionResult:
    """The outcome of one adversarial execution.

    Attributes
    ----------
    decisions:
        Output value per surviving process.
    crashed:
        Processes the adversary killed, with the round before (or, for
        mid-round crashes, during) which they died.
    trace:
        One :class:`RoundRecord` per round, for audit and debugging.
    """

    decisions: dict[int, Hashable]
    crashed: dict[int, int] = field(default_factory=dict)
    trace: list[RoundRecord] = field(default_factory=list)

    def surviving(self) -> tuple[int, ...]:
        """The processes that decided."""
        return tuple(sorted(self.decisions))


class IteratedExecutor:
    """Drives a :class:`RoundAlgorithm` for its ``t`` rounds.

    Parameters
    ----------
    box:
        Optional black box (fresh copy per round, per Algorithm 2).  When
        provided, the adversary chooses among the box's admissible output
        assignments for the realized schedule.
    injector:
        Optional fault injector (see the module docstring).
    """

    def __init__(
        self, box: Optional[BlackBox] = None, injector=None
    ) -> None:
        self._box = box
        self._injector = injector

    def run(
        self,
        algorithm: RoundAlgorithm,
        inputs: Mapping[int, Hashable],
        adversary: Optional[Adversary] = None,
    ) -> ExecutionResult:
        """Execute the algorithm once under the given adversary."""
        scheduler = adversary or FullSyncAdversary()
        injector = self._injector
        active = frozenset(inputs)
        if not active:
            raise RuntimeModelError("at least one process must participate")
        states: dict[int, object] = {
            process: algorithm.initial_state(process, value)
            for process, value in inputs.items()
        }
        crashed: dict[int, int] = {}
        trace: list[RoundRecord] = []

        for round_index in range(1, algorithm.rounds + 1):
            doomed = scheduler.crashes(round_index, active)
            if doomed >= active:
                raise RuntimeModelError(
                    "the adversary may not crash every process"
                )
            for process in doomed:
                crashed[process] = round_index
            active = active - doomed

            schedule = scheduler.schedule(round_index, active)
            if schedule.participants != active:
                raise RuntimeModelError(
                    f"adversary schedule covers {sorted(schedule.participants)}"
                    f", expected the active set {sorted(active)}"
                )
            dying: frozenset = frozenset()
            if injector is not None:
                dying = (
                    frozenset(
                        injector.mid_round_crashes(round_index, schedule)
                    )
                    & active
                )
                if dying >= active:
                    raise RuntimeModelError(
                        "the injector may not crash every process mid-round"
                    )
            box_outputs, box_choice = self._run_box(
                round_index, schedule, states, algorithm, scheduler
            )
            views = self._run_round(round_index, schedule, states, dying)
            new_states = {}
            for process in active - dying:
                seen_states = {j: states[j] for j in views[process]}
                new_states[process] = algorithm.step(
                    process,
                    states[process],
                    seen_states,
                    box_outputs.get(process),
                    round_index,
                )
            states.update(new_states)
            for process in dying:
                crashed[process] = round_index
            active = active - dying
            if schedule.is_immediate_snapshot():
                blocks = tuple(
                    tuple(sorted(block)) for block in schedule.blocks()
                )
                schedule_views: Optional[tuple[tuple[int, ...], ...]] = None
            else:
                # Snapshot/collect schedules have no temporal block
                # decomposition; record the matrix groups and view sets.
                blocks = tuple(
                    tuple(sorted(group)) for group in schedule.groups
                )
                schedule_views = tuple(
                    tuple(sorted(view)) for view in schedule.views
                )
            trace.append(
                RoundRecord(
                    round_index=round_index,
                    active=tuple(sorted(active)),
                    blocks=blocks,
                    views={
                        p: tuple(sorted(view)) for p, view in views.items()
                    },
                    box_outputs=dict(box_outputs),
                    schedule_views=schedule_views,
                    box_choice=box_choice,
                    mid_crashed=tuple(sorted(dying)),
                )
            )

        decisions = {
            process: algorithm.decide(process, states[process])
            for process in active
        }
        return ExecutionResult(decisions=decisions, crashed=crashed, trace=trace)

    # ------------------------------------------------------------------
    # Round internals
    # ------------------------------------------------------------------
    def _array(self, round_index: int, ids: tuple[int, ...]) -> RegisterArray:
        if self._injector is not None:
            return self._injector.register_array(round_index, ids)
        return RegisterArray(ids)

    def _run_round(
        self,
        round_index: int,
        schedule: OneRoundSchedule,
        states: Mapping[int, object],
        dying: frozenset,
    ) -> dict[int, frozenset]:
        """Materialize the schedule through a real register array.

        Immediate-snapshot schedules run block by block (write together,
        snapshot together); general snapshot/collect schedules read the
        declared view sets directly — their realizability is guaranteed by
        the matrix conditions of Appendix A.3.4.  Processes in ``dying``
        write but never snapshot (they crash mid-round), so their writes
        remain visible to the survivors while they themselves get no view.
        """
        active = tuple(sorted(schedule.participants))
        array = self._array(round_index, active)
        views: dict[int, frozenset] = {}
        if schedule.is_immediate_snapshot():
            for block in schedule.blocks():
                for process in sorted(block):
                    array.write(process, states[process])
                content = frozenset(array.snapshot())
                for process in block:
                    if process not in dying:
                        views[process] = content
        else:
            for process in active:
                array.write(process, states[process])
            missing = frozenset(active) - frozenset(array.written())
            if missing:
                raise FaultInjectionError(
                    f"round {round_index}: writes by processes "
                    f"{sorted(missing)} were lost (register fault detected)"
                )
            views = {
                process: view
                for process, view in schedule.view_map().items()
                if process not in dying
            }
        # Cross-check against the schedule's declared views.
        declared = schedule.view_map()
        for process, view in views.items():
            if view != declared[process]:
                raise FaultInjectionError(
                    f"register execution produced view {sorted(view)} for "
                    f"process {process}, schedule declared "
                    f"{sorted(declared[process])}"
                )
        return views

    def _run_box(
        self,
        round_index: int,
        schedule: OneRoundSchedule,
        states: Mapping[int, object],
        algorithm: RoundAlgorithm,
        scheduler: Adversary,
    ) -> tuple[dict[int, Hashable], Optional[int]]:
        if self._box is None:
            return {}, None
        box_inputs = {
            process: algorithm.box_input(
                process, states[process], round_index
            )
            for process in schedule.participants
        }
        options = list(self._box.assignments(schedule, box_inputs))
        if not options:
            raise RuntimeModelError(
                f"box {self._box.name} produced no admissible assignment"
            )
        chosen = scheduler.choose_assignment(round_index, schedule, options)
        if self._injector is not None:
            chosen = self._injector.choose_assignment(
                round_index, schedule, options, chosen
            )
        chosen = dict(chosen)
        try:
            choice = options.index(chosen)
        except ValueError:
            raise FaultInjectionError(
                f"round {round_index}: box {self._box.name} realized the "
                f"assignment {chosen}, which is not admissible for the "
                "schedule (consistency fault detected)"
            ) from None
        return chosen, choice
