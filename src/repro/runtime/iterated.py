"""The iterated executor: run a round algorithm against an adversary.

Implements Algorithms 1–2 operationally.  Each round uses a fresh register
array ``M_r`` and (in augmented models) a fresh copy ``B_r`` of the black
box.  The adversary picks crashes, the immediate-snapshot blocks, and the
box's admissible output assignment; the executor materializes views through
real register writes/snapshots and threads the algorithm's state.

Crashed processes simply stop taking steps — the wait-free survivors still
finish their ``t`` rounds and decide, which is the whole point of the model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Mapping, Optional

from repro.errors import RuntimeModelError
from repro.models.schedules import OneRoundSchedule
from repro.objects.base import BlackBox
from repro.runtime.adversary import Adversary, FullSyncAdversary
from repro.runtime.algorithm import RoundAlgorithm
from repro.runtime.registers import RegisterArray

__all__ = ["IteratedExecutor", "ExecutionResult", "RoundRecord"]


@dataclass(frozen=True)
class RoundRecord:
    """What happened in one round: schedule, box outputs, per-process views."""

    round_index: int
    active: tuple[int, ...]
    blocks: tuple[tuple[int, ...], ...]
    views: Mapping[int, tuple[int, ...]]
    box_outputs: Mapping[int, Hashable]


@dataclass
class ExecutionResult:
    """The outcome of one adversarial execution.

    Attributes
    ----------
    decisions:
        Output value per surviving process.
    crashed:
        Processes the adversary killed, with the round before which they
        died.
    trace:
        One :class:`RoundRecord` per round, for audit and debugging.
    """

    decisions: dict[int, Hashable]
    crashed: dict[int, int] = field(default_factory=dict)
    trace: list[RoundRecord] = field(default_factory=list)

    def surviving(self) -> tuple[int, ...]:
        """The processes that decided."""
        return tuple(sorted(self.decisions))


class IteratedExecutor:
    """Drives a :class:`RoundAlgorithm` for its ``t`` rounds.

    Parameters
    ----------
    box:
        Optional black box (fresh copy per round, per Algorithm 2).  When
        provided, the adversary chooses among the box's admissible output
        assignments for the realized schedule.
    """

    def __init__(self, box: Optional[BlackBox] = None) -> None:
        self._box = box

    def run(
        self,
        algorithm: RoundAlgorithm,
        inputs: Mapping[int, Hashable],
        adversary: Optional[Adversary] = None,
    ) -> ExecutionResult:
        """Execute the algorithm once under the given adversary."""
        scheduler = adversary or FullSyncAdversary()
        active = frozenset(inputs)
        if not active:
            raise RuntimeModelError("at least one process must participate")
        states: dict[int, object] = {
            process: algorithm.initial_state(process, value)
            for process, value in inputs.items()
        }
        crashed: dict[int, int] = {}
        trace: list[RoundRecord] = []

        for round_index in range(1, algorithm.rounds + 1):
            doomed = scheduler.crashes(round_index, active)
            if doomed >= active:
                raise RuntimeModelError(
                    "the adversary may not crash every process"
                )
            for process in doomed:
                crashed[process] = round_index
            active = active - doomed

            schedule = scheduler.schedule(round_index, active)
            if schedule.participants != active:
                raise RuntimeModelError(
                    f"adversary schedule covers {sorted(schedule.participants)}"
                    f", expected the active set {sorted(active)}"
                )
            box_outputs = self._run_box(
                round_index, schedule, states, algorithm, scheduler
            )
            views = self._run_round(schedule, states)
            new_states = {}
            for process in active:
                seen_states = {j: states[j] for j in views[process]}
                new_states[process] = algorithm.step(
                    process,
                    states[process],
                    seen_states,
                    box_outputs.get(process),
                    round_index,
                )
            states.update(new_states)
            if schedule.is_immediate_snapshot():
                blocks = tuple(
                    tuple(sorted(block)) for block in schedule.blocks()
                )
            else:
                # Snapshot/collect schedules have no temporal block
                # decomposition; record the matrix groups instead.
                blocks = tuple(
                    tuple(sorted(group)) for group in schedule.groups
                )
            trace.append(
                RoundRecord(
                    round_index=round_index,
                    active=tuple(sorted(active)),
                    blocks=blocks,
                    views={
                        p: tuple(sorted(view)) for p, view in views.items()
                    },
                    box_outputs=dict(box_outputs),
                )
            )

        decisions = {
            process: algorithm.decide(process, states[process])
            for process in active
        }
        return ExecutionResult(decisions=decisions, crashed=crashed, trace=trace)

    # ------------------------------------------------------------------
    # Round internals
    # ------------------------------------------------------------------
    def _run_round(
        self,
        schedule: OneRoundSchedule,
        states: Mapping[int, object],
    ) -> dict[int, frozenset]:
        """Materialize the schedule through a real register array.

        Immediate-snapshot schedules run block by block (write together,
        snapshot together); general snapshot/collect schedules read the
        declared view sets directly — their realizability is guaranteed by
        the matrix conditions of Appendix A.3.4.
        """
        active = tuple(sorted(schedule.participants))
        array = RegisterArray(active)
        views: dict[int, frozenset] = {}
        if schedule.is_immediate_snapshot():
            for block in schedule.blocks():
                for process in sorted(block):
                    array.write(process, states[process])
                content = frozenset(array.snapshot())
                for process in block:
                    views[process] = content
        else:
            for process in active:
                array.write(process, states[process])
            views = dict(schedule.view_map())
        # Cross-check against the schedule's declared views.
        declared = schedule.view_map()
        for process, view in views.items():
            if view != declared[process]:
                raise RuntimeModelError(
                    f"register execution produced view {sorted(view)} for "
                    f"process {process}, schedule declared "
                    f"{sorted(declared[process])}"
                )
        return views

    def _run_box(
        self,
        round_index: int,
        schedule: OneRoundSchedule,
        states: Mapping[int, object],
        algorithm: RoundAlgorithm,
        scheduler: Adversary,
    ) -> dict[int, Hashable]:
        if self._box is None:
            return {}
        box_inputs = {
            process: algorithm.box_input(
                process, states[process], round_index
            )
            for process in schedule.participants
        }
        options = list(self._box.assignments(schedule, box_inputs))
        if not options:
            raise RuntimeModelError(
                f"box {self._box.name} produced no admissible assignment"
            )
        chosen = scheduler.choose_assignment(round_index, schedule, options)
        return dict(chosen)
