"""Adversarial schedulers for the iterated executor.

An adversary controls everything the model leaves open: which processes
crash before each round, how the surviving processes are split into
immediate-snapshot blocks, and — in augmented models — which admissible
black-box assignment the round's object realizes.

Wait-freedom means algorithms must cope with *every* adversary here, from
the fully synchronous one to crash-heavy randomized ones.  For exhaustive
verification on small instances, :func:`all_schedule_sequences` enumerates
every ``t``-round block schedule.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from collections.abc import Iterable, Iterator, Mapping, Sequence
from itertools import product

from repro.errors import RuntimeModelError
from repro.models.schedules import (
    OneRoundSchedule,
    ordered_partitions,
    schedule_from_blocks,
)

__all__ = [
    "Adversary",
    "RandomAdversary",
    "FullSyncAdversary",
    "SoloFirstAdversary",
    "FixedScheduleAdversary",
    "RandomMatrixAdversary",
    "FixedMatrixAdversary",
    "all_schedule_sequences",
]

Blocks = tuple[frozenset[int], ...]


class Adversary(ABC):
    """The scheduler's interface, one decision per round."""

    def crashes(
        self, round_index: int, active: frozenset[int]
    ) -> frozenset[int]:
        """Processes that crash before this round (default: none).

        At least one process must survive the whole execution.
        """
        return frozenset()

    @abstractmethod
    def schedule(
        self, round_index: int, active: frozenset[int]
    ) -> OneRoundSchedule:
        """The immediate-snapshot schedule of the round."""

    def choose_assignment(
        self,
        round_index: int,
        schedule: OneRoundSchedule,
        options: Sequence[Mapping[int, object]],
    ) -> Mapping[int, object]:
        """Pick the black box's output assignment (default: first option)."""
        return options[0]


class FullSyncAdversary(Adversary):
    """Every round is a single block: the synchronous, failure-free run."""

    def schedule(
        self, round_index: int, active: frozenset[int]
    ) -> OneRoundSchedule:
        return schedule_from_blocks([active])


class SoloFirstAdversary(Adversary):
    """A chosen process always runs first, alone, in every round.

    This is the adversary behind the speedup theorem's solo-execution
    hypothesis.
    """

    def __init__(self, process: int) -> None:
        self._process = process

    def schedule(
        self, round_index: int, active: frozenset[int]
    ) -> OneRoundSchedule:
        if self._process not in active:
            return schedule_from_blocks([active])
        rest = active - {self._process}
        blocks: list[Iterable[int]] = [[self._process]]
        if rest:
            blocks.append(rest)
        return schedule_from_blocks(blocks)


class FixedScheduleAdversary(Adversary):
    """Replay an explicit list of block sequences, one per round."""

    def __init__(self, per_round_blocks: Sequence[Sequence[Iterable[int]]]):
        self._blocks = [
            tuple(frozenset(block) for block in round_blocks)
            for round_blocks in per_round_blocks
        ]

    def schedule(
        self, round_index: int, active: frozenset[int]
    ) -> OneRoundSchedule:
        try:
            blocks = self._blocks[round_index - 1]
        except IndexError:
            raise RuntimeModelError(
                f"fixed adversary has no schedule for round {round_index}"
            ) from None
        trimmed = [block & active for block in blocks]
        trimmed = [block for block in trimmed if block]
        if frozenset().union(*trimmed) != active:
            raise RuntimeModelError(
                f"fixed schedule for round {round_index} does not cover the "
                f"active set {sorted(active)}"
            )
        return schedule_from_blocks(trimmed)


class RandomAdversary(Adversary):
    """Random blocks, random box choices, optional random crashes.

    Parameters
    ----------
    seed:
        RNG seed for reproducibility.
    crash_probability:
        Per-process, per-round crash probability.  The adversary never
        crashes the last surviving process.
    """

    def __init__(self, seed: int = 0, crash_probability: float = 0.0) -> None:
        self._rng = random.Random(seed)
        self._crash_probability = crash_probability

    def crashes(
        self, round_index: int, active: frozenset[int]
    ) -> frozenset[int]:
        if self._crash_probability <= 0:
            return frozenset()
        doomed = set()
        for process in sorted(active):
            if len(active) - len(doomed) <= 1:
                break
            if self._rng.random() < self._crash_probability:
                doomed.add(process)
        return frozenset(doomed)

    def schedule(
        self, round_index: int, active: frozenset[int]
    ) -> OneRoundSchedule:
        pool = sorted(active)
        self._rng.shuffle(pool)
        blocks: list[tuple[int, ...]] = []
        index = 0
        while index < len(pool):
            size = self._rng.randint(1, len(pool) - index)
            blocks.append(tuple(pool[index : index + size]))
            index += size
        return schedule_from_blocks(blocks)

    def choose_assignment(
        self,
        round_index: int,
        schedule: OneRoundSchedule,
        options: Sequence[Mapping[int, object]],
    ) -> Mapping[int, object]:
        return options[self._rng.randrange(len(options))]


class RandomMatrixAdversary(Adversary):
    """Random schedules drawn from a *weaker* model's matrices.

    Samples uniformly among the distinct snapshot (or collect) view maps of
    the active set each round, so algorithms can be stress-tested outside
    the immediate-snapshot guarantees (e.g. to check whether the halving
    map of Eq. 3 survives incomparable collect views).

    Parameters
    ----------
    kind:
        ``"snapshot"`` or ``"collect"``.
    seed:
        RNG seed.
    """

    def __init__(self, kind: str = "snapshot", seed: int = 0) -> None:
        if kind not in ("snapshot", "collect"):
            raise RuntimeModelError(
                f"unknown schedule kind {kind!r}: use 'snapshot' or 'collect'"
            )
        self._kind = kind
        self._rng = random.Random(seed)
        self._pool: dict[frozenset[int], list[OneRoundSchedule]] = {}

    def _schedules_for(
        self, active: frozenset[int]
    ) -> list[OneRoundSchedule]:
        if active not in self._pool:
            from repro.models.schedules import (
                collect_schedules,
                snapshot_schedules,
            )

            source = (
                snapshot_schedules
                if self._kind == "snapshot"
                else collect_schedules
            )
            # Deduplicate by view map so sampling is over behaviors, not
            # over syntactically distinct matrices.
            seen = {}
            for schedule in source(active):
                key = tuple(
                    (p, tuple(sorted(view)))
                    for p, view in sorted(schedule.view_map().items())
                )
                seen.setdefault(key, schedule)
            self._pool[active] = [seen[key] for key in sorted(seen)]
        return self._pool[active]

    def schedule(
        self, round_index: int, active: frozenset[int]
    ) -> OneRoundSchedule:
        pool = self._schedules_for(active)
        return pool[self._rng.randrange(len(pool))]


class FixedMatrixAdversary(Adversary):
    """Replay explicit :class:`OneRoundSchedule` matrices, one per round."""

    def __init__(self, schedules: Sequence[OneRoundSchedule]) -> None:
        self._schedules = list(schedules)

    def schedule(
        self, round_index: int, active: frozenset[int]
    ) -> OneRoundSchedule:
        try:
            schedule = self._schedules[round_index - 1]
        except IndexError:
            raise RuntimeModelError(
                f"no schedule supplied for round {round_index}"
            ) from None
        if schedule.participants != active:
            raise RuntimeModelError(
                f"round {round_index} schedule covers "
                f"{sorted(schedule.participants)}, active set is "
                f"{sorted(active)}"
            )
        return schedule


def all_schedule_sequences(
    ids: Iterable[int], rounds: int
) -> Iterator[tuple[Blocks, ...]]:
    """Every ``rounds``-tuple of block schedules over a fixed process set.

    There are ``Fubini(n)^rounds`` of them (13² = 169 for three processes
    and two rounds); use only on small instances.
    """
    per_round = list(ordered_partitions(ids))
    yield from product(per_round, repeat=rounds)
