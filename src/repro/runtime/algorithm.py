"""Round-based full-information algorithms (Algorithms 1–2).

A :class:`RoundAlgorithm` is the executable counterpart of the paper's
generic protocol: ``t`` write/(box)/collect rounds followed by a decision.
The executor (:mod:`repro.runtime.iterated`) drives it under adversarial
schedules; :func:`extract_decision_map` instead evaluates it *symbolically*
on a protocol complex, producing the combinatorial decision map ``f`` that
the solvability and speedup machinery consume.

The state threaded between rounds is algorithm-defined; by the
full-information convention, at every round a process writes its entire
state, and ``step`` receives the states of every process it saw.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Hashable, Mapping
from typing import Any, Optional

from repro.core.solvability import DecisionMap
from repro.errors import RuntimeModelError
from repro.models.base import ComputationModel
from repro.models.protocol import ProtocolOperator
from repro.topology.complex import SimplicialComplex
from repro.topology.vertex import Vertex
from repro.topology.views import View

__all__ = ["RoundAlgorithm", "extract_decision_map"]

State = Any


class RoundAlgorithm(ABC):
    """A ``t``-round full-information algorithm.

    Subclasses define the number of rounds and the three hooks below; the
    box hook is only consulted in augmented models.
    """

    #: Number of communication rounds before deciding.
    rounds: int = 0

    #: Label used in reports.
    name: str = "round-algorithm"

    @abstractmethod
    def initial_state(self, process: int, input_value: Hashable) -> State:
        """The state a process carries into round 1."""

    def box_input(self, process: int, state: State, round_index: int) -> Hashable:
        """The value fed to the round's black box (``α`` of Algorithm 2)."""
        return None

    @abstractmethod
    def step(
        self,
        process: int,
        state: State,
        seen_states: Mapping[int, State],
        box_output: Optional[Hashable],
        round_index: int,
    ) -> State:
        """Compute the state after one round.

        Parameters
        ----------
        seen_states:
            The pre-round states of every process whose write was collected
            (always includes ``process`` itself).
        box_output:
            The black box's answer, or ``None`` in register-only models.
        """

    @abstractmethod
    def decide(self, process: int, state: State) -> Hashable:
        """The output value after the final round."""


def _split_vertex_value(value: Hashable) -> tuple[Optional[Hashable], View]:
    """Separate a protocol vertex value into (box output, view)."""
    if isinstance(value, View):
        return None, value
    if (
        isinstance(value, tuple)
        and len(value) == 2
        and isinstance(value[1], View)
    ):
        return value[0], value[1]
    raise RuntimeModelError(
        f"cannot interpret protocol vertex value {value!r}: expected a View "
        "or a (box_output, View) pair"
    )


def extract_decision_map(
    algorithm: RoundAlgorithm,
    model: ComputationModel,
    input_complex: SimplicialComplex,
    operator: Optional[ProtocolOperator] = None,
) -> DecisionMap:
    """Evaluate an algorithm on the protocol complex, yielding its map ``f``.

    For every vertex ``(i, V_i)`` of the ``t``-round protocol complex, the
    algorithm's state is reconstructed recursively from the nested view and
    the decision value is recorded.  Works for register-only models and for
    augmented models whose box inputs the algorithm derives from its state
    (the recorded box outputs inside the views are replayed, so consistency
    is preserved).

    Returns
    -------
    DecisionMap
        Defined on every vertex of ``P^(t)(σ)`` for every ``σ`` in the
        input complex; ``rounds`` is the algorithm's round count.
    """
    op = operator or ProtocolOperator(model)
    rounds = algorithm.rounds
    state_cache: dict[tuple[Vertex, int], State] = {}

    def state_of(vertex: Vertex, round_index: int) -> State:
        key = (vertex, round_index)
        if key in state_cache:
            return state_cache[key]
        if round_index == 0:
            state = algorithm.initial_state(vertex.color, vertex.value)
        else:
            box_output, view = _split_vertex_value(vertex.value)
            seen_states = {
                j: state_of(Vertex(j, value), round_index - 1)
                for j, value in view
            }
            state = algorithm.step(
                vertex.color,
                seen_states[vertex.color],
                seen_states,
                box_output,
                round_index,
            )
        state_cache[key] = state
        return state

    assignment: dict[Vertex, Vertex] = {}
    for sigma in input_complex:
        protocol = op.of_simplex(sigma, rounds)
        for vertex in protocol.vertices:
            if vertex not in assignment:
                decision = algorithm.decide(
                    vertex.color, state_of(vertex, rounds)
                )
                assignment[vertex] = Vertex(vertex.color, decision)
    return DecisionMap(assignment, rounds)
