"""A non-iterated shared-memory executor (the conclusion's open question).

The paper proves its speedup theorem for *iterated* models, where round
``r`` runs on a fresh register array ``M_r``, and notes that extending it
to non-iterated models — one register per process, reused forever — is
open: the two settings are equivalent for task *solvability* but not known
to be equivalent for round *complexity*.

This executor makes the non-iterated setting concrete so it can be explored
empirically:

* each process owns a single register and alternates ``write(state)`` with
  a sequential collect of all registers, ``t`` times;
* the adversary interleaves individual atomic operations arbitrarily, so a
  fast process can be three phases ahead of a slow one — a process may read
  a peer's *stale* (older-phase) or *fresh* (newer-phase) state, something
  iterated executions forbid;
* register contents are tagged with the writer's phase, and ``step``
  receives the freshest state observed per peer, matching the
  full-information convention.

Even with phase barriers (``synchronized=True``) the setting differs from
the iterated model in one essential way: an iterated round-``r`` collect of
a register nobody wrote yet returns nothing, while the non-iterated
register still holds the *previous-phase* value — stale information the
iterated model structurally hides.  The tests and experiment E21 show this
difference has teeth: the round-indexed halving algorithm of Eq. (3),
correct in every iterated model down to collect, violates ε here, and a
phase-filtering variant
(:class:`~repro.algorithms.approximate_agreement.NonIteratedHalvingAA`)
restores it.
"""

from __future__ import annotations

import random
from collections.abc import Hashable, Mapping
from dataclasses import dataclass, field

from repro.errors import FaultInjectionError, RuntimeModelError
from repro.runtime.algorithm import RoundAlgorithm
from repro.runtime.registers import RegisterArray

__all__ = ["NonIteratedExecutor", "NonIteratedResult", "PhaseObservation"]


@dataclass(frozen=True)
class PhaseObservation:
    """What one collect saw: per peer, the phase and state read."""

    process: int
    phase: int
    seen: Mapping[int, tuple[int, Hashable]]


@dataclass
class NonIteratedResult:
    """Outcome of one non-iterated execution."""

    decisions: dict[int, Hashable]
    observations: list[PhaseObservation] = field(default_factory=list)

    def max_phase_skew(self) -> int:
        """The largest phase difference observed within a single collect.

        Zero for synchronized executions; positive skew is exactly what the
        iterated model rules out.
        """
        skew = 0
        for observation in self.observations:
            phases = [phase for phase, _ in observation.seen.values()]
            if phases:
                skew = max(skew, max(phases) - min(phases))
        return skew


class NonIteratedExecutor:
    """Run a round algorithm on reused registers under op-level asynchrony.

    Parameters
    ----------
    seed:
        RNG seed for the operation interleaving.
    synchronized:
        When true, enforce phase barriers (everyone completes phase ``r``
        before anyone starts ``r+1``).  Phases align, but collects may
        still return *previous-phase* values of processes that have not
        written the current phase yet — the residual non-iterated effect.
    injector:
        Optional fault injector; its ``register_array`` hook supplies the
        (single, reused) register array.  A lost write is detected by the
        writer's own re-read — the register is single-writer, so reading
        back anything but the value just written proves the fault.
    """

    def __init__(
        self,
        seed: int = 0,
        synchronized: bool = False,
        injector=None,
    ) -> None:
        self._rng = random.Random(seed)
        self._synchronized = synchronized
        self._injector = injector

    def run(
        self,
        algorithm: RoundAlgorithm,
        inputs: Mapping[int, Hashable],
    ) -> NonIteratedResult:
        """Execute the algorithm's ``t`` phases for every participant."""
        if not inputs:
            raise RuntimeModelError("at least one process must participate")
        ids = tuple(sorted(inputs))
        if self._injector is not None:
            array = self._injector.register_array(0, ids)
        else:
            array = RegisterArray(ids)
        states: dict[int, Hashable] = {
            p: algorithm.initial_state(p, inputs[p]) for p in ids
        }
        phase: dict[int, int] = {p: 0 for p in ids}
        # Per-process program position within the current phase:
        # 0 = must write; 1..n = has performed that many reads.
        pending_reads: dict[int, list[int]] = {p: [] for p in ids}
        observed: dict[int, dict[int, tuple[int, Hashable]]] = {
            p: {} for p in ids
        }
        observations: list[PhaseObservation] = []

        def runnable() -> list[int]:
            if not self._synchronized:
                return [p for p in ids if phase[p] < algorithm.rounds]
            lowest = min(phase.values())
            return [
                p
                for p in ids
                if phase[p] < algorithm.rounds and phase[p] == lowest
            ]

        while True:
            candidates = runnable()
            if not candidates:
                break
            process = self._rng.choice(candidates)
            if not pending_reads[process] and not observed[process]:
                # Start of a phase: write (phase, state), queue the reads.
                written = (phase[process] + 1, states[process])
                array.write(process, written)
                if array.read(process) != written:
                    # SWMR: only this process writes its register, so a
                    # mismatched re-read proves the write was dropped.
                    raise FaultInjectionError(
                        f"phase {phase[process] + 1}: write by process "
                        f"{process} was lost (register fault detected)"
                    )
                reads = list(ids)
                self._rng.shuffle(reads)
                pending_reads[process] = reads
                observed[process] = {}
                continue
            target = pending_reads[process].pop(0)
            content = array.read(target)
            if content is not None:
                peer_phase, peer_state = content
                observed[process][target] = (peer_phase, peer_state)
            if not pending_reads[process]:
                # Collect finished: step the algorithm.
                seen = dict(observed[process])
                phase[process] += 1
                observations.append(
                    PhaseObservation(
                        process=process,
                        phase=phase[process],
                        seen=seen,
                    )
                )
                if getattr(algorithm, "phase_aware", False):
                    # Phase-aware algorithms receive the (phase, state)
                    # tags and can filter stale values themselves.
                    seen_states: Mapping[int, Hashable] = seen
                else:
                    seen_states = {
                        peer: state for peer, (_, state) in seen.items()
                    }
                states[process] = algorithm.step(
                    process,
                    states[process],
                    seen_states,
                    None,
                    phase[process],
                )
                observed[process] = {}

        decisions = {
            p: algorithm.decide(p, states[p]) for p in ids
        }
        return NonIteratedResult(
            decisions=decisions, observations=observations
        )
