"""Operation-level asynchronous execution of a single round.

These executors interleave *individual atomic operations* — the write and
the ``n`` sequential reads of a collect, the atomic snapshot, or the
write-snapshot block of an immediate snapshot — under a randomized
adversary, against real :class:`~repro.runtime.registers.RegisterArray`
state.  They return the per-process view sets that the interleaving
produced.

Their purpose is to *validate the combinatorial models*: every view map an
operation-level execution can produce must be one of the matrix-generated
view maps of :mod:`repro.models.schedules` (and conversely the standard
adversaries reach them all for small ``n``).  Benchmarks E16 and the
property tests tie the two layers together.
"""

from __future__ import annotations

import random
from collections.abc import Hashable, Mapping, Sequence

from repro.errors import RuntimeModelError
from repro.runtime.registers import RegisterArray

__all__ = [
    "random_collect_round",
    "random_snapshot_round",
    "random_immediate_snapshot_round",
]

ViewSets = dict[int, frozenset[int]]


def _random_blocks(
    ids: Sequence[int], rng: random.Random
) -> list[tuple[int, ...]]:
    """A uniform-ish random ordered partition of ``ids``."""
    pool = list(ids)
    rng.shuffle(pool)
    blocks: list[tuple[int, ...]] = []
    index = 0
    while index < len(pool):
        size = rng.randint(1, len(pool) - index)
        blocks.append(tuple(pool[index : index + size]))
        index += size
    return blocks


def random_collect_round(
    ids: Sequence[int],
    values: Mapping[int, Hashable],
    rng: random.Random,
) -> ViewSets:
    """Run one write-collect round under a random interleaving.

    Every process performs one write followed by ``n`` reads in a random
    order; the adversary interleaves the resulting atomic operations
    uniformly at random (respecting per-process program order).

    Returns the view sets ``{i: J_i}`` — which writers each process saw.
    """
    id_list = sorted(set(ids))
    array = RegisterArray(tuple(id_list))
    # Program of process p: [("write", p)] + reads in random order.
    programs: dict[int, list[tuple[str, int]]] = {}
    for process in id_list:
        reads = list(id_list)
        rng.shuffle(reads)
        programs[process] = [("write", process)] + [
            ("read", target) for target in reads
        ]
    position = {process: 0 for process in id_list}
    seen: dict[int, set] = {process: set() for process in id_list}
    pending = [
        process
        for process in id_list
        if position[process] < len(programs[process])
    ]
    while pending:
        process = rng.choice(pending)
        op, target = programs[process][position[process]]
        if op == "write":
            array.write(process, values[process])
        else:
            read_value = array.read(target)
            if read_value is not None:
                seen[process].add(target)
        position[process] += 1
        pending = [
            p for p in id_list if position[p] < len(programs[p])
        ]
    views = {process: frozenset(seen[process]) for process in id_list}
    for process, view in views.items():
        if process not in view:
            raise RuntimeModelError(
                f"process {process} failed to see its own write — "
                "program-order violation in the executor"
            )
    return views


def random_snapshot_round(
    ids: Sequence[int],
    values: Mapping[int, Hashable],
    rng: random.Random,
) -> ViewSets:
    """Run one write-snapshot round under a random interleaving.

    Each process performs an atomic write followed (later) by one atomic
    snapshot; the adversary interleaves the ``2n`` atomic steps randomly.
    Snapshot atomicity makes all views comparable (they form a chain).
    """
    id_list = sorted(set(ids))
    array = RegisterArray(tuple(id_list))
    steps: list[tuple[str, int]] = [("write", p) for p in id_list] + [
        ("snap", p) for p in id_list
    ]
    # Random interleaving subject to write-before-snapshot per process:
    # shuffle, then repair by bubbling each snapshot after its write.
    rng.shuffle(steps)
    ordered: list[tuple[str, int]] = []
    written: set = set()
    deferred: list[tuple[str, int]] = []
    for step in steps:
        op, process = step
        if op == "write":
            ordered.append(step)
            written.add(process)
            still_deferred = []
            for waiting in deferred:
                if waiting[1] in written:
                    ordered.append(waiting)
                else:
                    still_deferred.append(waiting)
            deferred = still_deferred
        else:
            if process in written:
                ordered.append(step)
            else:
                deferred.append(step)
    ordered.extend(deferred)

    views: dict[int, frozenset[int]] = {}
    for op, process in ordered:
        if op == "write":
            array.write(process, values[process])
        else:
            views[process] = frozenset(array.snapshot())
    return views


def random_immediate_snapshot_round(
    ids: Sequence[int],
    values: Mapping[int, Hashable],
    rng: random.Random,
) -> ViewSets:
    """Run one immediate-snapshot round: random blocks of write+snapshot.

    The adversary picks a random ordered partition; each block writes
    simultaneously and snapshots immediately after (Section A.3.3).
    """
    id_list = sorted(set(ids))
    array = RegisterArray(tuple(id_list))
    views: dict[int, frozenset[int]] = {}
    for block in _random_blocks(id_list, rng):
        for process in block:
            array.write(process, values[process])
        content = frozenset(array.snapshot())
        for process in block:
            views[process] = content
    return views
