"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so user
code can catch library failures with a single ``except`` clause while still
being able to distinguish the failure modes that matter (malformed chromatic
data, non-simplicial maps, invalid schedules, ill-specified tasks).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ChromaticityError",
    "SimplicialityError",
    "ScheduleError",
    "TaskSpecificationError",
    "SolvabilityError",
    "ModelError",
    "RuntimeModelError",
    "FaultInjectionError",
    "ExecutionBudgetExceeded",
    "ExperimentError",
    "TelemetryError",
    "MaskProvenanceError",
    "WorkerCrashError",
    "TransientTaskError",
    "QuarantineError",
    "ServeError",
]


class ReproError(Exception):
    """Base class of every exception raised by :mod:`repro`."""


class ChromaticityError(ReproError, ValueError):
    """A chromatic object (simplex, complex, map) violates color constraints.

    Chromatic complexes require every simplex to carry pairwise-distinct
    colors, and chromatic maps must preserve the color of every vertex.
    """


class SimplicialityError(ReproError, ValueError):
    """A vertex map fails to send some simplex onto a simplex of the target."""


class ScheduleError(ReproError, ValueError):
    """A one-round schedule violates the matrix conditions of Appendix A.3.4.

    Collect schedules must satisfy the five matrix conditions; snapshot
    schedules additionally require the view sets to form a chain; immediate
    snapshot schedules must be ordered partitions.
    """


class TaskSpecificationError(ReproError, ValueError):
    """A task triple ``(I, O, Δ)`` is malformed.

    Typical causes: ``Δ(σ)`` contains simplices whose ID set differs from
    ``ID(σ)``, or output simplices that are not part of the output complex.
    """


class SolvabilityError(ReproError, RuntimeError):
    """The solvability engine was invoked with inconsistent arguments."""


class ModelError(ReproError, ValueError):
    """A computational model is queried outside its domain of definition."""


class RuntimeModelError(ReproError, RuntimeError):
    """The operational runtime simulator reached an inconsistent state."""


class FaultInjectionError(RuntimeModelError):
    """The executor detected an *illegal* fault (a safety-net firing).

    Raised when shared-memory or black-box behavior falls outside the
    model: a lost register write, a snapshot inconsistent with the realized
    schedule, a black-box output assignment that is not admissible, or a
    non-linearizable object response.  The fault-injection harness
    (:mod:`repro.faults`) deliberately provokes these to prove the runtime
    flags them instead of silently absorbing them.
    """


class ExecutionBudgetExceeded(ReproError, RuntimeError):
    """A single execution exceeded its step budget or wall-clock deadline.

    The chaos campaign runner (:mod:`repro.faults.campaign`) wraps each
    algorithm with a budget guard so a non-terminating or pathologically
    slow execution is classified as ``HUNG`` instead of stalling the whole
    campaign.
    """


class ExperimentError(ReproError, RuntimeError):
    """An experiment runner failed; carries the experiment identifier.

    Wraps arbitrary exceptions escaping a registered ``reproduce_*``
    function so ``repro experiment E<k>`` failures are diagnosable from a
    one-line cause instead of a raw traceback.
    """

    def __init__(self, experiment_id: str, cause: BaseException) -> None:
        self.experiment_id = experiment_id
        self.cause = cause
        super().__init__(
            f"experiment {experiment_id} failed: "
            f"{type(cause).__name__}: {cause}"
        )


class TelemetryError(ReproError, RuntimeError):
    """The tracing layer was driven through an invalid state transition.

    Raised on unbalanced span exits (closing a span that is not the
    innermost open one) and on malformed trace artifacts handed to the
    exporters — both indicate a harness bug, never a property of the
    computation being traced.
    """


class WorkerCrashError(ReproError, RuntimeError):
    """A pool worker died (or a planned crash fired in-process).

    Surfaced by the execution supervisor (:mod:`repro.parallel.supervisor`)
    when the process pool breaks beyond its circuit-breaker threshold with
    degradation disabled, and raised directly by the executor-level fault
    injector (:mod:`repro.faults.executor`) when a planned worker kill
    fires on the serial path — SIGKILLing the only process would take the
    harness down with it, so the plan degrades to a catchable crash.
    """


class TransientTaskError(ReproError, RuntimeError):
    """An injected transient task fault (retriable by design).

    Raised by :func:`repro.faults.executor.apply_fault` to model
    once-in-a-while task failures — a flaky pickling round-trip, a
    dropped result — that a correct supervisor must absorb through
    retries without changing the fold.
    """


class QuarantineError(ReproError, RuntimeError):
    """The supervisor gave up on one or more tasks after bounded retries.

    Carries the structured quarantine records so callers can report which
    inputs were poisoned and why.
    """

    def __init__(self, label: str, quarantined: tuple) -> None:
        self.label = label
        self.quarantined = quarantined
        indices = ", ".join(str(record.index) for record in quarantined)
        super().__init__(
            f"{len(quarantined)} {label} task(s) quarantined after "
            f"exhausting retries (indices: {indices})"
        )


class MaskProvenanceError(ReproError, RuntimeError):
    """A bitmask was used against a :class:`VertexTable` it did not come from.

    Raised only by the runtime sanitizer (``REPRO_SANITIZE=1``, see
    :mod:`repro.topology.sanitize`): masks are bare ``int``s that are only
    meaningful relative to the table that encoded them, so combining or
    decoding masks across incompatible tables silently yields wrong
    simplices.  The static flow rule RPR006 proves the same contract on
    source code; this exception is its dynamic cross-validation.
    """


class ServeError(ReproError, RuntimeError):
    """A solver-service request failed (transport, protocol, or handler).

    Carries the JSON-RPC error code alongside the message so clients can
    distinguish malformed requests (``-32600``/``-32602``), unknown
    methods (``-32601``), and server-side execution failures
    (``-32000``) without parsing the rendered text.
    """

    def __init__(self, message: str, code: int = -32000) -> None:
        self.code = code
        super().__init__(message)
