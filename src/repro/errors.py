"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so user
code can catch library failures with a single ``except`` clause while still
being able to distinguish the failure modes that matter (malformed chromatic
data, non-simplicial maps, invalid schedules, ill-specified tasks).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ChromaticityError",
    "SimplicialityError",
    "ScheduleError",
    "TaskSpecificationError",
    "SolvabilityError",
    "ModelError",
    "RuntimeModelError",
]


class ReproError(Exception):
    """Base class of every exception raised by :mod:`repro`."""


class ChromaticityError(ReproError, ValueError):
    """A chromatic object (simplex, complex, map) violates color constraints.

    Chromatic complexes require every simplex to carry pairwise-distinct
    colors, and chromatic maps must preserve the color of every vertex.
    """


class SimplicialityError(ReproError, ValueError):
    """A vertex map fails to send some simplex onto a simplex of the target."""


class ScheduleError(ReproError, ValueError):
    """A one-round schedule violates the matrix conditions of Appendix A.3.4.

    Collect schedules must satisfy the five matrix conditions; snapshot
    schedules additionally require the view sets to form a chain; immediate
    snapshot schedules must be ordered partitions.
    """


class TaskSpecificationError(ReproError, ValueError):
    """A task triple ``(I, O, Δ)`` is malformed.

    Typical causes: ``Δ(σ)`` contains simplices whose ID set differs from
    ``ID(σ)``, or output simplices that are not part of the output complex.
    """


class SolvabilityError(ReproError, RuntimeError):
    """The solvability engine was invoked with inconsistent arguments."""


class ModelError(ReproError, ValueError):
    """A computational model is queried outside its domain of definition."""


class RuntimeModelError(ReproError, RuntimeError):
    """The operational runtime simulator reached an inconsistent state."""
