"""Augmented models: IIS plus a black box (Algorithm 2).

One round of the augmented model, starting from carrier simplex ``σ`` with
participants ``I``: pick an immediate-snapshot schedule over ``I``; every
process ``i`` writes, invokes the round's box copy with input
``a_i = α(i, V_i)``, and collects.  Its new value is the pair
``(b_i, {(j, V_j) : j seen})`` where ``b_i`` is the box's answer.

The box is consistent, so for a fixed schedule the admissible executions are
exactly the box's output assignments; the one-round complex is the union of
the view simplices decorated by each assignment.  This reproduces Fig. 5
(test&set: each subdivision vertex is duplicated per outcome except solo
vertices, which always win) and Fig. 7 (binary consensus: two decorated
copies of the subdivision minus the assignments invalid for the inputs).
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Optional

from repro.errors import ModelError
from repro.models.base import ComputationModel
from repro.models.schedules import (
    OneRoundSchedule,
    immediate_snapshot_schedules,
)
from repro.objects.base import BlackBox
from repro.topology.complex import SimplicialComplex
from repro.topology.simplex import Simplex
from repro.topology.vertex import Vertex
from repro.topology.views import View

__all__ = ["AugmentedModel"]

InputFunction = Callable[[Vertex], Hashable]
ScheduleFilter = Callable[[OneRoundSchedule], bool]


class AugmentedModel(ComputationModel):
    """The wait-free IIS model augmented with a black-box object.

    Parameters
    ----------
    box:
        The shared object invoked once per process per round.
    input_function:
        ``α``: maps each carrier vertex ``(i, V_i)`` to the input the
        process feeds the box.  May be omitted for boxes that ignore inputs
        (test&set).  Theorem 4's ID-only restriction is obtained with
        :func:`repro.objects.beta.beta_input_function`.
    schedule_filter:
        Optional affine restriction: schedules for which the predicate is
        false are dropped.  Solo executions must survive for the speedup
        theorem to apply; :meth:`allows_solo_executions` checks it.
    name:
        Label for reports; defaults to ``IIS+<box name>``.
    """

    def __init__(
        self,
        box: BlackBox,
        input_function: Optional[InputFunction] = None,
        schedule_filter: Optional[ScheduleFilter] = None,
        name: Optional[str] = None,
    ) -> None:
        if input_function is None and box.requires_inputs():
            raise ModelError(
                f"box {box.name!r} requires inputs: provide an input "
                "function α"
            )
        self._box = box
        self._alpha = input_function or (lambda vertex: None)
        self._filter = schedule_filter
        self.name = name or f"IIS+{box.name}"

    @property
    def box(self) -> BlackBox:
        """The black-box object of the model."""
        return self._box

    def input_of(self, vertex: Vertex) -> Hashable:
        """The box input ``α(i, V_i)`` computed from a carrier vertex."""
        return self._alpha(vertex)

    # ------------------------------------------------------------------
    # ComputationModel interface
    # ------------------------------------------------------------------
    def schedules(self, ids: Iterable[int]) -> Iterable[OneRoundSchedule]:
        """The admissible immediate-snapshot schedules over ``ids``."""
        for schedule in immediate_snapshot_schedules(ids):
            if self._filter is None or self._filter(schedule):
                yield schedule

    def _build_one_round_complex(self, sigma: Simplex) -> SimplicialComplex:
        values = sigma.as_mapping()
        inputs = {
            vertex.color: self._alpha(vertex) for vertex in sigma.vertices
        }
        facets = set()
        for schedule in self.schedules(sigma.ids):
            view_map = schedule.view_map()
            for assignment in self._box.assignments(schedule, inputs):
                vertices = []
                for process, seen in view_map.items():
                    view = View((j, values[j]) for j in seen)
                    vertices.append(
                        Vertex(process, (assignment[process], view))
                    )
                facets.add(Simplex(vertices))
        # Every schedule's view map covers all of ID(σ), so all facets share
        # one dimension and the deduplicated family is maximal as-is.
        return SimplicialComplex.from_maximal(facets)

    def solo_value(self, vertex: Vertex) -> Hashable:
        solo_box = self._box.solo_output(vertex.color, self._alpha(vertex))
        return (solo_box, View([(vertex.color, vertex.value)]))
