"""The black-box object interface.

A consistent black box (Section 4.1, Remark) is characterized, for lower
bound purposes, by the set of output assignments it may produce on a given
one-round schedule with given per-process inputs.  The adversary picks one
admissible assignment per execution; the protocol complex of the augmented
model therefore contains one copy of each schedule's view simplex per
admissible assignment.

Timing model: in Algorithm 2, a process invokes the box after its write and
before its collect.  In the immediate-snapshot model, the processes of the
first block write before any other process performs any operation, so the
box's earliest decisions are driven by the first block:

* for test&set, the winner is a process of the first block;
* for binary consensus, the decided value is a first-block input.

Both facts are visible in the paper's Figures 5 and 7 (solo executions win
test&set; a process calling consensus with input 0 cannot output 1 solo).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Hashable, Iterator, Mapping

from repro.models.schedules import OneRoundSchedule

__all__ = ["BlackBox"]


class BlackBox(ABC):
    """A consistent shared object invoked once per process per round."""

    #: Human-readable box name.
    name: str = "abstract-box"

    @abstractmethod
    def assignments(
        self,
        schedule: OneRoundSchedule,
        inputs: Mapping[int, Hashable],
    ) -> Iterator[dict[int, Hashable]]:
        """Yield every admissible per-process output assignment.

        Parameters
        ----------
        schedule:
            The round's communication pattern; participants of the schedule
            and keys of ``inputs`` coincide.
        inputs:
            The value each participant feeds the box (``a_i = α(i, V_i, r)``
            in Algorithm 2).
        """

    @abstractmethod
    def solo_output(self, process: int, input_value: Hashable) -> Hashable:
        """The output when ``process`` invokes the box before anyone else.

        Consistency forces a unique answer in a solo execution; this is the
        value used by the extended speedup construction (Theorem 2):
        ``f'(i, V_i) = f(i, (b_i, {(i, V_i)}))`` with ``b_i`` the solo
        output.
        """

    def requires_inputs(self) -> bool:
        """Whether the box's behavior depends on the inputs it is fed.

        test&set ignores inputs; binary consensus does not.  The closure
        engine uses this to decide whether it must quantify over input
        functions ``α``.
        """
        return True
