"""The test&set box.

test&set takes no input; the first process to invoke it receives 1, every
other process receives 0.  Its consensus number is 2 (Herlihy): two
processes can solve consensus with it in one round (Fig. 4), but three
cannot (Corollary 2).

In an immediate-snapshot round, a process's box call sits between its write
and its snapshot, so the first call is made by a member of the first block;
any member of the first block may be that first caller.  Consequences
(matching Fig. 5):

* every admissible assignment has exactly one winner, drawn from the first
  temporal block;
* a process running solo (first block is the singleton ``{i}``) always wins;
* a vertex pairing a solo view with output 0 does not exist.
"""

from __future__ import annotations

from typing import Hashable, Iterator, Mapping

from repro.models.schedules import OneRoundSchedule
from repro.objects.base import BlackBox

__all__ = ["TestAndSetBox"]


class TestAndSetBox(BlackBox):
    """A consistent test&set object (no inputs, single winner)."""

    name = "test&set"

    def assignments(
        self,
        schedule: OneRoundSchedule,
        inputs: Mapping[int, Hashable],
    ) -> Iterator[dict[int, Hashable]]:
        participants = schedule.participants
        first_block = schedule.blocks()[0]
        for winner in sorted(first_block):
            yield {
                process: (1 if process == winner else 0)
                for process in sorted(participants)
            }

    def solo_output(self, process: int, input_value: Hashable) -> Hashable:
        return 1

    def requires_inputs(self) -> bool:
        return False
