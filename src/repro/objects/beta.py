"""β input functions (Theorem 4).

Theorem 4 restricts the binary-consensus-augmented model to algorithms in
which the input fed to the box by process ``i`` at round ``r`` depends only
on ``i`` and ``r``: ``a_i = α(i, r)``.  Fixing the round gives a function
``β : [n] → {0, 1}``; the closure with respect to ``β`` (``CL_M(Π|β)``) only
considers one-round algorithms that call the box with inputs ``β(i)``.

The pivotal combinatorial fact (Claim 6) is that the *majority side* of β —
the larger of ``β⁻¹(0)`` and ``β⁻¹(1)`` — takes no benefit from the box:
when only those processes participate, all box inputs coincide and the
output is forced, collapsing the augmented model onto plain IIS.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Mapping

from repro.topology.vertex import Vertex

__all__ = ["beta_input_function", "majority_side"]

InputFunction = Callable[[Vertex], Hashable]


def beta_input_function(beta: Mapping[int, Hashable]) -> InputFunction:
    """Lift ``β : [n] → {0,1}`` to an input function ``α(i, V) = β(i)``.

    The returned callable takes a protocol vertex (whose color is the
    process) and ignores the view, as required by Theorem 4's hypothesis.
    """
    frozen = dict(beta)

    def alpha(vertex: Vertex) -> Hashable:
        return frozen[vertex.color]

    return alpha


def majority_side(
    beta: Mapping[int, Hashable], ids: Iterable[int]
) -> frozenset[int]:
    """The set ``S'`` of Claim 6: the larger preimage of β over ``ids``.

    Ties break toward ``β⁻¹(0)``, following the paper.  The returned set has
    size at least ``⌈|ids| / 2⌉``.
    """
    pool = sorted(set(ids))
    zeros = frozenset(i for i in pool if beta[i] == 0)
    ones = frozenset(i for i in pool if beta[i] != 0)
    if len(zeros) >= len(ones):
        return zeros
    return ones
