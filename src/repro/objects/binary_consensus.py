"""The binary consensus box.

All invokers of the box receive the *same* output value (agreement), and
the value is the input of some invoker (validity).  The box is wait-free:
the first caller must receive an answer while running alone, so the decided
value is driven by the earliest invokers — in an immediate-snapshot round,
the first temporal block.  Matching Fig. 7:

* if all participants input the same value ``a``, the output is ``a``;
* a process invoking solo gets its own input back (the vertex pairing a solo
  view with the opposite value is removed from the complex);
* in mixed executions, the adversary may steer the output to any input of
  the first block.
"""

from __future__ import annotations

from typing import Hashable, Iterator, Mapping

from repro.errors import ModelError
from repro.models.schedules import OneRoundSchedule
from repro.objects.base import BlackBox
from repro.topology.vertex import value_sort_key

__all__ = ["BinaryConsensusBox"]


class BinaryConsensusBox(BlackBox):
    """A consistent one-shot (binary) consensus object.

    The implementation is value-agnostic — it works for any input domain —
    but the paper invokes it with bits, hence the name.
    """

    name = "binary-consensus"

    def assignments(
        self,
        schedule: OneRoundSchedule,
        inputs: Mapping[int, Hashable],
    ) -> Iterator[dict[int, Hashable]]:
        participants = schedule.participants
        missing = participants - set(inputs)
        if missing:
            raise ModelError(
                f"binary consensus box needs an input for every participant; "
                f"missing {sorted(missing)}"
            )
        first_block = schedule.blocks()[0]
        candidates = {inputs[process] for process in first_block}
        for value in sorted(candidates, key=value_sort_key):
            yield {process: value for process in sorted(participants)}

    def solo_output(self, process: int, input_value: Hashable) -> Hashable:
        return input_value
