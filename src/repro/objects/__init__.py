"""Black-box objects and augmented models (Section 4).

An *augmented model* interleaves a call to a black-box object ``B_r``
between the write and the collect of every round (Algorithm 2).  A box is
*consistent*: for the same inputs and the same interleaving, it returns the
same outputs — so a box is modeled as a function from (schedule, inputs) to
the set of admissible per-process output assignments.

Boxes provided:

* :class:`~repro.objects.test_and_set.TestAndSetBox` — the first invoker
  gets 1, everyone else 0 (consensus number 2).
* :class:`~repro.objects.binary_consensus.BinaryConsensusBox` — all invokers
  get one common valid value (consensus number ∞).

The β-restricted model of Theorem 4 is the binary-consensus box together
with an input function ``α(i, V, r) = β(i)`` depending only on the process
identifier; see :func:`~repro.objects.beta.beta_input_function`.
"""

from repro.objects.base import BlackBox
from repro.objects.test_and_set import TestAndSetBox
from repro.objects.binary_consensus import BinaryConsensusBox
from repro.objects.beta import beta_input_function, majority_side
from repro.objects.augmented import AugmentedModel

__all__ = [
    "BlackBox",
    "TestAndSetBox",
    "BinaryConsensusBox",
    "AugmentedModel",
    "beta_input_function",
    "majority_side",
]
