"""Compact wire codec for simplices and complexes.

Cross-process transfer is the price of the parallel execution engine
(:mod:`repro.parallel`): every fan-out ships simplices to a worker and a
protocol complex back.  Pickling the object graph directly repeats every
shared :class:`~repro.topology.vertex.Vertex` (and its nested
:class:`~repro.topology.views.View` payload) once per facet that contains
it — at ``13^t`` facets the redundancy dominates the payload.  The codec
instead interns the distinct ``(color, value)`` pairs once in a
:class:`VertexTable` and encodes each simplex as an integer *bitmask*
over the table, so a complex crosses the process boundary as one pair
table plus one ``int`` per facet.

The encoding is canonical: the table lists vertices in their
deterministic sort order and facet masks are emitted sorted, so equal
complexes encode to equal :class:`WireComplex` records.  That makes the
wire form double as a compact, hashable *key* for the memoization layer
(the parallel engine dedups in-flight expansion work by
:class:`WireSimplex`), on top of being the pickle payload.

``encode``/``decode`` round-trip exactly (property-tested in
``tests/topology/test_wire.py``): the facets of a
:class:`~repro.topology.complex.SimplicialComplex` are inclusion-maximal
by construction, masks preserve exactly that family, and decoding goes
through the trusted ``from_maximal`` fast path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Optional

from repro.errors import ChromaticityError
from repro.topology.complex import SimplicialComplex
from repro.topology.simplex import Simplex
from repro.topology.vertex import Vertex

__all__ = [
    "VertexTable",
    "WireSimplex",
    "WireComplex",
    "encode_simplex",
    "decode_simplex",
    "encode_complex",
    "decode_complex",
]


class VertexTable:
    """An interned table of ``(color, value)`` pairs with stable indices.

    The table assigns each distinct vertex a small integer index; simplex
    bitmasks are built over those indices.  Encoding and decoding sides
    must share the same pair tuple (the encoder embeds it in the wire
    record).
    """

    __slots__ = ("_pairs", "_index", "_vertices")

    def __init__(
        self, pairs: Iterable[tuple[int, Hashable]] = ()
    ) -> None:
        self._pairs: list[tuple[int, Hashable]] = []
        self._index: dict[Vertex, int] = {}
        self._vertices: list[Vertex] = []
        for color, value in pairs:
            self.add(Vertex(color, value))

    def add(self, vertex: Vertex) -> int:
        """Intern a vertex, returning its (new or existing) index."""
        found = self._index.get(vertex)
        if found is None:
            found = len(self._pairs)
            self._index[vertex] = found
            self._pairs.append(vertex.as_pair())
            self._vertices.append(vertex)
        return found

    def index_of(self, vertex: Vertex) -> int:
        """The index of an interned vertex (:class:`KeyError` if absent)."""
        return self._index[vertex]

    def vertex_at(self, index: int) -> Vertex:
        """The vertex interned at ``index``."""
        return self._vertices[index]

    @property
    def pairs(self) -> tuple[tuple[int, Hashable], ...]:
        """The interned ``(color, value)`` pairs, in index order."""
        return tuple(self._pairs)

    def __len__(self) -> int:
        return len(self._pairs)

    def encode_mask(self, simplex: Simplex) -> int:
        """The bitmask of a simplex over this table (vertices interned)."""
        mask = 0
        for vertex in simplex.vertices:
            mask |= 1 << self.add(vertex)
        return mask

    def decode_mask(self, mask: int) -> Simplex:
        """Rebuild the simplex whose vertices are the set bits of ``mask``."""
        if mask <= 0:
            raise ChromaticityError(
                f"simplex bitmask must be positive, got {mask}"
            )
        vertices = []
        index = 0
        while mask:
            if mask & 1:
                if index >= len(self._vertices):
                    raise ChromaticityError(
                        f"bitmask bit {index} exceeds the vertex table "
                        f"({len(self._vertices)} entries)"
                    )
                vertices.append(self._vertices[index])
            mask >>= 1
            index += 1
        return Simplex(vertices)


@dataclass(frozen=True)
class WireSimplex:
    """One simplex in wire form: its own pair table (it is its own mask).

    Hashable and canonical (pairs are stored in vertex sort order), so it
    doubles as a dedup/memo key for in-flight parallel work.
    """

    pairs: tuple[tuple[int, Hashable], ...]


@dataclass(frozen=True)
class WireComplex:
    """A complex in wire form: interned pair table + facet bitmasks.

    ``pairs`` lists the distinct vertices in deterministic sort order;
    ``masks`` holds one bitmask per facet, sorted ascending.  Equal
    complexes produce equal (and equally hashable) records, so a
    ``WireComplex`` is also a valid cache key.
    """

    pairs: tuple[tuple[int, Hashable], ...]
    masks: tuple[int, ...]

    @property
    def facet_count(self) -> int:
        """Number of encoded facets."""
        return len(self.masks)


def encode_simplex(simplex: Simplex) -> WireSimplex:
    """Encode one simplex canonically (pairs in vertex sort order)."""
    return WireSimplex(tuple(v.as_pair() for v in simplex.vertices))


def decode_simplex(wire: WireSimplex) -> Simplex:
    """Rebuild a simplex from its wire form."""
    return Simplex(Vertex(color, value) for color, value in wire.pairs)


def encode_complex(complex_: SimplicialComplex) -> WireComplex:
    """Encode a complex canonically as a pair table plus facet bitmasks.

    The table lists ``complex_.sorted_vertices()`` (deterministic), and
    the mask tuple is sorted, so equal complexes yield equal records.
    The empty complex encodes to empty tuples.
    """
    table = VertexTable()
    for vertex in complex_.sorted_vertices():
        table.add(vertex)
    masks = sorted(
        table.encode_mask(facet) for facet in complex_.facets
    )
    return WireComplex(table.pairs, tuple(masks))


def decode_complex(
    wire: WireComplex, check: Optional[bool] = None
) -> SimplicialComplex:
    """Rebuild a complex from its wire form.

    Records produced by :func:`encode_complex` carry the facets of a
    real complex, which are inclusion-maximal by construction; decoding
    therefore takes the trusted ``from_maximal`` path.  Pass
    ``check=True`` for foreign records (hand-built masks): the decoder
    then routes through the pruning constructor, which tolerates — and
    prunes — non-maximal families.
    """
    table = VertexTable(wire.pairs)
    facets = [table.decode_mask(mask) for mask in wire.masks]
    if check:
        return SimplicialComplex(facets)
    if not facets:
        return SimplicialComplex.empty()
    return SimplicialComplex.from_maximal(facets)
