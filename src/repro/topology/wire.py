"""Compact wire codec for simplices and complexes.

Cross-process transfer is the price of the parallel execution engine
(:mod:`repro.parallel`): every fan-out ships simplices to a worker and a
protocol complex back.  Pickling the object graph directly repeats every
shared :class:`~repro.topology.vertex.Vertex` (and its nested
:class:`~repro.topology.views.View` payload) once per facet that contains
it — at ``13^t`` facets the redundancy dominates the payload.  The codec
instead interns the distinct ``(color, value)`` pairs once in a
:class:`~repro.topology.table.VertexTable` and encodes each simplex as an
integer *bitmask* over the table, so a complex crosses the process
boundary as one pair table plus one ``int`` per facet.

Since the bitmask-native core, this representation is also the complex's
*in-memory* index: :func:`encode_complex` just re-reads the canonical
``(table, masks)`` pair the complex already maintains (a near-no-op),
and the trusted :func:`decode_complex` path hands the masks straight
back to a lazily-materializing complex without rebuilding one vertex
object.

The encoding is canonical: the table lists vertices in their
deterministic sort order and facet masks are emitted sorted, so equal
complexes encode to equal :class:`WireComplex` records.  That makes the
wire form double as a compact, hashable *key* for the memoization layer
(the parallel engine dedups in-flight expansion work by
:class:`WireSimplex`), on top of being the pickle payload.

``encode``/``decode`` round-trip exactly (property-tested in
``tests/topology/test_wire.py``): the facets of a
:class:`~repro.topology.complex.SimplicialComplex` are inclusion-maximal
by construction, masks preserve exactly that family, and decoding goes
through the trusted mask-level fast path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional

from repro.topology import sanitize as _sanitize
from repro.topology.complex import SimplicialComplex
from repro.topology.simplex import Simplex
from repro.topology.table import VertexTable
from repro.topology.vertex import Vertex

__all__ = [
    "VertexTable",
    "WireSimplex",
    "WireComplex",
    "encode_simplex",
    "decode_simplex",
    "encode_complex",
    "decode_complex",
]


@dataclass(frozen=True)
class WireSimplex:
    """One simplex in wire form: its own pair table (it is its own mask).

    Hashable and canonical (pairs are stored in vertex sort order), so it
    doubles as a dedup/memo key for in-flight parallel work.
    """

    pairs: tuple[tuple[int, Hashable], ...]


@dataclass(frozen=True)
class WireComplex:
    """A complex in wire form: interned pair table + facet bitmasks.

    ``pairs`` lists the distinct vertices in deterministic sort order;
    ``masks`` holds one bitmask per facet, sorted ascending.  Equal
    complexes produce equal (and equally hashable) records, so a
    ``WireComplex`` is also a valid cache key.
    """

    pairs: tuple[tuple[int, Hashable], ...]
    masks: tuple[int, ...]

    @property
    def facet_count(self) -> int:
        """Number of encoded facets."""
        return len(self.masks)


def encode_simplex(simplex: Simplex) -> WireSimplex:
    """Encode one simplex canonically (pairs in vertex sort order)."""
    return WireSimplex(tuple(v.as_pair() for v in simplex.vertices))


def decode_simplex(wire: WireSimplex) -> Simplex:
    """Rebuild a simplex from its wire form."""
    return Simplex(Vertex(color, value) for color, value in wire.pairs)


def encode_complex(complex_: SimplicialComplex) -> WireComplex:
    """Encode a complex canonically as a pair table plus facet bitmasks.

    The complex's own mask index *is* the canonical representation (the
    table lists the vertices in deterministic sort order and the mask
    tuple is stored sorted), so encoding only re-reads it — the historic
    re-interning pass is gone.  The empty complex encodes to empty
    tuples.
    """
    table, masks = complex_._ensure_index()
    if _sanitize.ACTIVE:
        # Sanitizer hook: the index masks must belong to the index table
        # (a cross-table mix that slipped into ``_masks`` would otherwise
        # ship silently and corrupt every consumer of the record).
        for mask in masks:
            _sanitize.check_decode(table, mask, "encode_complex")
    return WireComplex(table.pairs, masks)


def decode_complex(
    wire: WireComplex, check: Optional[bool] = None
) -> SimplicialComplex:
    """Rebuild a complex from its wire form.

    Records produced by :func:`encode_complex` carry the facets of a
    real complex — inclusion-maximal masks over a canonically sorted
    table — so decoding takes the trusted mask-level path: the table is
    interned process-wide and facet ``Simplex`` objects materialize only
    if an API boundary asks for them.  Pass ``check=True`` for foreign
    records (hand-built masks): the decoder then materializes every
    facet and routes through the pruning constructor, which tolerates —
    and prunes — non-maximal families.
    """
    table = VertexTable.interned(wire.pairs)
    if _sanitize.ACTIVE:
        # Sanitizer hook: records built in-process may still carry tags;
        # they must be compatible with the interned decode table.
        for mask in wire.masks:
            _sanitize.check_decode(table, mask, "decode_complex")
    if check:
        return SimplicialComplex(
            [table.decode_mask(mask) for mask in wire.masks]
        )
    if not wire.masks:
        return SimplicialComplex.empty()
    # Bounds-check the masks (decode_mask would have); the mask-level
    # constructor then narrows/validates table order itself.
    full = table.full_mask
    for mask in wire.masks:
        if mask <= 0 or mask & ~full:
            return SimplicialComplex(
                [table.decode_mask(mask) for mask in wire.masks]
            )
    return SimplicialComplex._from_masks(table, wire.masks)
