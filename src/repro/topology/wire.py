"""Compact wire codec for simplices and complexes.

Cross-process transfer is the price of the parallel execution engine
(:mod:`repro.parallel`): every fan-out ships simplices to a worker and a
protocol complex back.  Pickling the object graph directly repeats every
shared :class:`~repro.topology.vertex.Vertex` (and its nested
:class:`~repro.topology.views.View` payload) once per facet that contains
it — at ``13^t`` facets the redundancy dominates the payload.  The codec
instead interns the distinct ``(color, value)`` pairs once in a
:class:`~repro.topology.table.VertexTable` and encodes each simplex as an
integer *bitmask* over the table, so a complex crosses the process
boundary as one pair table plus one ``int`` per facet.

Since the bitmask-native core, this representation is also the complex's
*in-memory* index: :func:`encode_complex` just re-reads the canonical
``(table, masks)`` pair the complex already maintains (a near-no-op),
and the trusted :func:`decode_complex` path hands the masks straight
back to a lazily-materializing complex without rebuilding one vertex
object.

The encoding is canonical: the table lists vertices in their
deterministic sort order and facet masks are emitted sorted, so equal
complexes encode to equal :class:`WireComplex` records.  That makes the
wire form double as a compact, hashable *key* for the memoization layer
(the parallel engine dedups in-flight expansion work by
:class:`WireSimplex`), on top of being the pickle payload.

``encode``/``decode`` round-trip exactly (property-tested in
``tests/topology/test_wire.py``): the facets of a
:class:`~repro.topology.complex.SimplicialComplex` are inclusion-maximal
by construction, masks preserve exactly that family, and decoding goes
through the trusted mask-level fast path.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from fractions import Fraction
from typing import Hashable, Iterator, Optional

from repro.topology import sanitize as _sanitize
from repro.topology.complex import SimplicialComplex
from repro.topology.simplex import Simplex
from repro.topology.table import VertexTable
from repro.topology.vertex import Vertex

__all__ = [
    "VertexTable",
    "WireSimplex",
    "WireComplex",
    "encode_simplex",
    "decode_simplex",
    "encode_complex",
    "decode_complex",
    "canonical_bytes",
    "digest_payload",
    "digest_complex",
]


@dataclass(frozen=True)
class WireSimplex:
    """One simplex in wire form: its own pair table (it is its own mask).

    Hashable and canonical (pairs are stored in vertex sort order), so it
    doubles as a dedup/memo key for in-flight parallel work.
    """

    pairs: tuple[tuple[int, Hashable], ...]


@dataclass(frozen=True)
class WireComplex:
    """A complex in wire form: interned pair table + facet bitmasks.

    ``pairs`` lists the distinct vertices in deterministic sort order;
    ``masks`` holds one bitmask per facet, sorted ascending.  Equal
    complexes produce equal (and equally hashable) records, so a
    ``WireComplex`` is also a valid cache key.
    """

    pairs: tuple[tuple[int, Hashable], ...]
    masks: tuple[int, ...]

    @property
    def facet_count(self) -> int:
        """Number of encoded facets."""
        return len(self.masks)


def encode_simplex(simplex: Simplex) -> WireSimplex:
    """Encode one simplex canonically (pairs in vertex sort order)."""
    return WireSimplex(tuple(v.as_pair() for v in simplex.vertices))


def decode_simplex(wire: WireSimplex) -> Simplex:
    """Rebuild a simplex from its wire form."""
    return Simplex(Vertex(color, value) for color, value in wire.pairs)


def encode_complex(complex_: SimplicialComplex) -> WireComplex:
    """Encode a complex canonically as a pair table plus facet bitmasks.

    The complex's own mask index *is* the canonical representation (the
    table lists the vertices in deterministic sort order and the mask
    tuple is stored sorted), so encoding only re-reads it — the historic
    re-interning pass is gone.  The empty complex encodes to empty
    tuples.
    """
    table, masks = complex_._ensure_index()
    if _sanitize.ACTIVE:
        # Sanitizer hook: the index masks must belong to the index table
        # (a cross-table mix that slipped into ``_masks`` would otherwise
        # ship silently and corrupt every consumer of the record).
        for mask in masks:
            _sanitize.check_decode(table, mask, "encode_complex")
    return WireComplex(table.pairs, masks)


def decode_complex(
    wire: WireComplex, check: Optional[bool] = None
) -> SimplicialComplex:
    """Rebuild a complex from its wire form.

    Records produced by :func:`encode_complex` carry the facets of a
    real complex — inclusion-maximal masks over a canonically sorted
    table — so decoding takes the trusted mask-level path: the table is
    interned process-wide and facet ``Simplex`` objects materialize only
    if an API boundary asks for them.  Pass ``check=True`` for foreign
    records (hand-built masks): the decoder then materializes every
    facet and routes through the pruning constructor, which tolerates —
    and prunes — non-maximal families.
    """
    table = VertexTable.interned(wire.pairs)
    if _sanitize.ACTIVE:
        # Sanitizer hook: records built in-process may still carry tags;
        # they must be compatible with the interned decode table.
        for mask in wire.masks:
            _sanitize.check_decode(table, mask, "decode_complex")
    if check:
        return SimplicialComplex(
            [table.decode_mask(mask) for mask in wire.masks]
        )
    if not wire.masks:
        return SimplicialComplex.empty()
    # Bounds-check the masks (decode_mask would have); the mask-level
    # constructor then narrows/validates table order itself.
    full = table.full_mask
    for mask in wire.masks:
        if mask <= 0 or mask & ~full:
            return SimplicialComplex(
                [table.decode_mask(mask) for mask in wire.masks]
            )
    return SimplicialComplex._from_masks(table, wire.masks)


# ----------------------------------------------------------------------
# Canonical digests (content-addressed keys)
# ----------------------------------------------------------------------
def _canonical_chunks(value: object) -> Iterator[bytes]:
    """Yield a type-tagged, self-delimiting byte encoding of ``value``.

    The encoding is injective on the value universe the codec actually
    carries — ``None``, booleans, integers, :class:`~fractions.Fraction`,
    floats, strings, bytes, and (nested) tuples/lists, sets/frozensets,
    and dictionaries.  Every chunk starts with a one-byte type tag and
    carries an explicit length or terminator, so no two distinct values
    can concatenate to the same stream (the classic ``("ab","c")`` vs
    ``("a","bc")`` ambiguity is excluded by the length prefixes).

    Unknown immutable value objects (e.g. :class:`~repro.topology.views.
    View`) fall back to their type name plus ``repr``, which is stable
    and content-determined for the library's value objects.
    """
    # bool before int: Python booleans are integers.
    if value is None:
        yield b"N;"
    elif isinstance(value, bool):
        yield b"B1;" if value else b"B0;"
    elif isinstance(value, int):
        yield b"I%d;" % value
    elif isinstance(value, Fraction):
        yield b"Q%d/%d;" % (value.numerator, value.denominator)
    elif isinstance(value, float):
        raw = repr(value).encode("ascii")
        yield b"F%d:%s;" % (len(raw), raw)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        yield b"S%d:%s;" % (len(raw), raw)
    elif isinstance(value, (bytes, bytearray)):
        yield b"Y%d:%s;" % (len(value), bytes(value))
    elif isinstance(value, (tuple, list)):
        yield b"T%d:" % len(value)
        for item in value:
            yield from _canonical_chunks(item)
        yield b";"
    elif isinstance(value, (set, frozenset)):
        encoded = sorted(
            b"".join(_canonical_chunks(item)) for item in value
        )
        yield b"U%d:" % len(encoded)
        for chunk in encoded:
            yield chunk
        yield b";"
    elif isinstance(value, dict):
        pairs = sorted(
            b"".join(_canonical_chunks(key))
            + b"".join(_canonical_chunks(item))
            for key, item in value.items()
        )
        yield b"D%d:" % len(pairs)
        for chunk in pairs:
            yield chunk
        yield b";"
    else:
        tag = type(value).__name__.encode("utf-8")
        raw = repr(value).encode("utf-8")
        yield b"O%d:%s:%d:%s;" % (len(tag), tag, len(raw), raw)


def canonical_bytes(payload: object) -> bytes:
    """The canonical byte encoding of a structured payload.

    Equal payloads (by structural value, not identity) produce equal
    bytes in every process and on every platform; this is the input of
    :func:`digest_payload` and the parity baseline the serving tier's
    byte-identity audit (AUD015) compares against.
    """
    return b"".join(_canonical_chunks(payload))


def digest_payload(payload: object) -> str:
    """The sha256 hex digest of :func:`canonical_bytes` of ``payload``.

    The cache-key primitive: the serving tier keys its single-flight
    dedup table and the content-addressed result store by this digest,
    and it doubles as a general memo key for any canonically-encodable
    value (property-tested for stability and round-trip agreement in
    ``tests/topology/test_wire.py``).
    """
    return hashlib.sha256(canonical_bytes(payload)).hexdigest()


def digest_complex(complex_: SimplicialComplex) -> str:
    """The sha256 hex digest of a complex's canonical wire encoding.

    Equal complexes — however they were constructed — digest equally,
    because :func:`encode_complex` is canonical (sorted vertex table,
    sorted facet masks); distinct complexes digest differently up to
    sha256 collisions.
    """
    wire = encode_complex(complex_)
    return digest_payload(("wire-complex", wire.pairs, wire.masks))
