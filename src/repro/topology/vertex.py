"""Chromatic vertices.

A vertex of a chromatic complex is a pair ``(color, value)`` where ``color``
is a process identifier in ``[n] = {1, …, n}`` and ``value`` is an arbitrary
immutable payload — an input value, an output value, or a full-information
view accumulated during an execution (Appendix A.1 of the paper).

Vertices are immutable, hashable, and totally ordered so that simplices and
complexes can be iterated deterministically.  Ordering compares colors first
and then a structural key of the value (see :func:`value_sort_key`), which
gives a stable order even across heterogeneous value types such as
:class:`fractions.Fraction`, tuples, and :class:`repro.topology.views.View`.
"""

from __future__ import annotations

from fractions import Fraction
from functools import total_ordering
from typing import Any, Hashable

__all__ = ["Vertex", "value_sort_key"]


def value_sort_key(value: Any) -> tuple:
    """Return a tuple usable to totally order heterogeneous vertex values.

    The key is structural and recursive: numbers sort among themselves,
    strings among themselves, and containers lexicographically by the keys of
    their elements.  Two values of different kinds are ordered by a type tag,
    so comparison never raises ``TypeError``.

    This function only needs to induce *some* deterministic total order; it is
    used for canonical iteration, never for semantics.
    """
    # Booleans are ints in Python; give them their own tag to keep the order
    # stable if both appear.
    if isinstance(value, bool):
        return ("bool", int(value))
    if isinstance(value, (int, Fraction, float)):
        return ("num", Fraction(value))
    if isinstance(value, str):
        return ("str", value)
    if isinstance(value, bytes):
        return ("bytes", value)
    if value is None:
        return ("none",)
    if isinstance(value, tuple):
        return ("tuple", tuple(value_sort_key(item) for item in value))
    if isinstance(value, frozenset):
        return ("fset", tuple(sorted(value_sort_key(item) for item in value)))
    # Objects can opt into ordering by exposing a `_sort_key` method
    # (View and Simplex do).
    sort_key = getattr(value, "_sort_key", None)
    if callable(sort_key):
        return (type(value).__name__, sort_key())
    # Fall back to the repr, which is stable for immutable value objects.
    return (type(value).__name__, repr(value))


@total_ordering
class Vertex:
    """An immutable chromatic vertex ``(color, value)``.

    Parameters
    ----------
    color:
        The process identifier carrying this vertex.  The paper uses colors
        in ``{1, …, n}``; the library only requires a hashable integer.
    value:
        Any hashable payload.  For input complexes this is an input value;
        for protocol complexes it is a :class:`~repro.topology.views.View`
        (possibly paired with a black-box output).
    """

    __slots__ = ("_color", "_value", "_hash", "_skey")

    def __init__(self, color: int, value: Hashable):
        if not isinstance(color, int):
            raise TypeError(f"vertex color must be an int, got {color!r}")
        self._color = color
        self._value = value
        self._hash = hash((color, value))

    @property
    def color(self) -> int:
        """The process identifier (the paper's *color* / *ID*)."""
        return self._color

    @property
    def value(self) -> Hashable:
        """The payload carried by the vertex."""
        return self._value

    def with_value(self, value: Hashable) -> "Vertex":
        """Return a vertex with the same color and a new value."""
        return Vertex(self._color, value)

    def as_pair(self) -> tuple[int, Hashable]:
        """Return the vertex as the plain pair ``(color, value)``."""
        return (self._color, self._value)

    def _sort_key(self) -> tuple:
        # Cached on first use: canonical vertex-table construction sorts
        # the same vertices over and over, and the structural key of a
        # deep View payload is the expensive part.
        try:
            return self._skey
        except AttributeError:
            key = (self._color, value_sort_key(self._value))
            self._skey = key
            return key

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Vertex):
            return NotImplemented
        return self._color == other._color and self._value == other._value

    def __lt__(self, other: "Vertex") -> bool:
        if not isinstance(other, Vertex):
            return NotImplemented
        return self._sort_key() < other._sort_key()

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Vertex({self._color}, {self._value!r})"
