"""Carrier maps.

A carrier map ``Δ : K → 2^{K'}`` assigns to every simplex of ``K`` a
subcomplex of ``K'`` on the same colors, monotonically (``σ' ⊆ σ`` implies
``Δ(σ') ⊆ Δ(σ)``).  Task specifications, protocol-complex maps ``Ξ``, and
closure maps ``Δ'`` are all carrier-like; the paper deliberately does *not*
force task maps to be monotone, so :class:`CarrierMap` records the property
instead of enforcing it.

Evaluations are memoized under ``(table_id, mask)`` int-pair keys over
the domain complex's canonical vertex table — the same strict-probe
discipline as the model memos: the strict
:meth:`~repro.topology.table.VertexTable.encode_mask` either yields the
canonical mask or proves the simplex foreign to the domain, and hashing
two small ints beats re-hashing a vertex tuple on every Δ evaluation.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Optional

from repro.errors import ChromaticityError, TaskSpecificationError
from repro.instrumentation import counter
from repro.topology.complex import SimplicialComplex
from repro.topology.simplex import Simplex
from repro.topology.table import VertexTable

__all__ = ["CarrierMap"]

_CARRIER_STATS = counter("carrier.evaluations")


class CarrierMap:
    """A map from simplices to subcomplexes, evaluated lazily.

    Parameters
    ----------
    domain:
        The complex whose simplices the map accepts.
    function:
        A callable ``σ ↦ SimplicialComplex``.  Results are memoized.
    name:
        Optional human-readable label used in ``repr``.
    """

    __slots__ = (
        "_domain",
        "_function",
        "_table",
        "_cache",
        "_foreign_cache",
        "_name",
    )

    def __init__(
        self,
        domain: SimplicialComplex,
        function: Callable[[Simplex], SimplicialComplex],
        name: Optional[str] = None,
    ):
        self._domain = domain
        self._function = function
        #: The domain's canonical table, bound on first evaluation (the
        #: index may not exist yet at construction time).
        self._table: Optional[VertexTable] = None
        self._cache: dict[tuple[int, int], SimplicialComplex] = {}
        #: Simplices with vertices outside the domain's table cannot be
        #: encoded against it; the class has always accepted them (the
        #: function decides whether they are an error), so they memoize
        #: in a simplex-keyed side table instead.
        self._foreign_cache: dict[Simplex, SimplicialComplex] = {}
        self._name = name or "Δ"

    @classmethod
    def from_mapping(
        cls,
        domain: SimplicialComplex,
        mapping: Mapping[Simplex, SimplicialComplex],
        name: Optional[str] = None,
    ) -> "CarrierMap":
        """Build a carrier map from an explicit table."""
        table = dict(mapping)

        def lookup(simplex: Simplex) -> SimplicialComplex:
            try:
                return table[simplex]
            except KeyError:
                raise TaskSpecificationError(
                    f"carrier map has no entry for {simplex!r}"
                ) from None

        return cls(domain, lookup, name=name)

    @property
    def domain(self) -> SimplicialComplex:
        """The domain complex."""
        return self._domain

    def __call__(self, simplex: Simplex) -> SimplicialComplex:
        table = self._table
        if table is None:
            table = self._table = self._domain._ensure_index()[0]
        try:
            key = (table.table_id, table.encode_mask(simplex))
        except ChromaticityError:
            found = self._foreign_cache.get(simplex)
            if found is None:
                _CARRIER_STATS.miss()
                found = self._foreign_cache[simplex] = self._function(
                    simplex
                )
            else:
                _CARRIER_STATS.hit()
            return found
        found = self._cache.get(key)
        if found is None:
            _CARRIER_STATS.miss()
            found = self._cache[key] = self._function(simplex)
        else:
            _CARRIER_STATS.hit()
        return found

    # ------------------------------------------------------------------
    # Structural checks
    # ------------------------------------------------------------------
    def is_monotone(
        self, simplices: Optional[Iterable[Simplex]] = None
    ) -> bool:
        """Check ``σ' ⊆ σ ⟹ Δ(σ') ⊆ Δ(σ)`` over the given simplices.

        When ``simplices`` is omitted, the check runs over every simplex of
        the domain — fine for the small complexes of this library.
        """
        pool = list(simplices) if simplices is not None else list(self._domain)
        for simplex in pool:
            big = self(simplex).simplices
            for face in simplex.proper_faces():
                if not self(face).simplices <= big:
                    return False
        return True

    def is_chromatic(
        self, simplices: Optional[Iterable[Simplex]] = None
    ) -> bool:
        """Check that ``Δ(σ)`` only uses the colors of ``σ``."""
        pool = list(simplices) if simplices is not None else list(self._domain)
        return all(self(simplex).ids <= simplex.ids for simplex in pool)

    def agrees_on(
        self,
        other: "CarrierMap",
        simplices: Optional[Iterable[Simplex]] = None,
    ) -> bool:
        """``True`` iff both maps return equal complexes on every simplex."""
        pool = list(simplices) if simplices is not None else list(self._domain)
        return all(self(simplex) == other(simplex) for simplex in pool)

    def total_image(self) -> SimplicialComplex:
        """The union ``∪_σ Δ(σ)`` over all facets of the domain."""
        image = SimplicialComplex.empty()
        for facet in self._domain.facets:
            image = image.union(self(facet))
        return image

    def __repr__(self) -> str:
        return f"CarrierMap({self._name}, domain={self._domain!r})"
