"""Full-information views.

After one round of Algorithm 1, the view of process ``i`` is the set of pairs
``{(j, x_j) : j ∈ J_i}`` of inputs it managed to read.  After further rounds
the values ``x_j`` are themselves views, so a view after ``t`` rounds is a
nested chromatic structure.  :class:`View` is the immutable value object the
library uses for these sets: it behaves as a read-only mapping from colors to
values, is hashable (so it can itself be a vertex value), and iterates in
deterministic color order.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Iterator, Mapping, Union

from repro.errors import ChromaticityError
from repro.topology.vertex import Vertex, value_sort_key

__all__ = ["View"]

PairsLike = Union[
    Mapping[int, Hashable],
    Iterable[tuple[int, Hashable]],
    Iterable[Vertex],
]


class View:
    """An immutable chromatic set of ``(color, value)`` pairs.

    A view represents everything a process has read during a round: one value
    per process it "saw".  Views compare equal iff they contain the same
    pairs, and support the mapping protocol (``view[j]``, ``j in view``,
    ``len(view)``).

    Parameters
    ----------
    pairs:
        A mapping ``{color: value}``, an iterable of ``(color, value)``
        tuples, or an iterable of :class:`Vertex`.  Colors must be pairwise
        distinct.
    """

    __slots__ = ("_items", "_index", "_hash", "_skey")

    def __init__(self, pairs: PairsLike):
        if isinstance(pairs, Mapping):
            raw = list(pairs.items())
        else:
            raw = []
            for entry in pairs:
                if isinstance(entry, Vertex):
                    raw.append((entry.color, entry.value))
                else:
                    color, value = entry
                    raw.append((color, value))
        index: dict[int, Hashable] = {}
        for color, value in raw:
            if not isinstance(color, int):
                raise ChromaticityError(
                    f"view colors must be ints, got {color!r}"
                )
            if color in index:
                raise ChromaticityError(
                    f"duplicate color {color} in view: a view holds at most "
                    "one value per process"
                )
            index[color] = value
        items = tuple(sorted(index.items(), key=lambda kv: kv[0]))
        self._items = items
        self._index = dict(items)
        self._hash = hash(items)

    # ------------------------------------------------------------------
    # Mapping protocol
    # ------------------------------------------------------------------
    def __getitem__(self, color: int) -> Hashable:
        return self._index[color]

    def get(self, color: int, default: Any = None) -> Any:
        """Return the value seen for ``color``, or ``default``."""
        return self._index.get(color, default)

    def __contains__(self, color: object) -> bool:
        return color in self._index

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[tuple[int, Hashable]]:
        return iter(self._items)

    # ------------------------------------------------------------------
    # Chromatic accessors
    # ------------------------------------------------------------------
    @property
    def ids(self) -> frozenset:
        """The set ``J_i`` of colors appearing in the view."""
        return frozenset(self._index)

    @property
    def items(self) -> tuple[tuple[int, Hashable], ...]:
        """The pairs of the view, sorted by color."""
        return self._items

    def values(self) -> tuple[Hashable, ...]:
        """The values of the view, in color order."""
        return tuple(value for _, value in self._items)

    def restrict(self, colors: Iterable[int]) -> "View":
        """Return the sub-view containing only the given colors."""
        keep = set(colors)
        return View(
            (color, value) for color, value in self._items if color in keep
        )

    def with_pair(self, color: int, value: Hashable) -> "View":
        """Return a view extended (or overwritten) with ``(color, value)``."""
        updated = dict(self._items)
        updated[color] = value
        return View(updated)

    def vertices(self) -> tuple[Vertex, ...]:
        """Return the view's pairs as :class:`Vertex` objects."""
        return tuple(Vertex(color, value) for color, value in self._items)

    def is_subview_of(self, other: "View") -> bool:
        """``True`` iff every pair of this view also appears in ``other``.

        This is the containment ``V_j ⊆ V_i`` used in the definition of the
        standard chromatic subdivision.
        """
        if len(self._items) > len(other._items):
            return False
        other_index = other._index
        for color, value in self._items:
            try:
                if other_index[color] != value:
                    return False
            except KeyError:
                return False
        return True

    # ------------------------------------------------------------------
    # Value-object plumbing
    # ------------------------------------------------------------------
    def _sort_key(self) -> tuple:
        # Views nest (a round-t view holds round-(t-1) views), so the
        # structural key is recursive and worth caching: sorting the
        # vertex table of a 13^t-facet protocol complex touches each
        # distinct view many times.
        try:
            return self._skey
        except AttributeError:
            key = tuple(
                (color, value_sort_key(value))
                for color, value in self._items
            )
            self._skey = key
            return key

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, View):
            return NotImplemented
        return self._items == other._items

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        body = ", ".join(f"{c}:{v!r}" for c, v in self._items)
        return f"View({{{body}}})"
