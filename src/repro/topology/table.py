"""Interned vertex tables and bitmask primitives.

The bitmask-native core represents a simplex as an integer mask over a
:class:`VertexTable`: bit ``i`` set means "contains the table's ``i``-th
vertex".  Subset tests become ``sub & sup == sub``, face enumeration
becomes submask enumeration, and inclusion-maximality pruning becomes a
sweep of integer comparisons.  :class:`~repro.topology.complex.SimplicialComplex`
keeps one table per complex; the wire codec (:mod:`repro.topology.wire`)
ships the same table across process boundaries.

Tables come in two flavours:

* *growable* tables (the plain constructor) intern vertices on demand via
  :meth:`VertexTable.add` / :meth:`VertexTable.encode_mask_interning`.
  The memoization layer keeps one per model/operator and keys caches by
  ``(table_id, mask)`` int pairs.
* *interned* tables (:meth:`VertexTable.interned` /
  :meth:`VertexTable.interned_of`) are frozen and shared process-wide
  through a weak registry keyed by their pair tuple, so equal complexes
  built at different times index against the *same* table object — which
  makes table identity a valid fast path for complex equality and keeps
  re-encoding to wire form a near-no-op.

:meth:`VertexTable.encode_mask` is *strict*: encoding a vertex the table
does not hold raises :class:`~repro.errors.ChromaticityError` instead of
silently interning it.  Silent interning against a shared or stale table
yields order-dependent masks that poison memo keys; the table-building
path must opt in explicitly via :meth:`encode_mask_interning`.
"""

from __future__ import annotations

import weakref
from itertools import count
from typing import Callable, Hashable, Iterable, Iterator, Sequence

from repro.errors import ChromaticityError, ReproError
from repro.topology import sanitize as _sanitize
from repro.topology.simplex import Simplex
from repro.topology.vertex import Vertex

__all__ = ["VertexTable", "popcount", "iter_bits", "iter_submasks"]


def _portable_popcount(value: int) -> int:
    return bin(value).count("1")


#: Number of set bits of a mask (``int.bit_count`` needs Python ≥ 3.10;
#: the string fallback keeps 3.9 working).
popcount: Callable[[int], int] = getattr(
    int, "bit_count", _portable_popcount
)


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the indices of the set bits of ``mask``, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def iter_submasks(mask: int) -> Iterator[int]:
    """Yield every non-zero submask of ``mask`` (faces of a facet).

    Order is descending, starting at ``mask`` itself; the classic
    ``sub = (sub - 1) & mask`` walk visits each of the ``2^k - 1``
    non-empty subsets exactly once.
    """
    sub = mask
    while sub:
        yield sub
        sub = (sub - 1) & mask


#: Process-wide weak registry of interned tables, keyed by pair tuple.
#: Values are weak so that sweeps over many distinct complexes (the
#: ``13^t`` blow-up) do not pin dead tables in memory: a table lives
#: exactly as long as some complex (or memo layer) references it.
_INTERNED: "weakref.WeakValueDictionary[tuple, VertexTable]" = (
    weakref.WeakValueDictionary()
)

_TABLE_IDS = count()


class VertexTable:
    """An interned table of ``(color, value)`` pairs with stable indices.

    The table assigns each distinct vertex a small integer index; simplex
    bitmasks are built over those indices.  Encoding and decoding sides
    must share the same pair tuple (the wire encoder embeds it in the
    record).

    Every table carries a process-unique ``table_id`` (never reused), so
    ``(table_id, mask)`` int pairs are unambiguous memo keys across any
    number of tables.
    """

    __slots__ = (
        "_pairs",
        "_index",
        "_vertices",
        "_sorted",
        "_frozen",
        "_table_id",
        "__weakref__",
    )

    def __init__(
        self, pairs: Iterable[tuple[int, Hashable]] = ()
    ) -> None:
        self._pairs: list[tuple[int, Hashable]] = []
        self._index: dict[Vertex, int] = {}
        self._vertices: list[Vertex] = []
        self._sorted: bool | None = None
        self._frozen = False
        self._table_id = next(_TABLE_IDS)
        for color, value in pairs:
            self.add(Vertex(color, value))

    # ------------------------------------------------------------------
    # Interned constructors
    # ------------------------------------------------------------------
    @classmethod
    def interned(
        cls, pairs: Iterable[tuple[int, Hashable]]
    ) -> "VertexTable":
        """The process-wide frozen table for the given pair tuple.

        Tables are shared through a weak registry: two calls with equal
        pairs return the same object for as long as anything holds it.
        """
        key = tuple(pairs)
        found = _INTERNED.get(key)
        if found is None:
            found = cls(key)
            found._frozen = True
            _INTERNED[key] = found
        return found

    @classmethod
    def interned_of(cls, vertices: Sequence[Vertex]) -> "VertexTable":
        """The interned table listing ``vertices`` in the given order.

        The caller promises the sequence is already in canonical
        ``_sort_key`` order (the complex index builder sorts before
        calling); the table is marked sorted without re-checking.
        """
        key = tuple(v.as_pair() for v in vertices)
        found = _INTERNED.get(key)
        if found is None:
            found = cls.__new__(cls)
            found._seed_sorted(vertices, key)
            _INTERNED[key] = found
        return found

    def _seed_sorted(
        self,
        vertices: Sequence[Vertex],
        pairs: tuple[tuple[int, Hashable], ...],
    ) -> None:
        """Initialize a frozen table from pre-sorted vertices (no re-intern)."""
        self._pairs = list(pairs)
        self._vertices = list(vertices)
        self._index = {v: i for i, v in enumerate(vertices)}
        self._sorted = True
        self._frozen = True
        self._table_id = next(_TABLE_IDS)

    # ------------------------------------------------------------------
    # Growth and lookup
    # ------------------------------------------------------------------
    def add(self, vertex: Vertex) -> int:
        """Intern a vertex, returning its (new or existing) index."""
        found = self._index.get(vertex)
        if found is None:
            if self._frozen:
                raise ReproError(
                    "cannot add vertices to an interned (frozen) table"
                )
            found = len(self._pairs)
            self._index[vertex] = found
            self._pairs.append(vertex.as_pair())
            self._vertices.append(vertex)
            self._sorted = None
        return found

    def index_of(self, vertex: Vertex) -> int:
        """The index of an interned vertex (:class:`KeyError` if absent)."""
        return self._index[vertex]

    def vertex_at(self, index: int) -> Vertex:
        """The vertex interned at ``index``."""
        return self._vertices[index]

    @property
    def pairs(self) -> tuple[tuple[int, Hashable], ...]:
        """The interned ``(color, value)`` pairs, in index order."""
        return tuple(self._pairs)

    @property
    def vertices(self) -> tuple[Vertex, ...]:
        """The interned vertices, in index order."""
        return tuple(self._vertices)

    @property
    def table_id(self) -> int:
        """A process-unique id (monotone, never reused) for memo keys."""
        return self._table_id

    @property
    def is_interned(self) -> bool:
        """``True`` for frozen tables from the process-wide registry."""
        return self._frozen

    @property
    def is_sorted(self) -> bool:
        """``True`` iff the entries are in canonical ``_sort_key`` order.

        Computed once and cached (growing the table re-checks); sorted
        tables are what makes narrowing and wire encoding order-stable.
        """
        if self._sorted is None:
            keys = [v._sort_key() for v in self._vertices]
            self._sorted = all(a <= b for a, b in zip(keys, keys[1:]))
        return self._sorted

    @property
    def full_mask(self) -> int:
        """The mask with every table bit set."""
        mask = (1 << len(self._pairs)) - 1
        if _sanitize.ACTIVE:
            return _sanitize.tag(self, mask)
        return mask

    def __len__(self) -> int:
        return len(self._pairs)

    def __repr__(self) -> str:
        return (
            f"VertexTable(id={self._table_id}, entries={len(self._pairs)}, "
            f"interned={self._frozen})"
        )

    def __reduce__(self) -> tuple:
        # Table ids are process-local and never cross the wire, but the
        # table's *flavour* round-trips: frozen tables re-intern on the
        # receiving side (joining that process's weak registry), growable
        # tables rebuild as plain growable tables.
        if self._frozen:
            return (VertexTable.interned, (self.pairs,))
        return (VertexTable, (self.pairs,))

    # ------------------------------------------------------------------
    # Masks
    # ------------------------------------------------------------------
    def encode_mask(self, simplex: Simplex) -> int:
        """The bitmask of a simplex over this table — *strict*.

        Raises
        ------
        ChromaticityError
            If some vertex of the simplex is not interned here.  Strict
            encoding is what keeps masks canonical: silently interning
            (the historical behaviour) made masks depend on encounter
            order, poisoning any cache keyed by them.  Table-building
            call sites use :meth:`encode_mask_interning` instead.
        """
        index = self._index
        mask = 0
        vertex = None
        try:
            for vertex in simplex.vertices:
                mask |= 1 << index[vertex]
        except KeyError:
            raise ChromaticityError(
                f"vertex {vertex!r} is not interned in this table; use "
                "encode_mask_interning on the table-building path"
            ) from None
        if _sanitize.ACTIVE:
            return _sanitize.tag(self, mask)
        return mask

    def encode_mask_interning(self, simplex: Simplex) -> int:
        """The bitmask of a simplex, interning unknown vertices.

        This is the table-*building* primitive (growable memo tables);
        masks from different interning orders are not comparable, so the
        result is only meaningful against this very table instance.
        """
        mask = 0
        for vertex in simplex.vertices:
            mask |= 1 << self.add(vertex)
        if _sanitize.ACTIVE:
            return _sanitize.tag(self, mask)
        return mask

    def colors_mask(self, colors: Iterable[int]) -> int:
        """The mask of every table vertex whose color is in ``colors``."""
        keep = set(colors)
        mask = 0
        for index, vertex in enumerate(self._vertices):
            if vertex.color in keep:
                mask |= 1 << index
        if _sanitize.ACTIVE:
            return _sanitize.tag(self, mask)
        return mask

    def decode_mask(self, mask: int) -> Simplex:
        """Rebuild the simplex whose vertices are the set bits of ``mask``."""
        if _sanitize.ACTIVE:
            _sanitize.check_decode(self, mask, "decode_mask")
        if mask <= 0:
            raise ChromaticityError(
                f"simplex bitmask must be positive, got {mask}"
            )
        vertices = []
        index = 0
        while mask:
            if mask & 1:
                if index >= len(self._vertices):
                    raise ChromaticityError(
                        f"bitmask bit {index} exceeds the vertex table "
                        f"({len(self._vertices)} entries)"
                    )
                vertices.append(self._vertices[index])
            mask >>= 1
            index += 1
        return Simplex(vertices)

    def decode_mask_trusted(self, mask: int) -> Simplex:
        """Rebuild a simplex from a mask known to be in range.

        Masks of a sorted table list vertices in color order whenever
        the simplex is chromatic, so the :class:`Simplex` can be built
        through the trusted color-sorted path without re-validating.
        Non-chromatic bit sets (forged facets) fall back to the checking
        constructor, which raises exactly as eager materialization did.
        """
        if _sanitize.ACTIVE:
            _sanitize.check_decode(self, mask, "decode_mask_trusted")
        vertices = []
        m = mask
        while m:
            low = m & -m
            vertices.append(self._vertices[low.bit_length() - 1])
            m ^= low
        previous: int | None = None
        for vertex in vertices:
            if previous is not None and vertex.color <= previous:
                return Simplex(vertices)
            previous = vertex.color
        return Simplex._from_color_sorted(tuple(vertices))
