"""Chromatic simplices.

A simplex of a chromatic complex is a non-empty set of vertices carrying
pairwise distinct colors (Appendix A.1).  :class:`Simplex` is immutable and
hashable; its vertices are stored sorted by color, so iteration and ``repr``
are deterministic.
"""

from __future__ import annotations

from itertools import combinations
from typing import Hashable, Iterable, Iterator, Mapping, Union

from repro.errors import ChromaticityError
from repro.topology.vertex import Vertex

__all__ = ["Simplex"]

VertexLike = Union[Vertex, tuple[int, Hashable]]


def _as_vertex(entry: VertexLike) -> Vertex:
    if isinstance(entry, Vertex):
        return entry
    color, value = entry
    return Vertex(color, value)


class Simplex:
    """An immutable chromatic simplex.

    Parameters
    ----------
    vertices:
        A non-empty iterable of :class:`Vertex` (or ``(color, value)``
        pairs).  Colors must be pairwise distinct.

    Notes
    -----
    The *dimension* of a simplex is ``len(simplex) - 1``; a single vertex is
    a 0-dimensional simplex.  Faces of a simplex are its non-empty subsets.
    """

    __slots__ = ("_vertices", "_hash", "_skey")

    def __init__(self, vertices: Iterable[VertexLike]):
        resolved = [_as_vertex(entry) for entry in vertices]
        if not resolved:
            raise ChromaticityError("a simplex must contain at least one vertex")
        # The color map is a construction-time scratch value only: storing
        # it alongside the sorted tuple doubled the per-simplex footprint
        # at 13^t facet counts, and every color lookup on a ≤n-vertex
        # simplex is at least as fast as a linear scan of the tuple.
        by_color: dict[int, Vertex] = {}
        for vertex in resolved:
            if vertex.color in by_color:
                if by_color[vertex.color] != vertex:
                    raise ChromaticityError(
                        f"two distinct vertices with color {vertex.color} in "
                        f"the same simplex: {by_color[vertex.color]!r} and "
                        f"{vertex!r}"
                    )
            else:
                by_color[vertex.color] = vertex
        ordered = tuple(sorted(by_color.values(), key=lambda v: v.color))
        self._vertices = ordered
        self._hash = hash(ordered)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_mapping(cls, mapping: Mapping[int, Hashable]) -> "Simplex":
        """Build a simplex from a ``{color: value}`` mapping."""
        return cls(Vertex(color, value) for color, value in mapping.items())

    @classmethod
    def single(cls, color: int, value: Hashable) -> "Simplex":
        """Build the 0-dimensional simplex ``{(color, value)}``."""
        return cls([Vertex(color, value)])

    @classmethod
    def _from_color_sorted(
        cls, ordered: tuple[Vertex, ...]
    ) -> "Simplex":
        """Trusted fast path: wrap a color-sorted chromatic vertex tuple.

        Skips the chromaticity pass of ``__init__``.  The caller promises
        the tuple is non-empty, sorted by color, and free of repeated
        colors — the bitmask core's lazy materialization produces exactly
        those (set bits of a canonical vertex table enumerate vertices in
        color order).
        """
        self = object.__new__(cls)
        self._vertices = ordered
        self._hash = hash(ordered)
        return self

    # ------------------------------------------------------------------
    # Basic structure
    # ------------------------------------------------------------------
    @property
    def vertices(self) -> tuple[Vertex, ...]:
        """The vertices of the simplex, sorted by color."""
        return self._vertices

    @property
    def ids(self) -> frozenset:
        """The set ``ID(σ)`` of colors appearing in the simplex."""
        return frozenset(v.color for v in self._vertices)

    @property
    def dim(self) -> int:
        """The dimension ``|σ| - 1``."""
        return len(self._vertices) - 1

    def value_of(self, color: int) -> Hashable:
        """Return the value carried by the vertex of the given color."""
        return self.vertex_of(color).value

    def vertex_of(self, color: int) -> Vertex:
        """Return the vertex of the given color."""
        for vertex in self._vertices:
            if vertex.color == color:
                return vertex
        raise KeyError(color)

    def as_mapping(self) -> dict[int, Hashable]:
        """Return the simplex as a ``{color: value}`` dictionary."""
        return {v.color: v.value for v in self._vertices}

    def __len__(self) -> int:
        return len(self._vertices)

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._vertices)

    def __contains__(self, vertex: object) -> bool:
        if not isinstance(vertex, Vertex):
            return False
        for candidate in self._vertices:
            if candidate.color == vertex.color:
                return candidate == vertex
        return False

    # ------------------------------------------------------------------
    # Faces and projections
    # ------------------------------------------------------------------
    def faces(self, include_self: bool = True) -> Iterator["Simplex"]:
        """Yield every non-empty face of the simplex.

        Faces are yielded by decreasing dimension; the simplex itself comes
        first unless ``include_self`` is false.
        """
        top = len(self._vertices)
        start = top if include_self else top - 1
        for size in range(start, 0, -1):
            for subset in combinations(self._vertices, size):
                yield Simplex(subset)

    def proper_faces(self) -> Iterator["Simplex"]:
        """Yield every face of dimension strictly less than ``self.dim``."""
        return self.faces(include_self=False)

    def proj(self, colors: Iterable[int]) -> "Simplex":
        """The projection ``proj_J(σ)`` onto the given non-empty color set.

        Raises
        ------
        ChromaticityError
            If some requested color does not appear in the simplex, or the
            requested set is empty.
        """
        keep = frozenset(colors)
        if not keep:
            raise ChromaticityError("cannot project a simplex on zero colors")
        missing = keep - self.ids
        if missing:
            raise ChromaticityError(
                f"projection colors {sorted(missing)} absent from simplex "
                f"with colors {sorted(self.ids)}"
            )
        return Simplex(v for v in self._vertices if v.color in keep)

    def is_face_of(self, other: "Simplex") -> bool:
        """``True`` iff every vertex of this simplex belongs to ``other``."""
        return all(vertex in other for vertex in self._vertices)

    def union(self, other: "Simplex") -> "Simplex":
        """The chromatic union of two compatible simplices.

        Raises
        ------
        ChromaticityError
            If the simplices disagree on the value of a shared color.
        """
        return Simplex(self._vertices + other._vertices)

    def with_vertex(self, vertex: Vertex) -> "Simplex":
        """Return the simplex extended with an additional vertex."""
        return Simplex(self._vertices + (vertex,))

    # ------------------------------------------------------------------
    # Value-object plumbing
    # ------------------------------------------------------------------
    def _sort_key(self) -> tuple:
        # Cached lazily; the slot stays unset until first use so forged
        # test objects built via ``object.__new__`` keep working.
        try:
            return self._skey
        except AttributeError:
            key = tuple(v._sort_key() for v in self._vertices)
            self._skey = key
            return key

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Simplex):
            return NotImplemented
        return self._vertices == other._vertices

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        body = ", ".join(f"({v.color}, {v.value!r})" for v in self._vertices)
        return f"Simplex[{body}]"
