"""Batch bitwise kernels over packed facet-mask arrays.

The bitmask core (:mod:`repro.topology.table`,
:mod:`repro.topology.complex`) made *single* simplex operations integer
ops; this module adds the *sweep* layer: kernels that take a packed
array of facet masks (a ``list[int]`` / ``Sequence[int]`` over one
:class:`~repro.topology.table.VertexTable`) and process the whole batch
in tight loops of shifts, ANDs, and popcounts — no ``Simplex`` or
``Vertex`` objects anywhere inside.  Connectivity, structural
invariants, and the solver's consistency probes are all expressible as
compositions of these kernels, which is what makes them "fast by
construction" (ROADMAP item 1's remaining headroom).

Conventions shared by every kernel:

* a *mask array* is a sequence of facet masks over one table; kernels
  never mix arrays from different tables (the RPR006 provenance
  contract — under ``REPRO_SANITIZE=1`` the tagged masks themselves
  enforce it);
* *vertex graphs* are ``list[int]`` adjacency masks indexed by table
  bit: ``adjacency[i]`` has bit ``j`` set iff vertices ``i`` and ``j``
  share a simplex.  *Facet graphs* use the same shape indexed by
  position in the mask array;
* all outputs are deterministic functions of the input order: loops run
  over sequences and bit scans ascend from the low bit, so no set
  iteration order ever leaks (the RPR007 concern);
* each kernel records one build on a process-wide telemetry counter
  (:func:`repro.instrumentation.counter`), so cache reports and span
  metrics show sweep counts next to the cache hit rates.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from repro.instrumentation import counter
from repro.topology.table import popcount

__all__ = [
    "popcount_sweep",
    "max_popcount",
    "filter_subsets",
    "filter_supersets",
    "filter_intersecting",
    "pairwise_intersections",
    "pairwise_unions",
    "iter_ridges",
    "ridge_table",
    "vertex_adjacency",
    "facet_adjacency",
    "component_labels",
    "component_count",
    "mask_components",
    "bfs_parents",
]

_SWEEPS = counter("kernels.popcount-sweeps")
_FILTERS = counter("kernels.containment-filters")
_PRODUCTS = counter("kernels.pairwise-products")
_RIDGE_TABLES = counter("kernels.ridge-tables")
_ADJACENCY_BUILDS = counter("kernels.adjacency-builds")
_COMPONENT_SWEEPS = counter("kernels.component-sweeps")
_BFS_SWEEPS = counter("kernels.bfs-sweeps")


# ----------------------------------------------------------------------
# Popcount sweeps
# ----------------------------------------------------------------------
def popcount_sweep(masks: Sequence[int]) -> list[int]:
    """Per-mask set-bit counts (simplex cardinalities) for a batch."""
    _SWEEPS.built()
    return [popcount(mask) for mask in masks]


def max_popcount(masks: Sequence[int]) -> int:
    """The largest set-bit count in the batch; ``0`` for an empty batch."""
    _SWEEPS.built()
    best = 0
    for mask in masks:
        bits = popcount(mask)
        if bits > best:
            best = bits
    return best


# ----------------------------------------------------------------------
# Batched containment filters
# ----------------------------------------------------------------------
def filter_subsets(masks: Sequence[int], super_mask: int) -> list[int]:
    """The masks that are subsets of ``super_mask`` (``m & sup == m``)."""
    _FILTERS.built()
    return [mask for mask in masks if mask & super_mask == mask]


def filter_supersets(masks: Sequence[int], sub_mask: int) -> list[int]:
    """The masks that contain ``sub_mask`` (``m & sub == sub``)."""
    _FILTERS.built()
    return [mask for mask in masks if mask & sub_mask == sub_mask]


def filter_intersecting(masks: Sequence[int], probe: int) -> list[int]:
    """The masks sharing at least one bit with ``probe``."""
    _FILTERS.built()
    return [mask for mask in masks if mask & probe]


# ----------------------------------------------------------------------
# Pairwise products
# ----------------------------------------------------------------------
def pairwise_intersections(
    left: Sequence[int], right: Sequence[int]
) -> list[int]:
    """All non-empty pairwise ANDs between two batches.

    The mask-level core of complex intersection: candidate common faces
    are intersections of facet pairs.  Duplicates are kept (callers
    dedup while pruning); empty intersections are dropped.
    """
    _PRODUCTS.built()
    found = []
    for l_mask in left:
        for r_mask in right:
            shared = l_mask & r_mask
            if shared:
                found.append(shared)
    return found


def pairwise_unions(
    left: Sequence[int], right: Sequence[int]
) -> list[int]:
    """All pairwise ORs between two batches (the join's facet products)."""
    _PRODUCTS.built()
    return [l_mask | r_mask for l_mask in left for r_mask in right]


# ----------------------------------------------------------------------
# Ridges and adjacency
# ----------------------------------------------------------------------
def iter_ridges(mask: int) -> Iterator[int]:
    """Yield the ridges of a facet mask via bit-clear iteration.

    A ridge of a ``k``-bit facet is the facet with one bit cleared; the
    walk peels the low bit each step, so ridges come out in ascending
    cleared-bit order.  Masks with fewer than two bits yield nothing:
    the only candidate would be the empty face, which is not a simplex.
    """
    if popcount(mask) < 2:
        return
    remaining = mask
    while remaining:
        low = remaining & -remaining
        yield mask ^ low
        remaining ^= low


def ridge_table(masks: Sequence[int]) -> dict[int, list[int]]:
    """Map each ridge mask to the positions of the facets containing it.

    Positions index into ``masks``.  Insertion order (and the order of
    each position list) is fixed by the input order and the ascending
    bit scan, so iteration over the table is deterministic.
    """
    _RIDGE_TABLES.built()
    table: dict[int, list[int]] = {}
    for position, mask in enumerate(masks):
        if popcount(mask) < 2:
            continue
        remaining = mask
        while remaining:
            low = remaining & -remaining
            remaining ^= low
            ridge = mask ^ low
            found = table.get(ridge)
            if found is None:
                table[ridge] = [position]
            else:
                found.append(position)
    return table


def vertex_adjacency(masks: Sequence[int], size: int) -> list[int]:
    """1-skeleton adjacency masks over ``size`` table bits.

    ``adjacency[i]`` has bit ``j`` set iff some mask contains both bits
    — i.e. the vertices share a simplex of dimension ≥ 1.  Single-bit
    masks contribute nothing (a vertex is not adjacent to itself).
    """
    _ADJACENCY_BUILDS.built()
    adjacency = [0] * size
    for mask in masks:
        if popcount(mask) < 2:
            continue
        remaining = mask
        while remaining:
            low = remaining & -remaining
            remaining ^= low
            adjacency[low.bit_length() - 1] |= mask ^ low
    return adjacency


def facet_adjacency(
    masks: Sequence[int],
    ridges: Optional[dict[int, list[int]]] = None,
) -> list[int]:
    """Facet-graph adjacency masks: facets sharing a ridge are adjacent.

    ``adjacency[i]`` is a bitmask over *positions* in ``masks``.  An
    already-computed :func:`ridge_table` can be passed to avoid
    rebuilding it.
    """
    _ADJACENCY_BUILDS.built()
    if ridges is None:
        ridges = ridge_table(masks)
    adjacency = [0] * len(masks)
    for positions in ridges.values():
        if len(positions) < 2:
            continue
        group = 0
        for position in positions:
            group |= 1 << position
        for position in positions:
            adjacency[position] |= group & ~(1 << position)
    return adjacency


# ----------------------------------------------------------------------
# Union-find component labeling
# ----------------------------------------------------------------------
def component_labels(adjacency: Sequence[int]) -> list[int]:
    """Connected-component labels for a mask graph, by union-find.

    ``labels[i]`` is the smallest node index in ``i``'s component, so
    labels are canonical: equal graphs get equal label arrays no matter
    how the unions interleaved.
    """
    _COMPONENT_SWEEPS.built()
    parent = list(range(len(adjacency)))

    def find(node: int) -> int:
        root = node
        while parent[root] != root:
            root = parent[root]
        while parent[node] != root:
            parent[node], node = root, parent[node]
        return root

    for node, neighbors in enumerate(adjacency):
        remaining = neighbors
        while remaining:
            low = remaining & -remaining
            remaining ^= low
            left, right = find(node), find(low.bit_length() - 1)
            if left != right:
                # Union by smaller index keeps roots canonical as we go.
                if left < right:
                    parent[right] = left
                else:
                    parent[left] = right
    return [find(node) for node in range(len(adjacency))]


def component_count(adjacency: Sequence[int]) -> int:
    """The number of connected components of a mask graph."""
    labels = component_labels(adjacency)
    return sum(
        1 for node, label in enumerate(labels) if node == label
    )


def mask_components(masks: Sequence[int], size: int) -> list[int]:
    """Vertex-component masks of a facet family, smallest bit first.

    Unions the bits of every facet mask (a simplex connects all its
    vertices) and returns one mask per component, covering exactly the
    bits that appear in some facet.  Ordering by lowest set bit makes
    the result deterministic — on a canonical table, "lowest bit" is
    "smallest vertex".
    """
    _COMPONENT_SWEEPS.built()
    parent = list(range(size))

    def find(node: int) -> int:
        root = node
        while parent[root] != root:
            root = parent[root]
        while parent[node] != root:
            parent[node], node = root, parent[node]
        return root

    used = 0
    for mask in masks:
        used |= mask
        remaining = mask & (mask - 1)  # all but the low bit
        if not remaining:
            continue
        anchor = find((mask & -mask).bit_length() - 1)
        while remaining:
            low = remaining & -remaining
            remaining ^= low
            root = find(low.bit_length() - 1)
            if root != anchor:
                if root < anchor:
                    parent[anchor] = root
                    anchor = root
                else:
                    parent[root] = anchor
    components: dict[int, int] = {}
    bit = 0
    scan = used
    while scan:
        if scan & 1:
            root = find(bit)
            components[root] = components.get(root, 0) | (1 << bit)
        scan >>= 1
        bit += 1
    # Roots are the smallest bit of their component, so sorting by root
    # index is sorting by lowest set bit.
    return [components[root] for root in sorted(components)]


# ----------------------------------------------------------------------
# Mask-graph BFS
# ----------------------------------------------------------------------
def bfs_parents(
    adjacency: Sequence[int], start: int, goal: Optional[int] = None
) -> list[int]:
    """BFS parent indices over a mask graph, from ``start``.

    ``parents[i]`` is the predecessor of node ``i`` on a shortest path
    from ``start`` (``parents[start] == start``); unreached nodes hold
    ``-1``.  Frontiers are masks and each frontier is scanned in
    ascending bit order, so ties break deterministically toward smaller
    indices.  Passing ``goal`` stops the sweep as soon as that node is
    reached.
    """
    _BFS_SWEEPS.built()
    parents = [-1] * len(adjacency)
    parents[start] = start
    seen = 1 << start
    frontier = seen
    while frontier:
        next_frontier = 0
        remaining = frontier
        while remaining:
            low = remaining & -remaining
            remaining ^= low
            node = low.bit_length() - 1
            fresh = adjacency[node] & ~seen
            seen |= fresh
            next_frontier |= fresh
            while fresh:
                low_fresh = fresh & -fresh
                fresh ^= low_fresh
                parents[low_fresh.bit_length() - 1] = node
        if goal is not None and (seen >> goal) & 1:
            break
        frontier = next_frontier
    return parents
