"""Isomorphisms between chromatic complexes.

Two kinds of isomorphism matter in the paper:

* the *canonical isomorphism* ``χ`` of Eq. (1): for two input simplices
  ``σ = {(i, x_i)}`` and ``σ' = {(i, x'_i)}`` on the same colors, the
  one-round complexes ``P^(1)(σ)`` and ``P^(1)(σ')`` are isomorphic via the
  vertex relabeling ``(i, {(j, x_j) : j ∈ J_i}) ↦ (i, {(j, x'_j) : j ∈ J_i})``
  — and the same holds round after round.  :func:`canonical_isomorphism`
  implements the relabeling generically by substituting base values inside
  nested views.

* generic color-preserving complex isomorphism, used by tests to compare
  complexes up to value renaming (:func:`find_color_preserving_isomorphism`).
"""

from __future__ import annotations

from typing import Hashable, Mapping, Optional

from repro.errors import ChromaticityError
from repro.topology.complex import SimplicialComplex
from repro.topology.maps import SimplicialMap
from repro.topology.simplex import Simplex
from repro.topology.vertex import Vertex
from repro.topology.views import View

__all__ = [
    "relabel_value",
    "relabel_vertex",
    "relabel_complex",
    "canonical_isomorphism",
    "find_color_preserving_isomorphism",
]


def relabel_value(
    value: Hashable, base_values: Mapping[int, Hashable]
) -> Hashable:
    """Substitute base input values inside a (possibly nested) view value.

    ``base_values`` maps each color to its new base value.  Plain values at
    the bottom of the nesting are replaced by the new value of their carrying
    color, which is threaded through the recursion by the enclosing
    :class:`View`.  Tuples (used for augmented models' ``(b, view)`` values)
    are relabeled component-wise, leaving non-view components untouched.
    """
    if isinstance(value, View):
        return View(
            (color, _relabel_entry(color, entry, base_values))
            for color, entry in value
        )
    if isinstance(value, tuple):
        return tuple(relabel_value(part, base_values) for part in value)
    return value


def _relabel_entry(
    color: int, entry: Hashable, base_values: Mapping[int, Hashable]
) -> Hashable:
    """Relabel a single ``(color, entry)`` pair inside a view."""
    if isinstance(entry, (View, tuple)):
        return relabel_value(entry, base_values)
    # Base of the recursion: `entry` is the raw input of `color`.
    if color not in base_values:
        raise ChromaticityError(
            f"no replacement value provided for color {color}"
        )
    return base_values[color]


def relabel_vertex(
    vertex: Vertex, base_values: Mapping[int, Hashable]
) -> Vertex:
    """Apply :func:`relabel_value` to a protocol-complex vertex."""
    return Vertex(vertex.color, relabel_value(vertex.value, base_values))


def relabel_complex(
    complex_: SimplicialComplex, base_values: Mapping[int, Hashable]
) -> SimplicialComplex:
    """Relabel every vertex of a protocol complex with new base inputs."""
    return SimplicialComplex(
        Simplex(
            relabel_vertex(vertex, base_values) for vertex in facet.vertices
        )
        for facet in complex_.facets
    )


def canonical_isomorphism(
    source: SimplicialComplex,
    sigma: Simplex,
    sigma_prime: Simplex,
) -> SimplicialMap:
    """The canonical isomorphism ``χ : P^(1)(σ) → P^(1)(σ')`` of Eq. (1).

    Parameters
    ----------
    source:
        The protocol complex obtained from input simplex ``sigma``.
    sigma, sigma_prime:
        Input simplices on the same color set.  Vertex values of ``source``
        are rewritten by substituting ``σ'``'s inputs for ``σ``'s.

    Returns
    -------
    SimplicialMap
        The relabeling map, whose target is the relabeled complex.
    """
    if sigma.ids != sigma_prime.ids:
        raise ChromaticityError(
            "canonical isomorphism requires input simplices on the same "
            f"colors, got {sorted(sigma.ids)} and {sorted(sigma_prime.ids)}"
        )
    replacements = sigma_prime.as_mapping()
    target = relabel_complex(source, replacements)
    vertex_map = {
        vertex: relabel_vertex(vertex, replacements)
        for vertex in source.vertices
    }
    return SimplicialMap(source, target, vertex_map, check=False)


def find_color_preserving_isomorphism(
    left: SimplicialComplex, right: SimplicialComplex
) -> Optional[dict[Vertex, Vertex]]:
    """Search for a color-preserving isomorphism between two complexes.

    Returns a vertex bijection realizing the isomorphism, or ``None`` when
    the complexes are not isomorphic.  Exhaustive backtracking — intended for
    the small complexes this library manipulates (tests and figures).
    """
    if left.f_vector() != right.f_vector():
        return None
    left_vertices = left.sorted_vertices()
    right_by_color: dict[int, tuple[Vertex, ...]] = {}
    for vertex in right.vertices:
        right_by_color.setdefault(vertex.color, ())
        right_by_color[vertex.color] += (vertex,)
    if sorted(v.color for v in left_vertices) != sorted(
        v.color for v in right.vertices
    ):
        return None

    left_faces = left.simplices
    right_faces = right.simplices
    assignment: dict[Vertex, Vertex] = {}
    used: set = set()

    # Degree-based compatibility pruning: a vertex can only map to a vertex
    # contained in the same number of simplices.
    def degree(vertex: Vertex, faces) -> int:
        return sum(1 for s in faces if vertex in s)

    left_degree = {v: degree(v, left_faces) for v in left.vertices}
    right_degree = {v: degree(v, right_faces) for v in right.vertices}

    def consistent(vertex: Vertex, image: Vertex) -> bool:
        for simplex in left_faces:
            if vertex not in simplex:
                continue
            mapped = [
                assignment[v] for v in simplex.vertices if v in assignment
            ]
            if vertex not in assignment:
                mapped.append(image)
            if len(mapped) < 2:
                continue
            try:
                candidate = Simplex(mapped)
            except ChromaticityError:
                return False
            if candidate not in right_faces:
                return False
        return True

    def backtrack(index: int) -> bool:
        if index == len(left_vertices):
            return True
        vertex = left_vertices[index]
        for image in right_by_color.get(vertex.color, ()):
            if image in used:
                continue
            if left_degree[vertex] != right_degree[image]:
                continue
            if not consistent(vertex, image):
                continue
            assignment[vertex] = image
            used.add(image)
            if backtrack(index + 1):
                return True
            del assignment[vertex]
            used.discard(image)
        return False

    if backtrack(0):
        return dict(assignment)
    return None
