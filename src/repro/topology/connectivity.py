"""Connectivity of chromatic complexes.

The consensus impossibility proof (Corollary 1) walks a *path* of edges in
the one-round protocol complex ``P^(1)(τ)`` and uses the fact that a
simplicial map sends connected complexes to connected complexes.  This module
provides the 1-skeleton graph of a complex, connected components, and
shortest paths, implemented with plain BFS (no third-party dependency) plus
an optional networkx export for analysis.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from repro.topology.complex import SimplicialComplex
from repro.topology.vertex import Vertex

__all__ = [
    "one_skeleton_adjacency",
    "connected_components",
    "is_connected",
    "shortest_path",
    "to_networkx",
]


def one_skeleton_adjacency(
    complex_: SimplicialComplex,
) -> dict[Vertex, set[Vertex]]:
    """The adjacency structure of the complex's 1-skeleton.

    Two vertices are adjacent iff they belong to a common simplex (of any
    dimension ≥ 1).
    """
    adjacency: dict[Vertex, set[Vertex]] = {
        vertex: set() for vertex in complex_.vertices
    }
    for facet in complex_.facets:
        vertices = facet.vertices
        for index, left in enumerate(vertices):
            for right in vertices[index + 1 :]:
                adjacency[left].add(right)
                adjacency[right].add(left)
    return adjacency


def connected_components(
    complex_: SimplicialComplex,
) -> list[frozenset[Vertex]]:
    """The connected components of the 1-skeleton, as vertex sets.

    Components are returned in deterministic order (by their smallest
    vertex).
    """
    adjacency = one_skeleton_adjacency(complex_)
    remaining = set(adjacency)
    components: list[frozenset[Vertex]] = []
    while remaining:
        seed = min(remaining, key=lambda v: v._sort_key())
        seen = {seed}
        frontier = deque([seed])
        while frontier:
            current = frontier.popleft()
            for neighbor in adjacency[current]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        components.append(frozenset(seen))
        remaining -= seen
    components.sort(
        key=lambda comp: min(v._sort_key() for v in comp)
    )
    return components


def is_connected(complex_: SimplicialComplex) -> bool:
    """``True`` iff the complex is non-empty and path-connected."""
    if complex_.is_empty():
        return False
    return len(connected_components(complex_)) == 1


def shortest_path(
    complex_: SimplicialComplex, start: Vertex, goal: Vertex
) -> Optional[list[Vertex]]:
    """A shortest vertex path between two vertices, or ``None``.

    The path includes both endpoints; a vertex connected to itself yields the
    singleton path.
    """
    if start not in complex_.vertices or goal not in complex_.vertices:
        return None
    if start == goal:
        return [start]
    adjacency = one_skeleton_adjacency(complex_)
    parents: dict[Vertex, Vertex] = {}
    frontier = deque([start])
    seen = {start}
    while frontier:
        current = frontier.popleft()
        for neighbor in sorted(
            adjacency[current], key=lambda v: v._sort_key()
        ):
            if neighbor in seen:
                continue
            parents[neighbor] = current
            if neighbor == goal:
                path = [goal]
                while path[-1] != start:
                    path.append(parents[path[-1]])
                path.reverse()
                return path
            seen.add(neighbor)
            frontier.append(neighbor)
    return None


def to_networkx(complex_: SimplicialComplex) -> Any:
    """Export the 1-skeleton as a :class:`networkx.Graph` (optional dep).

    Typed ``Any`` because networkx is an optional dependency: the
    annotation cannot name a class of a package that may be absent.
    """
    import networkx as nx

    graph = nx.Graph()
    graph.add_nodes_from(complex_.vertices)
    for vertex, neighbors in one_skeleton_adjacency(complex_).items():
        for neighbor in neighbors:
            graph.add_edge(vertex, neighbor)
    return graph
