"""Connectivity of chromatic complexes.

The consensus impossibility proof (Corollary 1) walks a *path* of edges in
the one-round protocol complex ``P^(1)(τ)`` and uses the fact that a
simplicial map sends connected complexes to connected complexes.  This module
provides the 1-skeleton graph of a complex, connected components, and
shortest paths.

Everything runs mask-native on the complex's ``(table, facet masks)``
index through the batch kernels of :mod:`repro.topology.kernels`:
adjacency is a ``list[int]`` of per-bit neighbor masks, components come
from a union-find over table bits, and shortest paths are a BFS whose
frontiers are masks.  ``Vertex`` objects only appear at the API
boundary, and every result is ordered by table index — the table lists
the vertices in canonical sort order, so outputs are deterministic by
construction rather than by re-sorting set-iteration output.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.topology.complex import SimplicialComplex
from repro.topology.kernels import (
    bfs_parents,
    mask_components,
    vertex_adjacency,
)
from repro.topology.table import iter_bits
from repro.topology.vertex import Vertex

__all__ = [
    "one_skeleton_adjacency",
    "connected_components",
    "is_connected",
    "shortest_path",
    "to_networkx",
]


def one_skeleton_adjacency(
    complex_: SimplicialComplex,
) -> dict[Vertex, set[Vertex]]:
    """The adjacency structure of the complex's 1-skeleton.

    Two vertices are adjacent iff they belong to a common simplex (of any
    dimension ≥ 1).  Keys appear in canonical vertex order (the table's
    index order); isolated vertices map to an empty set.
    """
    table, masks = complex_._ensure_index()
    adjacency = vertex_adjacency(masks, len(table))
    vertex_at = table.vertex_at
    return {
        vertex_at(index): {
            vertex_at(neighbor) for neighbor in iter_bits(neighbors)
        }
        for index, neighbors in enumerate(adjacency)
    }


def connected_components(
    complex_: SimplicialComplex,
) -> list[frozenset[Vertex]]:
    """The connected components of the 1-skeleton, as vertex sets.

    Components are returned in deterministic order (by their smallest
    vertex — the lowest set bit of the component mask on the canonical
    table).
    """
    table, masks = complex_._ensure_index()
    vertex_at = table.vertex_at
    return [
        frozenset(vertex_at(index) for index in iter_bits(component))
        for component in mask_components(masks, len(table))
    ]


def is_connected(complex_: SimplicialComplex) -> bool:
    """``True`` iff the complex is non-empty and path-connected."""
    if complex_.is_empty():
        return False
    table, masks = complex_._ensure_index()
    return len(mask_components(masks, len(table))) == 1


def shortest_path(
    complex_: SimplicialComplex, start: Vertex, goal: Vertex
) -> Optional[list[Vertex]]:
    """A shortest vertex path between two vertices, or ``None``.

    The path includes both endpoints; a vertex connected to itself yields the
    singleton path.  Ties between equally short paths break toward
    smaller table indices (= smaller vertices), deterministically.
    """
    table, masks = complex_._ensure_index()
    try:
        start_index = table.index_of(start)
        goal_index = table.index_of(goal)
    except KeyError:
        # Either endpoint is not a vertex of the complex at all.
        return None
    if start_index == goal_index:
        return [start]
    adjacency = vertex_adjacency(masks, len(table))
    parents = bfs_parents(adjacency, start_index, goal=goal_index)
    if parents[goal_index] < 0:
        return None
    indices = [goal_index]
    while indices[-1] != start_index:
        indices.append(parents[indices[-1]])
    indices.reverse()
    return [table.vertex_at(index) for index in indices]


def to_networkx(complex_: SimplicialComplex) -> Any:
    """Export the 1-skeleton as a :class:`networkx.Graph` (optional dep).

    Typed ``Any`` because networkx is an optional dependency: the
    annotation cannot name a class of a package that may be absent.
    """
    import networkx as nx

    graph = nx.Graph()
    table, masks = complex_._ensure_index()
    adjacency = vertex_adjacency(masks, len(table))
    vertex_at = table.vertex_at
    graph.add_nodes_from(table.vertices)
    for index, neighbors in enumerate(adjacency):
        for neighbor in iter_bits(neighbors):
            if neighbor > index:
                graph.add_edge(vertex_at(index), vertex_at(neighbor))
    return graph
