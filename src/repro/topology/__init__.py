"""Chromatic combinatorial topology substrate.

This subpackage implements the topological language of the paper
(Appendix A.1): chromatic simplicial complexes, chromatic simplicial maps,
carrier maps, the canonical isomorphism χ between one-round complexes
(Eq. (1)), and connectivity analysis of 1-skeletons.

Everything here is plain combinatorics over immutable value objects: a
*vertex* is a pair ``(color, value)``, a *simplex* is a set of vertices with
pairwise distinct colors, and a *complex* is a downward-closed family of
simplices represented by its facets.
"""

from repro.topology.vertex import Vertex, value_sort_key
from repro.topology.views import View
from repro.topology.simplex import Simplex
from repro.topology.complex import SimplicialComplex
from repro.topology.maps import SimplicialMap
from repro.topology.carrier import CarrierMap
from repro.topology.isomorphism import (
    canonical_isomorphism,
    find_color_preserving_isomorphism,
    relabel_complex,
)
from repro.topology.structure import (
    boundary_complex,
    is_pseudomanifold,
    join_complexes,
    ridge_incidence,
)
from repro.topology.connectivity import (
    connected_components,
    is_connected,
    one_skeleton_adjacency,
    shortest_path,
)
from repro.topology.table import (
    VertexTable,
    iter_bits,
    iter_submasks,
    popcount,
)
from repro.topology.wire import (
    WireComplex,
    WireSimplex,
    canonical_bytes,
    decode_complex,
    decode_simplex,
    digest_complex,
    digest_payload,
    encode_complex,
    encode_simplex,
)

__all__ = [
    "Vertex",
    "View",
    "Simplex",
    "SimplicialComplex",
    "SimplicialMap",
    "CarrierMap",
    "canonical_isomorphism",
    "find_color_preserving_isomorphism",
    "relabel_complex",
    "connected_components",
    "is_connected",
    "one_skeleton_adjacency",
    "shortest_path",
    "value_sort_key",
    "boundary_complex",
    "is_pseudomanifold",
    "join_complexes",
    "ridge_incidence",
    "VertexTable",
    "iter_bits",
    "iter_submasks",
    "popcount",
    "WireSimplex",
    "WireComplex",
    "encode_simplex",
    "decode_simplex",
    "encode_complex",
    "decode_complex",
    "canonical_bytes",
    "digest_payload",
    "digest_complex",
]
