"""Object-set reference implementations of the complex operations.

These are the pre-bitmask algorithms of
:class:`~repro.topology.complex.SimplicialComplex`, retained verbatim in
spirit: every function works on plain ``Simplex``/``Vertex`` sets with
``frozenset`` subset tests and materialized face families, exactly as the
seed implementation did.  They exist for three reasons:

* audit rule AUD013 cross-checks the bitmask core against them on every
  live complex of an experiment's target group;
* the property tests in ``tests/topology/test_bitmask_core.py`` assert
  bitmask results equal reference results on randomized complexes;
* ``benchmarks/bench_bitmask_core.py`` uses them as the before-side of
  the facet-pruning and containment-test timings.

Functions take and return facet families (iterables / frozensets of
:class:`Simplex`), not complexes, so they cannot accidentally call back
into the bitmask core they are meant to check.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable

from repro.topology.simplex import Simplex
from repro.topology.vertex import Vertex

__all__ = [
    "prune_reference",
    "faces_reference",
    "contains_reference",
    "proj_reference",
    "star_reference",
    "skeleton_reference",
    "union_reference",
    "intersection_reference",
    "f_vector_reference",
    "adjacency_reference",
    "components_reference",
    "shortest_path_reference",
    "ridge_incidence_reference",
    "is_pseudomanifold_reference",
    "boundary_reference",
    "join_reference",
]


def prune_reference(
    simplices: Iterable[Simplex],
) -> frozenset[Simplex]:
    """The inclusion-maximal entries of a family (seed pruning pass).

    Candidates are visited by decreasing dimension; subset tests run on
    vertex frozensets, confined to accepted facets sharing the
    candidate's rarest vertex — the exact seed ``__init__`` algorithm.
    """
    candidates = set(simplices)
    facets: list[Simplex] = []
    by_vertex: dict[Vertex, list[frozenset[Vertex]]] = {}
    for simplex in sorted(candidates, key=len, reverse=True):
        vertices = simplex.vertices
        buckets = []
        for vertex in vertices:
            bucket = by_vertex.get(vertex)
            if bucket is None:
                buckets = None
                break
            buckets.append(bucket)
        vertex_set = frozenset(vertices)
        if buckets is not None and any(
            vertex_set <= accepted
            for accepted in min(buckets, key=len)
        ):
            continue
        facets.append(simplex)
        for vertex in vertices:
            by_vertex.setdefault(vertex, []).append(vertex_set)
    return frozenset(facets)


def faces_reference(facets: Iterable[Simplex]) -> frozenset[Simplex]:
    """Every face of every facet, eagerly materialized (seed path)."""
    faces: set[Simplex] = set()
    for facet in facets:
        faces.update(facet.faces())
    return frozenset(faces)


def contains_reference(
    facets: Iterable[Simplex], candidate: Simplex
) -> bool:
    """Membership by full face-set materialization (seed ``__contains__``)."""
    return candidate in faces_reference(facets)


def proj_reference(
    facets: Iterable[Simplex], colors: Iterable[int]
) -> frozenset[Simplex]:
    """Facets of the projection onto a color set (seed ``proj``)."""
    keep = frozenset(colors)
    projected = []
    for facet in facets:
        shared = facet.ids & keep
        if shared:
            projected.append(facet.proj(shared))
    return prune_reference(projected)


def star_reference(
    facets: Iterable[Simplex], vertex: Vertex
) -> frozenset[Simplex]:
    """Facets of the star of a vertex (seed ``star``)."""
    return frozenset(f for f in facets if vertex in f)


def skeleton_reference(
    facets: Iterable[Simplex], k: int
) -> frozenset[Simplex]:
    """Facets of the ``k``-skeleton (seed ``skeleton``)."""
    if k < 0:
        return frozenset()
    pieces: list[Simplex] = []
    for facet in facets:
        if facet.dim <= k:
            pieces.append(facet)
        else:
            pieces.extend(
                Simplex(subset)
                for subset in combinations(facet.vertices, k + 1)
            )
    return prune_reference(pieces)


def union_reference(
    left: Iterable[Simplex], right: Iterable[Simplex]
) -> frozenset[Simplex]:
    """Facets of the union of two facet families (seed ``union``)."""
    return prune_reference(list(left) + list(right))


def intersection_reference(
    left: Iterable[Simplex], right: Iterable[Simplex]
) -> frozenset[Simplex]:
    """Facets of the intersection (seed ``intersection``).

    Materializes both full face sets and prunes their overlap — the
    seed's exact (and exactly as expensive) strategy.
    """
    shared = faces_reference(left) & faces_reference(right)
    return prune_reference(shared)


def f_vector_reference(
    facets: Iterable[Simplex],
) -> tuple[int, ...]:
    """The f-vector from the materialized face set (seed ``f_vector``)."""
    faces = faces_reference(facets)
    if not faces:
        return ()
    counts: dict[int, int] = {}
    for simplex in faces:
        counts[simplex.dim] = counts.get(simplex.dim, 0) + 1
    top = max(counts)
    return tuple(counts.get(d, 0) for d in range(top + 1))


# ----------------------------------------------------------------------
# Connectivity and structure oracles (pre-kernel algorithms)
# ----------------------------------------------------------------------
def adjacency_reference(
    facets: Iterable[Simplex],
) -> dict[Vertex, set[Vertex]]:
    """1-skeleton adjacency by nested vertex loops (seed algorithm)."""
    adjacency: dict[Vertex, set[Vertex]] = {}
    for facet in facets:
        vertices = facet.vertices
        for vertex in vertices:
            adjacency.setdefault(vertex, set())
        for index, left in enumerate(vertices):
            for right in vertices[index + 1 :]:
                adjacency[left].add(right)
                adjacency[right].add(left)
    return adjacency


def components_reference(
    facets: Iterable[Simplex],
) -> list[frozenset[Vertex]]:
    """Connected components by object-set BFS, smallest vertex first."""
    adjacency = adjacency_reference(facets)
    remaining = set(adjacency)
    components: list[frozenset[Vertex]] = []
    while remaining:
        seed = min(remaining, key=lambda v: v._sort_key())
        seen = {seed}
        frontier = [seed]
        while frontier:
            current = frontier.pop()
            for neighbor in adjacency[current]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        components.append(frozenset(seen))
        remaining -= seen
    components.sort(key=lambda comp: min(v._sort_key() for v in comp))
    return components


def shortest_path_reference(
    facets: Iterable[Simplex], start: Vertex, goal: Vertex
) -> "list[Vertex] | None":
    """A shortest vertex path by object-set BFS (seed algorithm)."""
    adjacency = adjacency_reference(facets)
    if start not in adjacency or goal not in adjacency:
        return None
    if start == goal:
        return [start]
    parents: dict[Vertex, Vertex] = {}
    frontier = [start]
    seen = {start}
    while frontier:
        next_frontier: list[Vertex] = []
        for current in frontier:
            neighbors = sorted(
                adjacency[current], key=lambda v: v._sort_key()
            )
            for neighbor in neighbors:
                if neighbor in seen:
                    continue
                seen.add(neighbor)
                parents[neighbor] = current
                if neighbor == goal:
                    path = [goal]
                    while path[-1] != start:
                        path.append(parents[path[-1]])
                    path.reverse()
                    return path
                next_frontier.append(neighbor)
        frontier = next_frontier
    return None


def ridge_incidence_reference(
    facets: Iterable[Simplex],
) -> dict[Simplex, list[Simplex]]:
    """Ridge → facets by materialized face enumeration (seed algorithm)."""
    incidence: dict[Simplex, list[Simplex]] = {}
    for facet in facets:
        if facet.dim < 1:
            continue
        for ridge in facet.faces(include_self=False):
            if ridge.dim == facet.dim - 1:
                incidence.setdefault(ridge, []).append(facet)
    return incidence


def is_pseudomanifold_reference(
    facets: Iterable[Simplex], require_connected: bool = True
) -> bool:
    """The pseudomanifold test over object sets (seed algorithm)."""
    pool = list(facets)
    if not pool:
        return False
    dims = {facet.dim for facet in pool}
    if len(dims) > 1:
        return False
    if dims == {0}:
        return len(pool) == 1 or not require_connected
    incidence = ridge_incidence_reference(pool)
    if any(len(found) > 2 for found in incidence.values()):
        return False
    if not require_connected:
        return True
    adjacency: dict[Simplex, set[Simplex]] = {
        facet: set() for facet in pool
    }
    for found in incidence.values():
        if len(found) == 2:
            left, right = found
            adjacency[left].add(right)
            adjacency[right].add(left)
    seen = {pool[0]}
    frontier = [pool[0]]
    while frontier:
        current = frontier.pop()
        for neighbor in adjacency[current]:
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append(neighbor)
    return len(seen) == len(pool)


def boundary_reference(
    facets: Iterable[Simplex],
) -> frozenset[Simplex]:
    """Facets of the boundary complex (ridges in exactly one facet)."""
    incidence = ridge_incidence_reference(facets)
    return prune_reference(
        ridge for ridge, found in incidence.items() if len(found) == 1
    )


def join_reference(
    left: Iterable[Simplex], right: Iterable[Simplex]
) -> frozenset[Simplex]:
    """Facets of the chromatic join by pairwise unions plus pruning.

    The seed path pruned defensively; the kernel join proves pruning
    unnecessary for disjoint colors, and this oracle (which does prune)
    is what that claim is checked against.  Color disjointness is the
    caller's responsibility, as in :func:`join_complexes`.
    """
    left_pool = list(left)
    right_pool = list(right)
    if not left_pool:
        return frozenset(right_pool)
    if not right_pool:
        return frozenset(left_pool)
    return prune_reference(
        l_facet.union(r_facet)
        for l_facet in left_pool
        for r_facet in right_pool
    )
