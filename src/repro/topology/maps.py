"""Chromatic simplicial maps.

A simplicial map ``f : K → K'`` is determined by its action on vertices and
must send every simplex of ``K`` onto a simplex of ``K'`` (Appendix A.1).
All maps in the paper are *chromatic*: they preserve vertex colors, so a
simplex is always sent to a simplex on the same color set.

:class:`SimplicialMap` validates both properties at construction time and
supports application to vertices, simplices and complexes, composition, and
agreement checks against carrier maps.
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional

from repro.errors import ChromaticityError, SimplicialityError
from repro.topology.complex import (
    SimplicialComplex,
    _prune_masks,
    _remap_mask,
)
from repro.topology.simplex import Simplex
from repro.topology.table import VertexTable
from repro.topology.vertex import Vertex

__all__ = ["SimplicialMap"]


class SimplicialMap:
    """A chromatic simplicial map between two complexes.

    Parameters
    ----------
    source:
        The domain complex.  The map must be defined on all its vertices.
    target:
        The codomain complex.  Every image simplex must belong to it.
    vertex_map:
        A mapping from every vertex of ``source`` to a vertex of ``target``.
    check:
        When true (the default), chromaticity and simpliciality are verified
        eagerly; construction fails with a precise error otherwise.  Pass
        ``False`` only for maps already known to be valid (e.g. produced by
        the solvability engine).
    """

    __slots__ = ("_source", "_target", "_vertex_map")

    def __init__(
        self,
        source: SimplicialComplex,
        target: SimplicialComplex,
        vertex_map: Mapping[Vertex, Vertex],
        check: bool = True,
    ):
        self._source = source
        self._target = target
        self._vertex_map: dict[Vertex, Vertex] = dict(vertex_map)
        if check:
            self._validate()

    def _validate(self) -> None:
        missing = self._source.vertices - set(self._vertex_map)
        if missing:
            sample = sorted(missing, key=lambda v: v._sort_key())[0]
            raise SimplicialityError(
                f"vertex map undefined on {len(missing)} source vertices, "
                f"e.g. {sample!r}"
            )
        for vertex, image in self._vertex_map.items():
            if vertex not in self._source.vertices:
                continue  # extra entries are harmless
            if image.color != vertex.color:
                raise ChromaticityError(
                    f"map is not chromatic: {vertex!r} ↦ {image!r}"
                )
            if image not in self._target.vertices:
                raise SimplicialityError(
                    f"image vertex {image!r} does not belong to the target "
                    "complex"
                )
        for facet in self._source.facets:
            image = self.apply_simplex(facet)
            if image not in self._target:
                raise SimplicialityError(
                    f"map is not simplicial: facet {facet!r} maps to "
                    f"{image!r}, which is not a simplex of the target"
                )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def source(self) -> SimplicialComplex:
        """The domain complex."""
        return self._source

    @property
    def target(self) -> SimplicialComplex:
        """The codomain complex."""
        return self._target

    @property
    def vertex_map(self) -> dict[Vertex, Vertex]:
        """A copy of the underlying vertex assignment."""
        return dict(self._vertex_map)

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------
    def __call__(self, vertex: Vertex) -> Vertex:
        return self._vertex_map[vertex]

    def apply_simplex(self, simplex: Simplex) -> Simplex:
        """The image simplex ``f(σ) = {f(v) : v ∈ σ}``.

        Because the map is chromatic, the image always has pairwise-distinct
        colors and this never raises for valid maps.
        """
        return Simplex(self._vertex_map[v] for v in simplex.vertices)

    def apply_complex(self, complex_: SimplicialComplex) -> SimplicialComplex:
        """The image complex ``f(K)`` of a subcomplex of the source.

        When the map is chromatic on ``complex_`` and every image vertex
        belongs to the target's vertex table, the image is computed at
        the mask level: each facet mask is translated bit-by-bit into
        the target table and the results pruned bitwise, without ever
        materializing an image ``Simplex``.  Maps that fall outside that
        contract (extra vertices, color changes — only reachable with
        ``check=False``) take the object path with seed semantics.
        """
        translated = self._mask_translation(complex_)
        if translated is not None:
            table, bit_map = translated
            _, masks = complex_._ensure_index()
            images = {_remap_mask(mask, bit_map) for mask in masks}
            return SimplicialComplex._from_masks(
                table, _prune_masks(images)
            )
        return SimplicialComplex(
            self.apply_simplex(facet) for facet in complex_.facets
        )

    def _mask_translation(
        self, complex_: SimplicialComplex
    ) -> Optional[tuple[VertexTable, list[int]]]:
        """A source-bit → target-bit map for ``complex_``, if one exists.

        Returns ``None`` when some vertex is unmapped, some image is not
        interned in the target, or the map is not color-preserving on
        ``complex_`` — the callers then fall back to object semantics.
        """
        source_table, _ = complex_._ensure_index()
        target_table, _ = self._target._ensure_index()
        vertex_map = self._vertex_map
        bit_map: list[int] = []
        for vertex in source_table.vertices:
            image = vertex_map.get(vertex)
            if image is None or image.color != vertex.color:
                return None
            try:
                bit_map.append(1 << target_table.index_of(image))
            except KeyError:
                return None
        return target_table, bit_map

    def image(self) -> SimplicialComplex:
        """The image of the whole source complex."""
        return self.apply_complex(self._source)

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def compose(self, earlier: "SimplicialMap") -> "SimplicialMap":
        """Return ``self ∘ earlier`` (first ``earlier``, then ``self``)."""
        if earlier._target.vertices - self._source.vertices:
            raise SimplicialityError(
                "composition mismatch: the earlier map's target is not "
                "contained in this map's source"
            )
        combined = {
            vertex: self._vertex_map[image]
            for vertex, image in earlier._vertex_map.items()
        }
        return SimplicialMap(
            earlier._source, self._target, combined, check=False
        )

    def restrict(self, subcomplex: SimplicialComplex) -> "SimplicialMap":
        """Restrict the map to a subcomplex of its source."""
        sub_map = {
            vertex: self._vertex_map[vertex]
            for vertex in subcomplex.vertices
        }
        return SimplicialMap(subcomplex, self._target, sub_map, check=False)

    # ------------------------------------------------------------------
    # Agreement checks
    # ------------------------------------------------------------------
    def sends_into(
        self,
        sub_source: SimplicialComplex,
        allowed: SimplicialComplex,
    ) -> bool:
        """``True`` iff ``f(sub_source) ⊆ allowed`` simplex-wise."""
        return all(
            self.apply_simplex(facet) in allowed
            for facet in sub_source.facets
        )

    @classmethod
    def from_function(
        cls,
        source: SimplicialComplex,
        target: SimplicialComplex,
        function: Callable[[Vertex], Vertex],
        check: bool = True,
    ) -> "SimplicialMap":
        """Build a map by evaluating ``function`` on every source vertex."""
        vertex_map = {v: function(v) for v in source.vertices}
        return cls(source, target, vertex_map, check=check)

    @classmethod
    def identity(cls, complex_: SimplicialComplex) -> "SimplicialMap":
        """The identity map on a complex."""
        return cls(
            complex_,
            complex_,
            {v: v for v in complex_.vertices},
            check=False,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SimplicialMap):
            return NotImplemented
        return (
            self._source == other._source
            and self._target == other._target
            and all(
                self._vertex_map[v] == other._vertex_map[v]
                for v in self._source.vertices
            )
        )

    def __repr__(self) -> str:
        return (
            f"SimplicialMap({len(self._source.vertices)} vertices → "
            f"{self._target!r})"
        )
