"""Runtime mask-provenance sanitizer (``REPRO_SANITIZE=1``).

The bitmask-native core trades safety for speed: a simplex mask is a bare
``int`` that is only meaningful relative to the one
:class:`~repro.topology.table.VertexTable` that encoded it.  Mixing masks
from different tables — bitwise combination, comparison, decoding, or
using them under the wrong ``table_id`` in a memo key — does not raise;
it silently produces *wrong simplices*.  The static flow rule RPR006
(:mod:`repro.checks.flowrules.masks`) proves the contract on source code;
this module is the dynamic half of the same check, so findings from
either side share the RPR006 rule id and the ``repro.checks`` reporters.

When active, every mask leaving a :class:`VertexTable` boundary
(``encode_mask``, ``encode_mask_interning``, ``colors_mask``,
``full_mask``) is returned as a :class:`SanitizedMask` — an ``int``
subclass carrying the owning ``table_id``.  Bitwise combination of two
tagged masks and every ``decode_mask``/``decode_mask_trusted`` call then
asserts provenance: same table, or tables whose interned pair prefixes
agree on every bit the mask uses (the wire codec and the parallel engine
legitimately rebuild pair-identical tables on the far side of a process
boundary, and growable tables stay compatible with their own snapshots).

Activation: set ``REPRO_SANITIZE=1`` in the environment before import,
pass ``--sanitize`` to the ``repro run/experiment/chaos`` subcommands, or
call :func:`enable` (tests use the :func:`sanitizer` context manager).
When inactive — the default — the hooks in ``table.py``/``wire.py``
reduce to one module-attribute truthiness check per call and no mask is
ever tagged, so release-mode behaviour and performance are untouched.

This module lives in :mod:`repro.topology` rather than
:mod:`repro.checks` because the table hooks import it at module load,
long before the checks subsystem (which pulls in the experiment
registry) can be imported without a cycle.  It depends only on the
stdlib and :mod:`repro.errors`; the :class:`~repro.checks.findings.Finding`
conversion imports lazily at call time.
"""

from __future__ import annotations

import os
import sys
import weakref
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Iterator, Optional

from repro.errors import MaskProvenanceError

if TYPE_CHECKING:
    from repro.checks.findings import Finding
    from repro.topology.table import VertexTable

__all__ = [
    "ACTIVE",
    "SanitizedMask",
    "enable",
    "disable",
    "sanitizer",
    "is_active",
    "tag",
    "check_decode",
    "violations",
    "reset_violations",
]


def _env_active() -> bool:
    return os.environ.get("REPRO_SANITIZE", "") not in ("", "0")


#: Rebindable activation flag; the table/wire hooks test it per call.
ACTIVE: bool = _env_active()

#: When true, violations are recorded (see :func:`violations`) instead of
#: raising — used by reporters that want every violation of a run at once.
RECORD_ONLY: bool = False

#: Live tables by ``table_id``, registered as they tag masks, so a check
#: can compare the pair lists of both sides.  Weak: the sanitizer must
#: not extend any table's lifetime.
_TABLES: "weakref.WeakValueDictionary[int, VertexTable]" = (
    weakref.WeakValueDictionary()
)

#: Recorded violations as ``(rule_id, location, message)`` triples.
_VIOLATIONS: list[tuple[str, str, str]] = []


def is_active() -> bool:
    """``True`` while the sanitizer is tagging and checking masks."""
    return ACTIVE


def enable(record_only: bool = False) -> None:
    """Turn the sanitizer on (equivalent to ``REPRO_SANITIZE=1``)."""
    global ACTIVE, RECORD_ONLY
    ACTIVE = True
    RECORD_ONLY = record_only


def disable() -> None:
    """Turn the sanitizer off; already-tagged masks stay inert tags."""
    global ACTIVE, RECORD_ONLY
    ACTIVE = False
    RECORD_ONLY = False


@contextmanager
def sanitizer(record_only: bool = False) -> Iterator[None]:
    """Context manager enabling the sanitizer for a ``with`` block."""
    global ACTIVE, RECORD_ONLY
    previous = (ACTIVE, RECORD_ONLY)
    enable(record_only=record_only)
    try:
        yield
    finally:
        ACTIVE, RECORD_ONLY = previous


def reset_violations() -> None:
    """Drop every recorded violation (tests and per-run reporters)."""
    del _VIOLATIONS[:]


def violations() -> "list[Finding]":
    """The recorded violations as :class:`~repro.checks.findings.Finding`.

    Shares the RPR006 rule id and severity vocabulary with the static
    flow analysis, so either side renders through the same reporters.
    """
    from repro.checks.findings import Finding, Severity

    return [
        Finding(rule_id, Severity.ERROR, location, message)
        for rule_id, location, message in _VIOLATIONS
    ]


def _caller_location() -> str:
    """``file:line`` of the first frame outside the sanitizer machinery.

    Gives runtime findings the same ``path:line`` shape as static ones.
    Only runs on a violation, so the frame walk costs nothing in the
    (already debug-only) happy path.
    """
    frame = sys._getframe(1)
    here = os.path.dirname(os.path.abspath(__file__))
    skip = {
        os.path.join(here, "sanitize.py"),
        os.path.join(here, "table.py"),
        os.path.join(here, "wire.py"),
    }
    while frame is not None:
        filename = os.path.abspath(frame.f_code.co_filename)
        if filename not in skip:
            return f"{frame.f_code.co_filename}:{frame.f_lineno}"
        back = frame.f_back
        if back is None:
            break
        frame = back
    return "<unknown>:0"


def _violation(message: str) -> None:
    location = _caller_location()
    _VIOLATIONS.append(("RPR006", location, message))
    if not RECORD_ONLY:
        raise MaskProvenanceError(f"RPR006 at {location}: {message}")


def _compatible(left: "VertexTable", right: "VertexTable", bits: int) -> bool:
    """``True`` iff both tables agree on the first ``bits`` entries.

    Masks only address bits below their ``bit_length``, so agreement on
    that prefix makes the two tables interchangeable for these masks —
    the contract the wire codec and worker-side table rebuilds rely on.
    """
    left_pairs = left.pairs
    right_pairs = right.pairs
    if len(left_pairs) < bits or len(right_pairs) < bits:
        return False
    return left_pairs[:bits] == right_pairs[:bits]


def _check_pair(
    table_id_a: int, table_id_b: int, bits: int, operation: str
) -> None:
    table_a = _TABLES.get(table_id_a)
    table_b = _TABLES.get(table_id_b)
    if table_a is None or table_b is None:
        # One origin is already garbage; without its pair list the check
        # cannot distinguish a stale-but-compatible snapshot from a real
        # mix, so the sanitizer stays quiet rather than guessing.
        return
    if _compatible(table_a, table_b, bits):
        return
    _violation(
        f"{operation} mixes masks of table {table_id_a} "
        f"({len(table_a.pairs)} entries) and table {table_id_b} "
        f"({len(table_b.pairs)} entries) with incompatible vertex "
        "orders; a mask is only meaningful against the table that "
        "encoded it"
    )


class SanitizedMask(int):
    """An ``int`` mask tagged with the ``table_id`` that encoded it.

    Behaves exactly like the underlying ``int`` (hash, equality, JSON,
    arithmetic) except that bitwise combination with a mask tagged by an
    incompatible table reports an RPR006 provenance violation.  Pickling
    drops the tag: table ids are process-local, so provenance never
    crosses a process boundary (the wire codec re-tags on decode).

    ``int`` subtypes cannot declare non-empty ``__slots__``, so instances
    carry a dict for the tag — a debug-mode-only cost.
    """

    table_id: int

    def __new__(cls, value: int, table_id: int) -> "SanitizedMask":
        self = super().__new__(cls, value)
        self.table_id = table_id
        return self

    def __reduce__(self) -> tuple:
        return (int, (int(self),))

    def _combine(self, other: Any, result: int, op: str) -> int:
        other_id = getattr(other, "table_id", None)
        if other_id is not None and other_id != self.table_id:
            bits = max(int(self).bit_length(), int(other).bit_length())
            _check_pair(self.table_id, other_id, bits, f"`{op}`")
        return SanitizedMask(result, self.table_id)

    def __and__(self, other: Any) -> int:
        result = int.__and__(self, other)
        if result is NotImplemented:
            return result
        return self._combine(other, result, "&")

    def __rand__(self, other: Any) -> int:
        result = int.__rand__(self, other)
        if result is NotImplemented:
            return result
        return self._combine(other, result, "&")

    def __or__(self, other: Any) -> int:
        result = int.__or__(self, other)
        if result is NotImplemented:
            return result
        return self._combine(other, result, "|")

    def __ror__(self, other: Any) -> int:
        result = int.__ror__(self, other)
        if result is NotImplemented:
            return result
        return self._combine(other, result, "|")

    def __xor__(self, other: Any) -> int:
        result = int.__xor__(self, other)
        if result is NotImplemented:
            return result
        return self._combine(other, result, "^")

    def __rxor__(self, other: Any) -> int:
        result = int.__rxor__(self, other)
        if result is NotImplemented:
            return result
        return self._combine(other, result, "^")


def tag(table: "VertexTable", mask: int) -> int:
    """Tag ``mask`` with ``table``'s identity (and register the table)."""
    table_id = table.table_id
    if table_id not in _TABLES:
        _TABLES[table_id] = table
    return SanitizedMask(mask, table_id)


def check_decode(
    table: "VertexTable", mask: int, operation: str = "decode_mask"
) -> None:
    """Assert that ``mask`` may be decoded against ``table``.

    Untagged masks (wire records, hand-built ints, masks born while the
    sanitizer was off) pass: the sanitizer only ever reports mixes it
    can prove.
    """
    origin_id: Optional[int] = getattr(mask, "table_id", None)
    if origin_id is None or origin_id == table.table_id:
        return
    origin = _TABLES.get(origin_id)
    if origin is None:
        return
    if _compatible(origin, table, int(mask).bit_length()):
        return
    _violation(
        f"{operation} on table {table.table_id} was handed a mask "
        f"encoded by incompatible table {origin_id}; decode with the "
        "table that produced the mask"
    )
