"""Chromatic simplicial complexes.

A complex is a non-empty-set family closed under taking non-empty subsets
(Appendix A.1).  :class:`SimplicialComplex` stores the family by its *facets*
(inclusion-maximal simplices) and materializes the full face set lazily; two
complexes compare equal iff they contain exactly the same simplices.

The class is immutable: every operation (projection, union, skeleton, …)
returns a new complex.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Iterator, Optional

from repro.errors import ChromaticityError
from repro.instrumentation import counter
from repro.topology.simplex import Simplex
from repro.topology.vertex import Vertex

__all__ = ["SimplicialComplex"]

_PRUNED_BUILDS = counter("simplicial-complex.pruned-builds")
_TRUSTED_BUILDS = counter("simplicial-complex.trusted-builds")


class SimplicialComplex:
    """An immutable chromatic simplicial complex, given by its facets.

    Parameters
    ----------
    simplices:
        Any iterable of :class:`Simplex`.  Non-maximal entries are allowed
        and pruned; the stored facets are the inclusion-maximal ones.

    Notes
    -----
    The empty complex (no simplices) is allowed and useful as an identity
    for unions; most topological accessors treat it naturally.
    """

    __slots__ = ("_facets", "_faces_cache", "_vertices_cache", "_hash")

    def __init__(self, simplices: Iterable[Simplex] = ()):
        candidates = set(simplices)
        # Prune entries that are faces of another entry.  Candidates are
        # visited by decreasing dimension, so a non-maximal entry always
        # meets an already-accepted superset; the subset tests are confined
        # to the accepted facets sharing the candidate's rarest vertex
        # (vertex-indexed), which keeps the pass near-linear in practice
        # instead of quadratic in the candidate count.
        facets: list[Simplex] = []
        by_vertex: dict[Vertex, list[frozenset[Vertex]]] = {}
        for simplex in sorted(candidates, key=len, reverse=True):
            vertices = simplex.vertices
            buckets = []
            for vertex in vertices:
                bucket = by_vertex.get(vertex)
                if bucket is None:
                    buckets = None
                    break
                buckets.append(bucket)
            vertex_set = frozenset(vertices)
            if buckets is not None and any(
                vertex_set <= accepted
                for accepted in min(buckets, key=len)
            ):
                continue
            facets.append(simplex)
            for vertex in vertices:
                by_vertex.setdefault(vertex, []).append(vertex_set)
        self._facets: frozenset[Simplex] = frozenset(facets)
        self._faces_cache: Optional[frozenset[Simplex]] = None
        self._vertices_cache: Optional[frozenset[Vertex]] = None
        self._hash: Optional[int] = None
        _PRUNED_BUILDS.built()

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_maximal(
        cls, facets: Iterable[Simplex]
    ) -> "SimplicialComplex":
        """Trusted fast path: wrap an already inclusion-maximal facet family.

        Skips the pruning pass of ``__init__`` entirely.  The caller
        promises that no entry is a face of another — e.g. the facet set of
        an existing complex, or a family of distinct simplices sharing one
        dimension (the one-round builders produce exactly those).  Passing
        a family that violates the promise corrupts every facet-based
        accessor, so only construction sites that guarantee maximality may
        use this.
        """
        self = object.__new__(cls)
        self._facets = (
            facets if isinstance(facets, frozenset) else frozenset(facets)
        )
        self._faces_cache = None
        self._vertices_cache = None
        self._hash = None
        _TRUSTED_BUILDS.built()
        return self

    @classmethod
    def from_simplex(cls, simplex: Simplex) -> "SimplicialComplex":
        """The complex ``σ̄`` of all faces of a single simplex."""
        return cls.from_maximal((simplex,))

    @classmethod
    def empty(cls) -> "SimplicialComplex":
        """The empty complex."""
        return cls()

    # ------------------------------------------------------------------
    # Core accessors
    # ------------------------------------------------------------------
    @property
    def facets(self) -> frozenset[Simplex]:
        """The inclusion-maximal simplices."""
        return self._facets

    def sorted_facets(self) -> list[Simplex]:
        """The facets in a deterministic order."""
        return sorted(self._facets, key=lambda s: s._sort_key())

    @property
    def simplices(self) -> frozenset[Simplex]:
        """Every simplex of the complex (all faces of all facets)."""
        if self._faces_cache is None:
            faces = set()
            for facet in self._facets:
                faces.update(facet.faces())
            self._faces_cache = frozenset(faces)
        return self._faces_cache

    @property
    def vertices(self) -> frozenset[Vertex]:
        """The vertex set ``V(K)``."""
        if self._vertices_cache is None:
            found = set()
            for facet in self._facets:
                found.update(facet.vertices)
            self._vertices_cache = frozenset(found)
        return self._vertices_cache

    def sorted_vertices(self) -> list[Vertex]:
        """The vertices in a deterministic order."""
        return sorted(self.vertices, key=lambda v: v._sort_key())

    @property
    def ids(self) -> frozenset:
        """The set of colors appearing anywhere in the complex."""
        return frozenset(v.color for v in self.vertices)

    @property
    def dim(self) -> int:
        """The maximal facet dimension; ``-1`` for the empty complex."""
        if not self._facets:
            return -1
        return max(facet.dim for facet in self._facets)

    def is_empty(self) -> bool:
        """``True`` iff the complex has no simplices."""
        return not self._facets

    def is_pure(self) -> bool:
        """``True`` iff all facets have the same dimension."""
        if not self._facets:
            return True
        dims = {facet.dim for facet in self._facets}
        return len(dims) == 1

    def __contains__(self, simplex: object) -> bool:
        if not isinstance(simplex, Simplex):
            return False
        return simplex in self.simplices

    def contains_chromatic_set(self, vertices: Iterable[Vertex]) -> bool:
        """``True`` iff the given vertices form a simplex of the complex."""
        try:
            candidate = Simplex(vertices)
        except ChromaticityError:
            return False
        return candidate in self

    def __iter__(self) -> Iterator[Simplex]:
        return iter(self.simplices)

    def __len__(self) -> int:
        return len(self.simplices)

    # ------------------------------------------------------------------
    # Derived complexes
    # ------------------------------------------------------------------
    def proj(self, colors: Iterable[int]) -> "SimplicialComplex":
        """The induced subcomplex on vertices with colors in the given set.

        This is the paper's ``proj_I(K)``: keep every simplex whose colors
        all lie in ``colors``.
        """
        keep = frozenset(colors)
        projected = []
        for facet in self._facets:
            shared = facet.ids & keep
            if shared:
                projected.append(facet.proj(shared))
        return SimplicialComplex(projected)

    def skeleton(self, k: int) -> "SimplicialComplex":
        """The ``k``-skeleton: all simplices of dimension at most ``k``."""
        if k < 0:
            return SimplicialComplex.empty()
        pieces: list[Simplex] = []
        for facet in self._facets:
            if facet.dim <= k:
                pieces.append(facet)
            else:
                pieces.extend(
                    Simplex(subset)
                    for subset in combinations(facet.vertices, k + 1)
                )
        return SimplicialComplex(pieces)

    def union(self, other: "SimplicialComplex") -> "SimplicialComplex":
        """The complex whose simplices are the union of both families."""
        return SimplicialComplex(list(self._facets) + list(other._facets))

    def intersection(self, other: "SimplicialComplex") -> "SimplicialComplex":
        """The complex whose simplices belong to both complexes."""
        shared = self.simplices & other.simplices
        return SimplicialComplex(shared)

    def simplices_of_dim(self, k: int) -> list[Simplex]:
        """All simplices of dimension exactly ``k``, sorted."""
        found = [s for s in self.simplices if s.dim == k]
        return sorted(found, key=lambda s: s._sort_key())

    def facets_containing(self, vertex: Vertex) -> list[Simplex]:
        """All facets containing the given vertex, sorted."""
        found = [f for f in self._facets if vertex in f]
        return sorted(found, key=lambda s: s._sort_key())

    def star(self, vertex: Vertex) -> "SimplicialComplex":
        """The star of a vertex: all facets containing it."""
        # Facets of a complex never nest, so any subset is already maximal.
        return SimplicialComplex.from_maximal(self.facets_containing(vertex))

    def vertices_of_color(self, color: int) -> list[Vertex]:
        """All vertices of the given color, sorted."""
        found = [v for v in self.vertices if v.color == color]
        return sorted(found, key=lambda v: v._sort_key())

    def f_vector(self) -> tuple[int, ...]:
        """The f-vector ``(f_0, f_1, …)``: simplex counts per dimension."""
        if self.is_empty():
            return ()
        counts: dict[int, int] = {}
        for simplex in self.simplices:
            counts[simplex.dim] = counts.get(simplex.dim, 0) + 1
        top = max(counts)
        return tuple(counts.get(d, 0) for d in range(top + 1))

    def euler_characteristic(self) -> int:
        """The Euler characteristic ``Σ (-1)^d f_d``."""
        return sum(
            (-1) ** dim * count for dim, count in enumerate(self.f_vector())
        )

    # ------------------------------------------------------------------
    # Value-object plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SimplicialComplex):
            return NotImplemented
        return self._facets == other._facets

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self._facets)
        return self._hash

    def __repr__(self) -> str:
        if self.is_empty():
            return "SimplicialComplex(empty)"
        return (
            f"SimplicialComplex(dim={self.dim}, "
            f"facets={len(self._facets)}, vertices={len(self.vertices)})"
        )
