"""Chromatic simplicial complexes — the bitmask-native core.

A complex is a non-empty-set family closed under taking non-empty subsets
(Appendix A.1).  :class:`SimplicialComplex` stores the family by its
*facets* (inclusion-maximal simplices) and indexes them as integer
bitmasks over an interned, canonically sorted
:class:`~repro.topology.table.VertexTable`: subset tests become
``sub & sup == sub``, inclusion-maximality pruning becomes a sweep of
integer comparisons, and projection/star/skeleton/union/intersection are
bitwise passes over one ``int`` per facet.  This is what keeps the
``13^t``-facet protocol complexes of the round-expansion blow-up
tractable — the object-set reference semantics (retained in
:mod:`repro.topology.reference` and cross-checked by audit rule AUD013)
are unchanged.

``Simplex`` objects are materialized lazily, only at API boundaries
(``facets``, ``simplices``, iteration, sorted accessors): a complex
decoded from its wire form answers membership, projection, and equality
queries without rebuilding a single vertex object, and encoding back to
:class:`~repro.topology.wire.WireComplex` is a near-no-op because the
in-memory index *is* the canonical wire table.

Two complexes compare equal iff they contain exactly the same simplices.
The class is immutable: every operation returns a new complex.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Iterator, Optional

from repro.errors import ChromaticityError
from repro.instrumentation import counter
from repro.topology.simplex import Simplex
from repro.topology.table import (
    VertexTable,
    iter_bits,
    iter_submasks,
    popcount,
)
from repro.topology.vertex import Vertex

__all__ = ["SimplicialComplex"]

_PRUNED_BUILDS = counter("simplicial-complex.pruned-builds")
_TRUSTED_BUILDS = counter("simplicial-complex.trusted-builds")


def _prune_masks(masks: Iterable[int]) -> list[int]:
    """The inclusion-maximal masks of a family (bitwise pruning pass).

    Masks are visited by decreasing popcount, so a non-maximal mask
    always meets an already-accepted superset; the subset tests are
    confined to the accepted masks sharing the candidate's rarest bit
    (bit-indexed buckets), which keeps the pass near-linear in practice
    instead of quadratic in the candidate count.
    """
    by_bit: dict[int, list[int]] = {}
    get_bucket = by_bit.get
    accepted: list[int] = []
    for mask in sorted(masks, key=popcount, reverse=True):
        novel = False
        best: Optional[list[int]] = None
        bits: list[int] = []
        remaining = mask
        while remaining:
            low = remaining & -remaining
            remaining ^= low
            index = low.bit_length() - 1
            bits.append(index)
            if not novel:
                bucket = get_bucket(index)
                if bucket is None:
                    # A bit no accepted mask has: the candidate is novel.
                    novel = True
                elif best is None or len(bucket) < len(best):
                    best = bucket
        if not novel and best is not None:
            subsumed = False
            for sup in best:
                if mask & sup == mask:
                    subsumed = True
                    break
            if subsumed:
                continue
        accepted.append(mask)
        for index in bits:
            bucket = get_bucket(index)
            if bucket is None:
                by_bit[index] = [mask]
            else:
                bucket.append(mask)
    return accepted


def _remap_mask(mask: int, bit_map: list[int]) -> int:
    """Translate a mask through a per-bit map (old index → new bit)."""
    remapped = 0
    while mask:
        low = mask & -mask
        remapped |= bit_map[low.bit_length() - 1]
        mask ^= low
    return remapped


def _merge_tables(
    left: VertexTable, right: VertexTable
) -> tuple[VertexTable, list[int], list[int]]:
    """The canonical table over both vertex sets, plus per-side bit maps."""
    vertices = set(left.vertices) | set(right.vertices)
    ordered = sorted(vertices, key=lambda v: v._sort_key())
    merged = VertexTable.interned_of(ordered)
    left_map = [1 << merged.index_of(v) for v in left.vertices]
    right_map = [1 << merged.index_of(v) for v in right.vertices]
    return merged, left_map, right_map


def _unpickle_complex(facets: frozenset) -> "SimplicialComplex":
    return SimplicialComplex.from_maximal(facets)


class SimplicialComplex:
    """An immutable chromatic simplicial complex, given by its facets.

    Parameters
    ----------
    simplices:
        Any iterable of :class:`Simplex`.  Non-maximal entries are allowed
        and pruned; the stored facets are the inclusion-maximal ones.

    Notes
    -----
    The empty complex (no simplices) is allowed and useful as an identity
    for unions; most topological accessors treat it naturally.

    Internal state — two births, one invariant set:

    * *object-born* (``__init__`` / ``from_maximal``): ``_facets`` holds
      the facet frozenset; the mask index (``_table``, ``_masks``) is
      built lazily by ``_ensure_index``.
    * *wire-born* (``_from_masks``, used by the trusted wire decoder and
      every mask-level operation): ``_table``/``_masks`` are set and
      ``_facets`` is ``None`` until an API boundary materializes it.

    Whenever ``_masks`` is set it is an ascending tuple of facet masks
    over an interned, canonically sorted table whose entries are exactly
    the complex's vertices — so equal complexes share one table object
    and mask-tuple equality decides complex equality.
    """

    __slots__ = (
        "_facets",
        "_table",
        "_masks",
        "_face_masks",
        "_faces_cache",
        "_vertices_cache",
        "_hash",
    )

    def __init__(self, simplices: Iterable[Simplex] = ()):
        candidates = set(simplices)
        self._table: Optional[VertexTable] = None
        self._masks: Optional[tuple[int, ...]] = None
        self._face_masks: Optional[set[int]] = None
        self._faces_cache: Optional[frozenset[Simplex]] = None
        self._vertices_cache: Optional[frozenset[Vertex]] = None
        self._hash: Optional[int] = None
        if not candidates:
            self._facets: Optional[frozenset[Simplex]] = frozenset()
            _PRUNED_BUILDS.built()
            return
        # Index the distinct vertices in canonical sort order.  Pruning
        # only ever removes subsets of accepted masks, so the candidate
        # vertex set equals the final complex vertex set and the table
        # needs no narrowing afterwards.
        seen: set[Vertex] = set()
        for simplex in candidates:
            seen.update(simplex.vertices)
        ordered = sorted(seen, key=lambda v: v._sort_key())
        table = VertexTable.interned_of(ordered)
        # A mask determines its vertex set, so the dict both dedups and
        # maps accepted masks back to their Simplex objects.
        by_mask: dict[int, Simplex] = {
            table.encode_mask(simplex): simplex for simplex in candidates
        }
        facet_masks = _prune_masks(by_mask)
        self._facets = frozenset(by_mask[mask] for mask in facet_masks)
        self._table = table
        self._masks = tuple(sorted(facet_masks))
        _PRUNED_BUILDS.built()

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_maximal(
        cls, facets: Iterable[Simplex]
    ) -> "SimplicialComplex":
        """Trusted fast path: wrap an already inclusion-maximal facet family.

        Skips the pruning pass of ``__init__`` entirely.  The caller
        promises that no entry is a face of another — e.g. the facet set of
        an existing complex, or a family of distinct simplices sharing one
        dimension (the one-round builders produce exactly those).  Passing
        a family that violates the promise corrupts every facet-based
        accessor, so only construction sites that guarantee maximality may
        use this.
        """
        self = object.__new__(cls)
        self._facets = (
            facets if isinstance(facets, frozenset) else frozenset(facets)
        )
        self._table = None
        self._masks = None
        self._face_masks = None
        self._faces_cache = None
        self._vertices_cache = None
        self._hash = None
        _TRUSTED_BUILDS.built()
        return self

    @classmethod
    def _from_masks(
        cls, table: VertexTable, masks: Iterable[int]
    ) -> "SimplicialComplex":
        """Trusted mask-level constructor: maximal masks over a table.

        Facet objects are materialized lazily.  When the masks do not use
        every table entry, the table is narrowed so the minimal-table
        invariant holds (a subsequence of a sorted vertex list is still
        sorted, so narrowing preserves canonicality).  A non-canonical
        (unsorted) table — only reachable through foreign wire records —
        falls back to eager materialization.
        """
        mask_list = sorted(set(masks))
        if not mask_list:
            return cls.empty()
        if not table.is_sorted:
            return cls.from_maximal(
                [table.decode_mask(mask) for mask in mask_list]
            )
        used = 0
        for mask in mask_list:
            used |= mask
        if used != table.full_mask:
            ordered = [table.vertex_at(i) for i in iter_bits(used)]
            narrowed = VertexTable.interned_of(ordered)
            bit_map = [0] * (used.bit_length())
            for new_index, old_index in enumerate(iter_bits(used)):
                bit_map[old_index] = 1 << new_index
            mask_list = sorted(
                _remap_mask(mask, bit_map) for mask in mask_list
            )
            table = narrowed
        self = object.__new__(cls)
        self._facets = None
        self._table = table
        self._masks = tuple(mask_list)
        self._face_masks = None
        self._faces_cache = None
        self._vertices_cache = None
        self._hash = None
        _TRUSTED_BUILDS.built()
        return self

    @classmethod
    def from_simplex(cls, simplex: Simplex) -> "SimplicialComplex":
        """The complex ``σ̄`` of all faces of a single simplex."""
        return cls.from_maximal((simplex,))

    @classmethod
    def empty(cls) -> "SimplicialComplex":
        """The empty complex."""
        return cls()

    # ------------------------------------------------------------------
    # The mask index
    # ------------------------------------------------------------------
    def _ensure_index(self) -> tuple[VertexTable, tuple[int, ...]]:
        """The ``(table, facet masks)`` index, built on first use."""
        table, masks = self._table, self._masks
        if masks is not None and table is not None and table.is_sorted:
            return table, masks
        facets = self.facets
        seen: set[Vertex] = set()
        for facet in facets:
            seen.update(facet.vertices)
        ordered = sorted(seen, key=lambda v: v._sort_key())
        table = VertexTable.interned_of(ordered)
        self._table = table
        self._masks = tuple(
            sorted(table.encode_mask(facet) for facet in facets)
        )
        self._face_masks = None  # tied to the (replaced) table
        return table, self._masks

    def _face_mask_set(self) -> set[int]:
        """Every face of every facet, as masks (memoized)."""
        found = self._face_masks
        if found is None:
            _, masks = self._ensure_index()
            found = set()
            add = found.add
            for mask in masks:
                # Inlined iter_submasks: this walk builds the whole face
                # set of the complex, so generator overhead would be paid
                # once per face.
                sub = mask
                while sub:
                    add(sub)
                    sub = (sub - 1) & mask
            self._face_masks = found
        return found

    # ------------------------------------------------------------------
    # Core accessors
    # ------------------------------------------------------------------
    @property
    def facets(self) -> frozenset[Simplex]:
        """The inclusion-maximal simplices (materialized lazily)."""
        facets = self._facets
        if facets is None:
            table = self._table
            assert table is not None and self._masks is not None
            facets = self._facets = frozenset(
                table.decode_mask_trusted(mask) for mask in self._masks
            )
        return facets

    @property
    def facet_count(self) -> int:
        """``len(facets)`` without materializing facet objects."""
        if self._masks is not None:
            return len(self._masks)
        assert self._facets is not None
        return len(self._facets)

    def sorted_facets(self) -> list[Simplex]:
        """The facets in a deterministic order."""
        return sorted(self.facets, key=lambda s: s._sort_key())

    @property
    def simplices(self) -> frozenset[Simplex]:
        """Every simplex of the complex (all faces of all facets)."""
        if self._faces_cache is None:
            table, _ = self._ensure_index()
            self._faces_cache = frozenset(
                table.decode_mask_trusted(mask)
                for mask in self._face_mask_set()
            )
        return self._faces_cache

    @property
    def vertices(self) -> frozenset[Vertex]:
        """The vertex set ``V(K)``."""
        if self._vertices_cache is None:
            if self._facets is not None:
                found: set[Vertex] = set()
                for facet in self._facets:
                    found.update(facet.vertices)
                self._vertices_cache = frozenset(found)
            else:
                # Wire-born: the (narrowed) table lists exactly V(K).
                table = self._table
                assert table is not None
                self._vertices_cache = frozenset(table.vertices)
        return self._vertices_cache

    def sorted_vertices(self) -> list[Vertex]:
        """The vertices in a deterministic order.

        The canonical table lists exactly the complex's vertices in sort
        order, so this is a copy of the index — no re-sort.
        """
        table, _ = self._ensure_index()
        return list(table.vertices)

    @property
    def ids(self) -> frozenset:
        """The set of colors appearing anywhere in the complex."""
        return frozenset(v.color for v in self.vertices)

    @property
    def dim(self) -> int:
        """The maximal facet dimension; ``-1`` for the empty complex."""
        if self._masks is not None:
            if not self._masks:
                return -1
            return max(popcount(mask) for mask in self._masks) - 1
        assert self._facets is not None
        if not self._facets:
            return -1
        return max(facet.dim for facet in self._facets)

    def is_empty(self) -> bool:
        """``True`` iff the complex has no simplices."""
        if self._masks is not None:
            return not self._masks
        assert self._facets is not None
        return not self._facets

    def is_pure(self) -> bool:
        """``True`` iff all facets have the same dimension."""
        if self._masks is not None:
            sizes = {popcount(mask) for mask in self._masks}
            return len(sizes) <= 1
        assert self._facets is not None
        dims = {facet.dim for facet in self._facets}
        return len(dims) <= 1

    def __contains__(self, simplex: object) -> bool:
        if not isinstance(simplex, Simplex):
            return False
        table, masks = self._ensure_index()
        if not masks:
            return False
        try:
            mask = table.encode_mask(simplex)
        except ChromaticityError:
            # Some vertex is not in the complex at all.
            return False
        return mask in self._face_mask_set()

    def contains_chromatic_set(self, vertices: Iterable[Vertex]) -> bool:
        """``True`` iff the given vertices form a simplex of the complex."""
        try:
            candidate = Simplex(vertices)
        except ChromaticityError:
            return False
        return candidate in self

    def __iter__(self) -> Iterator[Simplex]:
        return iter(self.simplices)

    def __len__(self) -> int:
        return len(self._face_mask_set())

    # ------------------------------------------------------------------
    # Derived complexes
    # ------------------------------------------------------------------
    def proj(self, colors: Iterable[int]) -> "SimplicialComplex":
        """The induced subcomplex on vertices with colors in the given set.

        This is the paper's ``proj_I(K)``: keep every simplex whose colors
        all lie in ``colors``.
        """
        keep = frozenset(colors)
        table, masks = self._ensure_index()
        color_mask = table.colors_mask(keep)
        projected: set[int] = set()
        for mask in masks:
            shared = mask & color_mask
            if shared:
                projected.add(shared)
        if not projected:
            return SimplicialComplex.empty()
        return SimplicialComplex._from_masks(
            table, _prune_masks(projected)
        )

    def skeleton(self, k: int) -> "SimplicialComplex":
        """The ``k``-skeleton: all simplices of dimension at most ``k``."""
        if k < 0 or self.is_empty():
            return SimplicialComplex.empty()
        table, masks = self._ensure_index()
        pieces: set[int] = set()
        for mask in masks:
            if popcount(mask) <= k + 1:
                pieces.add(mask)
            else:
                bits = [1 << i for i in iter_bits(mask)]
                for combo in combinations(bits, k + 1):
                    pieces.add(sum(combo))
        return SimplicialComplex._from_masks(table, _prune_masks(pieces))

    def union(self, other: "SimplicialComplex") -> "SimplicialComplex":
        """The complex whose simplices are the union of both families."""
        if other.is_empty():
            return self
        if self.is_empty():
            return other
        table, masks = self._ensure_index()
        other_table, other_masks = other._ensure_index()
        if table is other_table:
            merged: set[int] = set(masks) | set(other_masks)
        else:
            table, left_map, right_map = _merge_tables(
                table, other_table
            )
            merged = {_remap_mask(mask, left_map) for mask in masks}
            merged.update(
                _remap_mask(mask, right_map) for mask in other_masks
            )
        return SimplicialComplex._from_masks(table, _prune_masks(merged))

    def intersection(
        self, other: "SimplicialComplex"
    ) -> "SimplicialComplex":
        """The complex whose simplices belong to both complexes.

        A maximal common face is always the intersection of a facet of
        each side, so the pairwise ANDs generate the whole family.
        """
        table, masks = self._ensure_index()
        other_table, other_masks = other._ensure_index()
        if table is other_table:
            left: Iterable[int] = masks
            right: Iterable[int] = other_masks
        else:
            table, left_map, right_map = _merge_tables(
                table, other_table
            )
            left = [_remap_mask(mask, left_map) for mask in masks]
            right = [_remap_mask(mask, right_map) for mask in other_masks]
        pieces: set[int] = set()
        for mask in left:
            for other_mask in right:
                shared = mask & other_mask
                if shared:
                    pieces.add(shared)
        if not pieces:
            return SimplicialComplex.empty()
        return SimplicialComplex._from_masks(table, _prune_masks(pieces))

    def simplices_of_dim(self, k: int) -> list[Simplex]:
        """All simplices of dimension exactly ``k``, sorted."""
        table, _ = self._ensure_index()
        found = [
            table.decode_mask_trusted(mask)
            for mask in self._face_mask_set()
            if popcount(mask) == k + 1
        ]
        return sorted(found, key=lambda s: s._sort_key())

    def facets_containing(self, vertex: Vertex) -> list[Simplex]:
        """All facets containing the given vertex, sorted."""
        table, masks = self._ensure_index()
        try:
            bit = 1 << table.index_of(vertex)
        except KeyError:
            return []
        found = [
            table.decode_mask_trusted(mask)
            for mask in masks
            if mask & bit
        ]
        return sorted(found, key=lambda s: s._sort_key())

    def star(self, vertex: Vertex) -> "SimplicialComplex":
        """The star of a vertex: all facets containing it."""
        table, masks = self._ensure_index()
        try:
            bit = 1 << table.index_of(vertex)
        except KeyError:
            return SimplicialComplex.empty()
        # Facets of a complex never nest, so the kept family is maximal.
        return SimplicialComplex._from_masks(
            table, [mask for mask in masks if mask & bit]
        )

    def vertices_of_color(self, color: int) -> list[Vertex]:
        """All vertices of the given color, sorted."""
        found = [v for v in self.vertices if v.color == color]
        return sorted(found, key=lambda v: v._sort_key())

    def f_vector(self) -> tuple[int, ...]:
        """The f-vector ``(f_0, f_1, …)``: simplex counts per dimension."""
        if self.is_empty():
            return ()
        counts: dict[int, int] = {}
        for mask in self._face_mask_set():
            dim = popcount(mask) - 1
            counts[dim] = counts.get(dim, 0) + 1
        top = max(counts)
        return tuple(counts.get(d, 0) for d in range(top + 1))

    def euler_characteristic(self) -> int:
        """The Euler characteristic ``Σ (-1)^d f_d``."""
        return sum(
            (-1) ** dim * count for dim, count in enumerate(self.f_vector())
        )

    # ------------------------------------------------------------------
    # Value-object plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SimplicialComplex):
            return NotImplemented
        if self is other:
            return True
        if self._masks is not None and other._masks is not None:
            if self._table is other._table:
                return self._masks == other._masks
            # Index tables are interned and minimal: distinct table
            # objects mean distinct vertex sets, hence distinct complexes.
            return False
        return self.facets == other.facets

    def __hash__(self) -> int:
        # Hash through the index, not the facet frozenset: the interned
        # table pins vertex-set identity (equal complexes share one table
        # for as long as either is alive) and the mask tuple pins the
        # facet family, so this is consistent with ``__eq__`` and never
        # materializes a Simplex.
        if self._hash is None:
            table, masks = self._ensure_index()
            self._hash = hash((table.table_id, masks))
        return self._hash

    def __reduce__(self) -> tuple:
        # Pickle by facets only: mask indexes are process-local (table
        # ids and interning do not survive the boundary) and rebuild
        # lazily on the other side.
        return (_unpickle_complex, (self.facets,))

    def __repr__(self) -> str:
        if self.is_empty():
            return "SimplicialComplex(empty)"
        return (
            f"SimplicialComplex(dim={self.dim}, "
            f"facets={self.facet_count}, vertices={len(self.vertices)})"
        )
