"""Distributed tasks.

A task is a triple ``Π = (I, O, Δ)`` (Section 2.2): an input complex, an
output complex, and an input-output specification mapping every input
simplex ``σ`` to the subcomplex of legal outputs on the same colors.

The tasks of the paper:

* binary / multi-valued consensus (:mod:`repro.tasks.consensus`),
* the relaxed consensus of Corollary 2 — agreement required only when at
  least three processes participate,
* ε-approximate agreement on the exact grid ``{0, 1/m, …, 1}`` and its
  *liberal* version, Definition 4 (:mod:`repro.tasks.approximate`),
* k-set agreement, the extension suggested in the conclusion
  (:mod:`repro.tasks.set_agreement`).
"""

from repro.tasks.task import Task
from repro.tasks.inputs import (
    full_input_complex,
    input_simplex,
    binary_input_complex,
)
from repro.tasks.consensus import (
    binary_consensus_task,
    multivalued_consensus_task,
    relaxed_consensus_task,
)
from repro.tasks.approximate import (
    grid,
    approximate_agreement_task,
    liberal_approximate_agreement_task,
)
from repro.tasks.set_agreement import set_agreement_task
from repro.tasks.renaming import renaming_task

__all__ = [
    "Task",
    "full_input_complex",
    "input_simplex",
    "binary_input_complex",
    "binary_consensus_task",
    "multivalued_consensus_task",
    "relaxed_consensus_task",
    "grid",
    "approximate_agreement_task",
    "liberal_approximate_agreement_task",
    "set_agreement_task",
    "renaming_task",
]
