"""Input complex builders.

All the paper's tasks share the same shape of input complex: every non-empty
subset of processes, each holding any value from a finite domain.  The
facets are the full-participation assignments; faces (partial participation)
come for free from downward closure.
"""

from __future__ import annotations

from itertools import product
from typing import Hashable, Iterable, Sequence

from repro.errors import TaskSpecificationError
from repro.topology.complex import SimplicialComplex
from repro.topology.simplex import Simplex

__all__ = ["full_input_complex", "input_simplex", "binary_input_complex"]


def full_input_complex(
    ids: Iterable[int], values: Sequence[Hashable]
) -> SimplicialComplex:
    """The input complex where each of ``ids`` holds any of ``values``.

    Facets are all ``|values|^|ids|`` full assignments; every partial
    assignment is a face of one of them.
    """
    id_list = sorted(set(ids))
    if not id_list:
        raise TaskSpecificationError("input complex needs at least one process")
    value_list = list(values)
    if not value_list:
        raise TaskSpecificationError("input complex needs at least one value")
    facets = [
        Simplex(zip(id_list, combo))
        for combo in product(value_list, repeat=len(id_list))
    ]
    return SimplicialComplex(facets)


def input_simplex(assignment: dict) -> Simplex:
    """Shorthand to build an input simplex from ``{process: value}``."""
    return Simplex.from_mapping(assignment)


def binary_input_complex(ids: Iterable[int]) -> SimplicialComplex:
    """The consensus input complex: every process holds 0 or 1."""
    return full_input_complex(ids, [0, 1])
