"""The renaming task.

Renaming (Attiya et al.; studied topologically by Attiya–Castañeda–
Herlihy–Paz, cited as [2]) asks participants to acquire pairwise-distinct
names from a namespace ``{1, …, M}``.  Wait-free, ``M = 2n − 1`` names are
necessary and sufficient for ``n`` processes in general (for some values
of ``n``, ``2n − 2`` suffice); the conclusion of the speedup paper asks
about tasks beyond consensus and approximate agreement, and renaming is a
natural stress test for the closure machinery: unlike agreement tasks its
outputs must *differ*, so local tasks behave very differently.

The task here is the standard non-adaptive one, with inputs irrelevant
(every process starts with a token); ``Δ(σ)`` is every assignment of
pairwise-distinct names to the participants.  Note this version is allowed
to depend on IDs (it is not required to be index-independent), so for
``M ≥ n`` it is trivially 0-round solvable by ``i ↦ i``-th name; the
interesting instances restrict the namespace below ``n`` or are explored
through the closure.
"""

from __future__ import annotations

from itertools import permutations
from typing import Iterable

from repro.errors import TaskSpecificationError
from repro.tasks.inputs import full_input_complex
from repro.tasks.task import Task
from repro.topology.complex import SimplicialComplex
from repro.topology.simplex import Simplex

__all__ = ["renaming_task"]


def renaming_task(ids: Iterable[int], namespace: int) -> Task:
    """Renaming into ``{1, …, namespace}`` for the given processes.

    ``Δ(σ)``: every injective assignment of names to ``ID(σ)``.  When
    fewer names than participants exist, ``Δ(σ)`` is empty for the large
    simplices and the task is trivially unsolvable — the engines handle
    that gracefully (no decision map can exist).
    """
    id_list = sorted(set(ids))
    if namespace < 1:
        raise TaskSpecificationError("namespace must contain at least one name")
    names = list(range(1, namespace + 1))

    input_complex = full_input_complex(id_list, ["token"])
    output_facets = [
        Simplex(zip(id_list, assignment))
        for assignment in permutations(names, len(id_list))
    ]
    output_complex = (
        SimplicialComplex(output_facets)
        if output_facets
        else SimplicialComplex(
            [
                Simplex([(i, name)])
                for i in id_list
                for name in names
            ]
        )
    )

    def delta(sigma: Simplex) -> SimplicialComplex:
        participants = sorted(sigma.ids)
        return SimplicialComplex(
            Simplex(zip(participants, assignment))
            for assignment in permutations(names, len(participants))
        )

    label = f"renaming(n={len(id_list)}, M={namespace})"
    return Task(label, input_complex, output_complex, delta)
