"""Consensus tasks.

* :func:`binary_consensus_task` — the task of Section 3.3: all participants
  output the same value, which must be an input of a participant; with
  uniform inputs the common output is forced.
* :func:`multivalued_consensus_task` — same over an arbitrary finite domain.
* :func:`relaxed_consensus_task` — the task ``Π`` of Corollary 2: validity
  always holds (every output is some participant's input), but agreement is
  required **only when at least three processes participate**.  Any
  consensus algorithm solves it, and it is a fixed point of IIS+test&set,
  which is how the paper proves consensus impossibility for ``n > 2`` with
  test&set.
"""

from __future__ import annotations

from itertools import product
from typing import Hashable, Iterable, Sequence

from repro.tasks.inputs import full_input_complex
from repro.tasks.task import Task
from repro.topology.complex import SimplicialComplex
from repro.topology.simplex import Simplex

__all__ = [
    "binary_consensus_task",
    "multivalued_consensus_task",
    "relaxed_consensus_task",
]


def _monochromatic_facets(
    ids: Sequence[int], values: Iterable[Hashable]
) -> list:
    return [
        Simplex((i, value) for i in ids) for value in values
    ]


def multivalued_consensus_task(
    ids: Iterable[int], values: Sequence[Hashable]
) -> Task:
    """Consensus over an arbitrary finite value domain.

    ``Δ(σ)``: every participant outputs the same value ``v``, and ``v`` is
    the input of some participant.
    """
    id_list = sorted(set(ids))
    value_list = list(values)
    input_complex = full_input_complex(id_list, value_list)
    output_complex = SimplicialComplex(
        _monochromatic_facets(id_list, value_list)
    )

    def delta(sigma: Simplex) -> SimplicialComplex:
        inputs = {vertex.value for vertex in sigma.vertices}
        return SimplicialComplex(
            Simplex((i, value) for i in sorted(sigma.ids))
            for value in sorted(inputs, key=value_list.index)
        )

    label = f"consensus(n={len(id_list)}, |V|={len(value_list)})"
    return Task(label, input_complex, output_complex, delta)


def binary_consensus_task(ids: Iterable[int]) -> Task:
    """Binary consensus: the instance used in Corollary 1."""
    task = multivalued_consensus_task(ids, [0, 1])
    return task.with_name(f"binary-consensus(n={len(set(ids))})")


def relaxed_consensus_task(
    ids: Iterable[int], values: Sequence[Hashable] = (0, 1)
) -> Task:
    """The relaxed consensus task ``Π`` of Corollary 2.

    Outputs must be inputs of participants (validity).  If three or more
    processes participate they must all output the same value; one or two
    participants may disagree.

    The output complex consequently contains *all* chromatic simplices of
    dimension ≤ 1 over the value domain, but only monochromatic simplices
    in dimension ≥ 2.
    """
    id_list = sorted(set(ids))
    value_list = list(values)
    input_complex = full_input_complex(id_list, value_list)

    output_facets = list(_monochromatic_facets(id_list, value_list))
    # All (possibly disagreeing) edges are legal output states.
    for left_index, i in enumerate(id_list):
        for j in id_list[left_index + 1 :]:
            for vi, vj in product(value_list, repeat=2):
                output_facets.append(Simplex([(i, vi), (j, vj)]))
    output_complex = SimplicialComplex(output_facets)

    def delta(sigma: Simplex) -> SimplicialComplex:
        inputs = sorted(
            {vertex.value for vertex in sigma.vertices},
            key=value_list.index,
        )
        participants = sorted(sigma.ids)
        if len(participants) >= 3:
            simplices = [
                Simplex((i, value) for i in participants)
                for value in inputs
            ]
        else:
            simplices = [
                Simplex(zip(participants, combo))
                for combo in product(inputs, repeat=len(participants))
            ]
        return SimplicialComplex(simplices)

    label = f"relaxed-consensus(n={len(id_list)}, |V|={len(value_list)})"
    return Task(label, input_complex, output_complex, delta)
