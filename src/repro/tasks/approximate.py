"""ε-approximate agreement on an exact rational grid (Definition 3).

To keep every complex finite and every value exact, the paper fixes an
integer ``m`` with ``ε`` an integral multiple of ``1/m`` and restricts all
inputs and outputs to the grid ``{0, 1/m, 2/m, …, 1}``.  We follow suit,
using :class:`fractions.Fraction` throughout — no floats, no averaging.

Two variants:

* the standard task: outputs lie in the input range and are pairwise at most
  ``ε`` apart (:func:`approximate_agreement_task`);
* the *liberal* version (Definition 4): identical, except that **any** two
  outputs in range are legal when exactly two processes participate.  The
  liberal task is what the closure machinery iterates for ``n ≥ 3`` — it
  absorbs the special power two-process executions gain from objects like
  test&set, and every lower bound for it carries over to the standard task.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import product
from typing import Iterable, Union

from repro.errors import TaskSpecificationError
from repro.tasks.inputs import full_input_complex
from repro.tasks.task import Task
from repro.topology.complex import SimplicialComplex
from repro.topology.simplex import Simplex

__all__ = [
    "grid",
    "approximate_agreement_task",
    "liberal_approximate_agreement_task",
]

Rational = Union[Fraction, int, str]


def grid(m: int) -> list[Fraction]:
    """The value grid ``{0, 1/m, 2/m, …, 1}``."""
    if m < 1:
        raise TaskSpecificationError("grid resolution m must be at least 1")
    return [Fraction(k, m) for k in range(m + 1)]


def _normalize_epsilon(epsilon: Rational, m: int) -> Fraction:
    eps = Fraction(epsilon)
    if not 0 < eps:
        raise TaskSpecificationError(f"ε must be positive, got {eps}")
    if (eps * m).denominator != 1:
        raise TaskSpecificationError(
            f"ε = {eps} must be an integral multiple of 1/m = 1/{m}"
        )
    return eps


def _range_of(sigma: Simplex) -> tuple[Fraction, Fraction]:
    values = [Fraction(v.value) for v in sigma.vertices]
    return min(values), max(values)


class _AgreementDelta:
    """Memoized ``Δ`` for (liberal) ε-approximate agreement.

    ``Δ(σ)`` depends only on ``(ID(σ), min σ, max σ)``; the cache keys on
    that triple so sweeps over many input simplices stay cheap.
    """

    def __init__(self, epsilon: Fraction, m: int, liberal: bool) -> None:
        self._epsilon = epsilon
        self._values = grid(m)
        self._liberal = liberal
        self._cache: dict[
            tuple[frozenset[int], Fraction, Fraction], SimplicialComplex
        ] = {}

    def __call__(self, sigma: Simplex) -> SimplicialComplex:
        low, high = _range_of(sigma)
        key = (sigma.ids, low, high)
        if key not in self._cache:
            self._cache[key] = self._build(sorted(sigma.ids), low, high)
        return self._cache[key]

    def _build(
        self, ids: list[int], low: Fraction, high: Fraction
    ) -> SimplicialComplex:
        window = [v for v in self._values if low <= v <= high]
        distance_free = self._liberal and len(ids) == 2
        facets = []
        for combo in product(window, repeat=len(ids)):
            if distance_free or max(combo) - min(combo) <= self._epsilon:
                facets.append(Simplex(zip(ids, combo)))
        return SimplicialComplex(facets)


def _output_complex(
    ids: list[int], epsilon: Fraction, m: int, liberal: bool
) -> SimplicialComplex:
    values = grid(m)
    facets = []
    for combo in product(values, repeat=len(ids)):
        if max(combo) - min(combo) <= epsilon:
            facets.append(Simplex(zip(ids, combo)))
    if liberal:
        # Definition 4: all 1-dimensional chromatic simplices are legal
        # output states, whatever the distance between their values.
        for index, i in enumerate(ids):
            for j in ids[index + 1 :]:
                for vi, vj in product(values, repeat=2):
                    facets.append(Simplex([(i, vi), (j, vj)]))
    return SimplicialComplex(facets)


def approximate_agreement_task(
    ids: Iterable[int], epsilon: Rational, m: int
) -> Task:
    """The ε-approximate agreement task of Definition 3.

    Parameters
    ----------
    ids:
        The participating process identifiers.
    epsilon:
        The agreement parameter; must be a multiple of ``1/m`` in ``(0, 1]``.
    m:
        The grid resolution.
    """
    id_list = sorted(set(ids))
    eps = _normalize_epsilon(epsilon, m)
    task = Task(
        f"{eps}-AA(n={len(id_list)}, m={m})",
        full_input_complex(id_list, grid(m)),
        _output_complex(id_list, eps, m, liberal=False),
        _AgreementDelta(eps, m, liberal=False),
    )
    task.epsilon = eps  # type: ignore[attr-defined]
    task.grid_resolution = m  # type: ignore[attr-defined]
    return task


def liberal_approximate_agreement_task(
    ids: Iterable[int], epsilon: Rational, m: int
) -> Task:
    """The liberal ε-approximate agreement task of Definition 4."""
    id_list = sorted(set(ids))
    eps = _normalize_epsilon(epsilon, m)
    task = Task(
        f"liberal-{eps}-AA(n={len(id_list)}, m={m})",
        full_input_complex(id_list, grid(m)),
        _output_complex(id_list, eps, m, liberal=True),
        _AgreementDelta(eps, m, liberal=True),
    )
    task.epsilon = eps  # type: ignore[attr-defined]
    task.grid_resolution = m  # type: ignore[attr-defined]
    return task
