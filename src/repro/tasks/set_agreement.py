"""k-set agreement.

The conclusion of the paper asks whether the speedup theorem can be used for
problems beyond consensus and approximate agreement; k-set agreement is the
canonical next candidate (Borowsky–Gafni, Saks–Zaharoglou).  Each process
outputs the input of some participant, and at most ``k`` distinct values may
be output overall.  ``k = 1`` is consensus; ``k = n`` is trivial.

The library's closure engine applies unchanged; ``benchmarks/`` exercises it
on the 3-process, 2-set-agreement instance.
"""

from __future__ import annotations

from itertools import product
from typing import Hashable, Iterable, Sequence

from repro.errors import TaskSpecificationError
from repro.tasks.inputs import full_input_complex
from repro.tasks.task import Task
from repro.topology.complex import SimplicialComplex
from repro.topology.simplex import Simplex

__all__ = ["set_agreement_task"]


def set_agreement_task(
    ids: Iterable[int], values: Sequence[Hashable], k: int
) -> Task:
    """The k-set agreement task over a finite value domain.

    ``Δ(σ)``: every output is the input of some participant of ``σ``, and
    the participants output at most ``k`` distinct values in total.
    """
    id_list = sorted(set(ids))
    value_list = list(values)
    if k < 1:
        raise TaskSpecificationError("k must be at least 1")

    input_complex = full_input_complex(id_list, value_list)
    output_facets = [
        Simplex(zip(id_list, combo))
        for combo in product(value_list, repeat=len(id_list))
        if len(set(combo)) <= k
    ]
    output_complex = SimplicialComplex(output_facets)

    def delta(sigma: Simplex) -> SimplicialComplex:
        inputs = {vertex.value for vertex in sigma.vertices}
        participants = sorted(sigma.ids)
        facets = [
            Simplex(zip(participants, combo))
            for combo in product(sorted(inputs, key=value_list.index),
                                 repeat=len(participants))
            if len(set(combo)) <= k
        ]
        return SimplicialComplex(facets)

    label = f"{k}-set-agreement(n={len(id_list)}, |V|={len(value_list)})"
    return Task(label, input_complex, output_complex, delta)
