"""The task triple ``Π = (I, O, Δ)``.

``Δ`` maps each input simplex to the complex of its legal outputs, on the
same colors.  The paper deliberately does **not** require ``Δ`` to be a
carrier (monotone) map — local tasks (Definition 1) are not monotone — so
:class:`Task` validates only chromaticity and containment in ``O``, and
exposes monotonicity as a queryable property.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.errors import TaskSpecificationError
from repro.topology.carrier import CarrierMap
from repro.topology.complex import SimplicialComplex
from repro.topology.simplex import Simplex

__all__ = ["Task"]

DeltaFunction = Callable[[Simplex], SimplicialComplex]


class Task:
    """An ``n``-process task ``(I, O, Δ)``.

    Parameters
    ----------
    name:
        Human-readable label used in reports.
    input_complex:
        The complex ``I`` of legal input states.
    output_complex:
        The complex ``O`` of legal output states.
    delta:
        Either a callable ``σ ↦ SimplicialComplex`` or an explicit mapping;
        results are memoized through a :class:`CarrierMap`.
    """

    def __init__(
        self,
        name: str,
        input_complex: SimplicialComplex,
        output_complex: SimplicialComplex,
        delta: DeltaFunction,
    ) -> None:
        self.name = name
        self.input_complex = input_complex
        self.output_complex = output_complex
        self._delta = CarrierMap(input_complex, delta, name=f"Δ[{name}]")

    # ------------------------------------------------------------------
    # Specification access
    # ------------------------------------------------------------------
    def delta(self, sigma: Simplex) -> SimplicialComplex:
        """The complex ``Δ(σ)`` of legal outputs for input ``σ``."""
        return self._delta(sigma)

    @property
    def delta_map(self) -> CarrierMap:
        """The memoized ``Δ`` as a :class:`CarrierMap`."""
        return self._delta

    def is_legal_output(self, sigma: Simplex, tau: Simplex) -> bool:
        """``True`` iff ``τ ∈ Δ(σ)`` with matching colors."""
        return tau.ids == sigma.ids and tau in self.delta(sigma)

    # ------------------------------------------------------------------
    # Well-formedness
    # ------------------------------------------------------------------
    def validate(
        self, simplices: Optional[Iterable[Simplex]] = None
    ) -> None:
        """Check chromaticity and output-containment of ``Δ``.

        Raises
        ------
        TaskSpecificationError
            If some ``Δ(σ)`` uses colors outside ``ID(σ)`` or contains
            simplices not in the output complex.
        """
        pool = (
            list(simplices)
            if simplices is not None
            else list(self.input_complex)
        )
        for sigma in pool:
            allowed = self.delta(sigma)
            if not allowed.ids <= sigma.ids:
                raise TaskSpecificationError(
                    f"{self.name}: Δ({sigma!r}) uses colors "
                    f"{sorted(allowed.ids - sigma.ids)} outside ID(σ)"
                )
            stray = allowed.simplices - self.output_complex.simplices
            if stray:
                sample = next(iter(stray))
                raise TaskSpecificationError(
                    f"{self.name}: Δ({sigma!r}) contains {sample!r}, which "
                    "is not a simplex of the output complex"
                )

    def is_monotone(
        self, simplices: Optional[Iterable[Simplex]] = None
    ) -> bool:
        """Whether ``Δ`` is a carrier map on the given simplices."""
        return self._delta.is_monotone(simplices)

    # ------------------------------------------------------------------
    # Derived tasks
    # ------------------------------------------------------------------
    def restricted_to(self, input_complex: SimplicialComplex) -> "Task":
        """The same task on a subcomplex of the input complex.

        Used by Theorem 4's recursion, which repeatedly restricts
        approximate agreement to a shrinking set of participants.
        """
        stray = input_complex.simplices - self.input_complex.simplices
        if stray:
            raise TaskSpecificationError(
                "restriction requires a subcomplex of the input complex"
            )
        return Task(
            f"{self.name}|restricted",
            input_complex,
            self.output_complex,
            self.delta,
        )

    def with_name(self, name: str) -> "Task":
        """A renamed view of the same task."""
        return Task(name, self.input_complex, self.output_complex, self.delta)

    def specification_table(
        self, simplices: Optional[Iterable[Simplex]] = None
    ) -> dict[Simplex, SimplicialComplex]:
        """Materialize ``Δ`` into an explicit table (small tasks only)."""
        pool = (
            list(simplices)
            if simplices is not None
            else list(self.input_complex)
        )
        return {sigma: self.delta(sigma) for sigma in pool}

    def same_specification_as(
        self,
        other: "Task",
        simplices: Optional[Iterable[Simplex]] = None,
    ) -> bool:
        """``True`` iff both tasks agree on ``Δ`` over the given simplices.

        This is the equality used by fixed-point arguments (e.g. "the
        closure of consensus *is* consensus"): same inputs, same legal
        outputs per input.  Output-complex padding is ignored.
        """
        if simplices is None:
            if self.input_complex != other.input_complex:
                return False
            pool = list(self.input_complex)
        else:
            pool = list(simplices)
        return all(
            self.delta(sigma).simplices == other.delta(sigma).simplices
            for sigma in pool
        )

    def __repr__(self) -> str:
        return (
            f"Task({self.name!r}, inputs={self.input_complex!r}, "
            f"outputs={self.output_complex!r})"
        )
