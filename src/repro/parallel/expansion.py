"""Parallel protocol expansion: fan ``Ξ`` out per simplex.

The round operator's cost is the per-simplex calls to
``model.one_round_complex`` (13 facets per round per triangle in the
``n = 3`` IIS model, so ``13^t`` growth) — each call independent of the
others.  The helpers here ship those calls to the pool as wire-encoded
chunks, decode the results in the parent, and *seed the parent's memo
caches* with them, so the serial assembly code that follows sees pure
cache hits and produces exactly the complex the serial operator would.

Workers receive a *cold* copy of the model (memo layers detached) so
payload pickles stay a few hundred bytes regardless of how much the
parent has already expanded.
"""

from __future__ import annotations

from copy import copy
from repro.models.base import ComputationModel
from repro.models.protocol import ProtocolOperator
from repro.parallel.pool import chunked
from repro.parallel.supervisor import supervised_map
from repro.telemetry import span
from repro.topology.complex import SimplicialComplex
from repro.topology.simplex import Simplex
from repro.topology.wire import (
    WireComplex,
    WireSimplex,
    decode_complex,
    decode_simplex,
    encode_complex,
    encode_simplex,
)

__all__ = [
    "cold_model",
    "expand_one_round",
    "materialize_protocol_complexes",
    "parallel_of_complex",
]

#: Memo attributes detached from models before pickling (they are
#: rebuilt lazily in the worker; see ``repro.models.base``).
_MEMO_ATTRS = (
    "_one_round_cache",
    "_memo_table",
    "_one_round_stats",
    "_view_map_cache",
    "_view_map_stats",
)

#: Chunks handed out per worker — small enough to load-balance uneven
#: expansions, large enough to amortize pickling.
_CHUNKS_PER_WORKER = 4


def _sigma_key(sigma: Simplex) -> tuple:
    return sigma._sort_key()


def cold_model(model: ComputationModel) -> ComputationModel:
    """A shallow copy of ``model`` with its memo layers detached.

    The copy shares the model's defining parameters but none of the
    cached complexes, so it pickles small; workers rebuild their own
    caches lazily.
    """
    clone = copy(model)
    for name in _MEMO_ATTRS:
        clone.__dict__.pop(name, None)
    return clone


ExpandPayload = tuple[ComputationModel, tuple[WireSimplex, ...]]


def _expand_chunk(payload: ExpandPayload) -> tuple[WireComplex, ...]:
    model, wires = payload
    return tuple(
        encode_complex(model.one_round_complex(decode_simplex(wire)))
        for wire in wires
    )


ProtocolPayload = tuple[ComputationModel, tuple[WireSimplex, ...], int]


def _protocol_chunk(payload: ProtocolPayload) -> tuple[WireComplex, ...]:
    model, wires, rounds = payload
    operator = ProtocolOperator(model)
    return tuple(
        encode_complex(operator.of_simplex(decode_simplex(wire), rounds))
        for wire in wires
    )


def expand_one_round(
    model: ComputationModel,
    base: SimplicialComplex,
    workers: int,
) -> SimplicialComplex:
    """One application of ``Ξ`` to ``base``, fanned out per simplex.

    Equals ``SimplicialComplex`` of the union of
    ``model.one_round_complex(σ)`` facets over every simplex ``σ`` of
    ``base`` — the exact serial semantics — with the per-simplex builds
    sharded over the pool and folded back through the model's memo.
    """
    ordered = sorted(base, key=_sigma_key)
    missing = [
        sigma
        for sigma in ordered
        if model.cached_one_round(sigma) is None
    ]
    with span(
        "parallel/expand-one-round",
        model=model.name,
        simplices=len(ordered),
        missing=len(missing),
        workers=workers,
    ):
        if missing:
            clone = cold_model(model)
            chunks = chunked(
                [encode_simplex(sigma) for sigma in missing],
                workers * _CHUNKS_PER_WORKER,
            )
            # Supervised: a worker lost mid-expansion is retried (and
            # the pool rebuilt) instead of failing the whole round; a
            # chunk that still fails raises QuarantineError rather than
            # silently truncating the complex.
            outcome = supervised_map(
                _expand_chunk,
                [(clone, chunk) for chunk in chunks],
                workers=workers,
                label="expand-one-round",
            )
            position = 0
            for encoded in outcome.results:
                assert encoded is not None  # no early stop requested
                for wire in encoded:
                    model.seed_one_round(
                        missing[position], decode_complex(wire)
                    )
                    position += 1
        pieces: list[Simplex] = []
        for sigma in ordered:
            pieces.extend(model.one_round_complex(sigma).facets)
        return SimplicialComplex(pieces)


def materialize_protocol_complexes(
    operator: ProtocolOperator,
    sigmas: list[Simplex],
    rounds: int,
    workers: int,
) -> dict[Simplex, SimplicialComplex]:
    """Compute ``P^(rounds)(σ)`` for many ``σ`` concurrently.

    Each worker runs the full (serial) operator recursion for its chunk
    of input simplices; results are folded into ``operator``'s memo, so
    follow-up calls — the solvability constraint builder, audits — are
    cache hits.  Returns the complete ``σ → P^(rounds)(σ)`` table.
    """
    ordered = sorted(set(sigmas), key=_sigma_key)
    missing = [
        sigma
        for sigma in ordered
        if operator.cached_of_simplex(sigma, rounds) is None
    ]
    with span(
        "parallel/materialize-protocol",
        model=operator.model.name,
        rounds=rounds,
        simplices=len(ordered),
        missing=len(missing),
        workers=workers,
    ):
        if missing:
            clone = cold_model(operator.model)
            chunks = chunked(
                [encode_simplex(sigma) for sigma in missing],
                workers * _CHUNKS_PER_WORKER,
            )
            outcome = supervised_map(
                _protocol_chunk,
                [(clone, chunk, rounds) for chunk in chunks],
                workers=workers,
                label="protocol-of-simplex",
            )
            position = 0
            for encoded in outcome.results:
                assert encoded is not None  # no early stop requested
                for wire in encoded:
                    operator.seed_of_simplex(
                        missing[position], rounds, decode_complex(wire)
                    )
                    position += 1
        return {
            sigma: operator.of_simplex(sigma, rounds) for sigma in ordered
        }


def parallel_of_complex(
    operator: ProtocolOperator,
    base: SimplicialComplex,
    rounds: int,
    workers: int,
) -> SimplicialComplex:
    """``P^(rounds)`` of a whole complex with per-simplex fan-out.

    Produces exactly ``operator.of_complex(base, rounds)`` — the merge
    is the same pruning union over the same per-simplex complexes.
    """
    table = materialize_protocol_complexes(
        operator, list(base), rounds, workers
    )
    merged: list[Simplex] = []
    for simplex in base:
        merged.extend(table[simplex].facets)
    return SimplicialComplex(merged)
