"""Parallel decision-map search: one worker per constraint component.

After :meth:`SolvabilityProblem.prepare_search` the instance has split
into connected components of the constraint graph that share only the
forced (singleton-domain) vertices — independent sub-searches.  Each
component ships to a worker as a self-contained sub-problem (its pruned
domains, the constraints touching it, and the forced vertices pinned as
singleton domains), wire-encoded through a :class:`VertexTable`.

Workers search **without** re-running arc-consistency, so the variable
order — and therefore the discovered assignment — is exactly the one the
serial per-component backtracking would produce; parallel and serial
solves return the same map, not merely equi-solvable verdicts.  The
first refuted component cancels the remaining ones (``stop_when`` early
cancel): an unsolvable instance costs one component's refutation, as in
the serial engine.
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.core.solvability import (
    DecisionMap,
    SolvabilityProblem,
    build_solvability_problem,
)
from repro.models.protocol import ProtocolOperator
from repro.parallel.expansion import materialize_protocol_complexes
from repro.parallel.supervisor import supervised_map
from repro.tasks.task import Task
from repro.telemetry import span
from repro.topology.simplex import Simplex
from repro.topology.vertex import Vertex
from repro.topology.wire import VertexTable

__all__ = ["parallel_find_decision_map"]

#: Wire form of one component sub-problem: the interned pair table,
#: per-vertex candidate index tuples, constraint (facet mask, family id)
#: pairs, the deduplicated allowed families as mask tuples, and rounds.
ComponentPayload = tuple[
    tuple[tuple[int, Hashable], ...],
    tuple[tuple[int, tuple[int, ...]], ...],
    tuple[tuple[int, int], ...],
    tuple[tuple[int, ...], ...],
    int,
]


def _encode_component(
    problem: SolvabilityProblem,
    component: list[Vertex],
    domains: dict[Vertex, list[Vertex]],
    assignment: dict[Vertex, Vertex],
) -> ComponentPayload:
    member = set(component)
    table = VertexTable()
    candidates: dict[Vertex, tuple[Vertex, ...]] = {
        vertex: tuple(domains[vertex]) for vertex in component
    }
    families: list[tuple[int, ...]] = []
    family_ids: dict[frozenset[Simplex], int] = {}
    constraints: list[tuple[int, int]] = []
    for facet, allowed in problem.constraints:
        if member.isdisjoint(facet.vertices):
            continue
        # Facet vertices outside the component are forced (a facet with
        # two free vertices would have merged their components); pin
        # them as singleton domains so the worker assigns them up front
        # exactly like the parent did.
        for vertex in facet.vertices:
            if vertex not in member:
                candidates.setdefault(vertex, (assignment[vertex],))
        family_id = family_ids.get(allowed)
        if family_id is None:
            family_id = family_ids[allowed] = len(families)
            families.append(
                tuple(
                    sorted(
                        table.encode_mask_interning(simplex)
                        for simplex in allowed
                    )
                )
            )
        constraints.append(
            (table.encode_mask_interning(facet), family_id)
        )
    encoded_candidates = tuple(
        (
            table.add(vertex),
            tuple(table.add(option) for option in options),
        )
        for vertex, options in candidates.items()
    )
    return (
        table.pairs,
        encoded_candidates,
        tuple(constraints),
        tuple(families),
        problem.rounds,
    )


def _solve_component(
    payload: ComponentPayload,
) -> Optional[tuple[tuple[int, int], ...]]:
    pairs, encoded_candidates, constraints, families, rounds = payload
    table = VertexTable(pairs)
    candidates = {
        table.vertex_at(index): tuple(
            table.vertex_at(option) for option in options
        )
        for index, options in encoded_candidates
    }
    decoded_families = [
        frozenset(table.decode_mask(mask) for mask in masks)
        for masks in families
    ]
    decoded_constraints = [
        (table.decode_mask(mask), decoded_families[family_id])
        for mask, family_id in constraints
    ]
    problem = SolvabilityProblem(candidates, decoded_constraints, rounds)
    # The shipped domains are already arc-consistent (the parent
    # propagated before decomposing); skipping re-propagation keeps the
    # worker's variable order — hence its discovered assignment —
    # identical to the serial component search.
    found = problem.solve(use_propagation=False)
    if found is None:
        return None
    return tuple(
        sorted(
            (table.index_of(vertex), table.index_of(image))
            for vertex, image in found.assignment.items()
        )
    )


def parallel_find_decision_map(
    task: Task,
    operator: ProtocolOperator,
    rounds: int,
    simplices: list[Simplex],
    workers: int,
) -> Optional[DecisionMap]:
    """The parallel twin of :func:`~repro.core.solvability.find_decision_map`.

    Pre-warms the per-simplex protocol complexes on the pool, compiles
    the constraint problem in the parent, then fans the independent
    components out with early cancel on the first refutation.  Returns
    exactly what the serial search would (same verdict, same map).
    """
    with span(
        "parallel/solve",
        model=operator.model.name,
        rounds=rounds,
        workers=workers,
    ) as solve_span:
        materialize_protocol_complexes(operator, simplices, rounds, workers)
        problem = build_solvability_problem(
            simplices,
            task.delta,
            lambda sigma: operator.of_simplex(sigma, rounds),
            rounds=rounds,
        )
        prepared = problem.prepare_search()
        if prepared is None:
            solve_span.set_attribute("solvable", False)
            return None
        domains, assignment, components = prepared
        solve_span.set_attribute("components", len(components))
        if len(components) <= 1:
            # One component cannot be split; search it in-process.
            for component in components:
                if not problem.search_component(
                    component, domains, assignment
                ):
                    solve_span.set_attribute("solvable", False)
                    return None
            solve_span.set_attribute("solvable", True)
            return DecisionMap(dict(assignment), problem.rounds)
        payloads = [
            _encode_component(problem, component, domains, assignment)
            for component in components
        ]
        # Supervised: the stop_when predicate treats None as a
        # refutation, so it must only ever see *successful* results —
        # supervised_map guarantees exactly that (failed attempts are
        # retried, never surfaced to stop_when), where a bare
        # parallel_map under a flaky pool could mistake a crash for an
        # unsolvable component.
        outcome = supervised_map(
            _solve_component,
            payloads,
            workers=workers,
            label="solve-component",
            stop_when=lambda solved: solved is None,
        )
        if outcome.stopped_early or any(
            solved is None for solved in outcome.results
        ):
            solve_span.set_attribute("solvable", False)
            return None
        for payload, solved in zip(payloads, outcome.results):
            table = VertexTable(payload[0])
            for vertex_index, image_index in solved:
                assignment[table.vertex_at(vertex_index)] = table.vertex_at(
                    image_index
                )
        solve_span.set_attribute("solvable", True)
        return DecisionMap(dict(assignment), problem.rounds)
