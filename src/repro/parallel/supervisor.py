"""Fault-tolerant supervision of :func:`~repro.parallel.pool.parallel_map`.

:func:`supervised_map` wraps the raw fan-out primitive with the
resilience story a paper about surviving adversarial asynchrony ought
to have for its own execution engine:

* **bounded retries with seed-deterministic backoff** — each task gets
  ``retries + 1`` attempts; the delay before a re-attempt is exponential
  in the attempt number with jitter derived arithmetically from
  ``(seed, index, attempt)``, never from ambient randomness, and slept
  through the ambient telemetry clock so tests can script it;
* **per-task deadlines** — ``task_timeout`` classifies an attempt whose
  busy time exceeds the budget as a ``"timeout"`` failure (retriable,
  then quarantinable), distinct from the whole-map ``deadline_at``
  which bounds the map as a whole;
* **pool recovery** — a ``BrokenProcessPool`` (a worker died) evicts
  the broken executor via :func:`~repro.parallel.pool.discard_pool`,
  rebuilds on the next round, and re-dispatches *only* the tasks that
  had not completed in a prior round, preserving the input-order fold;
* **poison-task quarantine** — a task whose *final* attempt still
  fails is quarantined with a structured :class:`QuarantineRecord`
  (the full :class:`TaskAttempt` history rides along) instead of
  poisoning the whole map;
* **circuit breaker** — more than ``breaker_threshold`` pool rebuilds
  degrades the remaining tasks to in-process serial execution, which
  produces bit-identical results because every shipped function is
  pure in its payload (RPR009 enforces exactly this).

At-least-once caveat: a pool break loses the whole in-flight round, so
tasks may execute more than once.  Shipped functions must therefore be
pure in their payload — the same contract the determinism audits
(AUD012/AUD014) already demand.
"""

from __future__ import annotations

import os
from concurrent.futures import BrokenExecutor, CancelledError
from dataclasses import dataclass, field
from random import Random
from typing import Callable, Optional, Sequence

import repro.parallel.pool as pool_module
from repro.errors import QuarantineError, ReproError, WorkerCrashError
from repro.faults.executor import ExecutorFaultPlan, apply_fault
from repro.parallel.pool import discard_pool, parallel_map, resolve_workers
from repro.telemetry import ambient_clock, default_registry, span

__all__ = [
    "SupervisorConfig",
    "TaskAttempt",
    "QuarantineRecord",
    "SupervisedOutcome",
    "set_default_supervisor",
    "get_default_supervisor",
    "resolve_supervisor",
    "backoff_delay",
    "supervised_map",
]

#: Mixing constants for the backoff jitter stream; distinct from the
#: fault-plan strides so backoff and fault decisions are uncorrelated.
_JITTER_STRIDE = 999_983
_ATTEMPT_STRIDE = 104_729
_SEED_MODULUS = 2**31 - 1


@dataclass(frozen=True)
class SupervisorConfig:
    """Retry, timeout, backoff, and degradation policy for one map.

    Parameters
    ----------
    retries:
        Re-attempts allowed per task beyond the first (so each task
        runs at most ``retries + 1`` times before quarantine).
    task_timeout:
        Per-attempt busy-time budget in seconds (``None`` disables).
        Classification is post-hoc — a running task cannot be killed
        from the parent — so the whole-map ``deadline_at`` remains the
        bound on outright hangs.
    backoff_base, backoff_cap, backoff_jitter:
        Re-attempt ``k`` (1-based) waits
        ``min(cap, base * 2**(k-1)) * (1 + jitter * u)`` seconds where
        ``u`` is a deterministic uniform draw from ``(seed, index, k)``.
    seed:
        Root seed of the jitter stream.
    degrade:
        Whether tripping the circuit breaker falls back to in-process
        serial execution (``False`` raises
        :class:`~repro.errors.WorkerCrashError` instead).
    breaker_threshold:
        Pool rebuilds tolerated before the breaker trips.
    fault_plan:
        Optional :class:`~repro.faults.executor.ExecutorFaultPlan`
        applied around every attempt — the chaos hook AUD014 and the
        CLI ``--inject-exec-faults`` use.
    """

    retries: int = 2
    task_timeout: Optional[float] = None
    backoff_base: float = 0.01
    backoff_cap: float = 1.0
    backoff_jitter: float = 0.5
    seed: int = 0
    degrade: bool = True
    breaker_threshold: int = 2
    fault_plan: Optional[ExecutorFaultPlan] = None

    def validate(self) -> None:
        if self.retries < 0:
            raise ReproError(
                f"retries must be non-negative, got {self.retries}"
            )
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ReproError(
                f"task_timeout must be positive, got {self.task_timeout}"
            )
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ReproError("backoff base/cap must be non-negative")
        if self.backoff_jitter < 0:
            raise ReproError(
                f"backoff_jitter must be non-negative, "
                f"got {self.backoff_jitter}"
            )
        if self.breaker_threshold < 0:
            raise ReproError(
                f"breaker_threshold must be non-negative, "
                f"got {self.breaker_threshold}"
            )
        if self.fault_plan is not None:
            self.fault_plan.validate()


_default_supervisor: Optional[SupervisorConfig] = None


def set_default_supervisor(config: Optional[SupervisorConfig]) -> None:
    """Set the process-wide supervision policy (``None`` to unset).

    The CLI ``--retries/--task-timeout/--no-degrade`` flags land here,
    mirroring :func:`~repro.parallel.pool.set_default_workers`.
    """
    global _default_supervisor
    if config is not None:
        config.validate()
    _default_supervisor = config


def get_default_supervisor() -> Optional[SupervisorConfig]:
    """The process-wide policy set via :func:`set_default_supervisor`."""
    return _default_supervisor


def resolve_supervisor(
    config: Optional[SupervisorConfig] = None,
) -> SupervisorConfig:
    """Explicit config, else the process default, else stock policy."""
    if config is not None:
        config.validate()
        return config
    if _default_supervisor is not None:
        return _default_supervisor
    return SupervisorConfig()


def backoff_delay(
    config: SupervisorConfig, index: int, attempt: int
) -> float:
    """Seconds to wait before re-attempt ``attempt`` (1-based) of a task.

    Pure in ``(config, index, attempt)`` — the jitter draw comes from a
    seeded Mersenne Twister, so a replayed campaign backs off through
    the very same delays.
    """
    if attempt < 1:
        return 0.0
    raw = config.backoff_base * (2 ** (attempt - 1))
    capped = min(config.backoff_cap, raw)
    if capped <= 0:
        return 0.0
    mixed = (
        config.seed * _JITTER_STRIDE
        + index * _ATTEMPT_STRIDE
        + attempt
    ) % _SEED_MODULUS
    return capped * (1.0 + config.backoff_jitter * Random(mixed).random())


@dataclass(frozen=True)
class TaskAttempt:
    """One recorded attempt of one task.

    ``kind`` is one of ``"ok"`` (a *retried* task finally succeeded;
    first-attempt successes are not recorded), ``"fallback"`` (the
    final attempt succeeded through the fallback callable), ``"error"``
    (the attempt raised), ``"timeout"`` (busy time exceeded
    ``task_timeout``), or ``"pool-broken"`` (the attempt was lost with
    the pool; the task itself may have been innocent).
    """

    index: int
    attempt: int
    kind: str
    error: Optional[str] = None
    message: Optional[str] = None
    busy_s: float = 0.0
    backoff_s: float = 0.0


@dataclass(frozen=True)
class QuarantineRecord:
    """A task given up on after its final attempt failed."""

    index: int
    error: Optional[str]
    message: Optional[str]
    attempts: int


@dataclass
class SupervisedOutcome:
    """What :func:`supervised_map` produced.

    Extends the :class:`~repro.parallel.pool.MapOutcome` shape with the
    supervision ledger: the attempt history, quarantined tasks, and the
    retry/rebuild/degradation counters.  ``results`` entries are
    ``None`` for cancelled *and* quarantined tasks; consult
    ``quarantined`` to tell them apart.
    """

    results: list
    completed: int = 0
    stopped_early: bool = False
    worker_slots: dict = field(default_factory=dict)
    attempts: list = field(default_factory=list)
    quarantined: list = field(default_factory=list)
    retries: int = 0
    pool_rebuilds: int = 0
    degraded: bool = False


def _supervised_invoke(payload: tuple) -> tuple:
    """Run one supervised attempt (ships to workers; must stay pure).

    ``payload`` is ``(fn, index, value, attempt, timeout, plan,
    fallback, final)``; the return record is ``(index, attempt, kind,
    error, message, result, pid)`` with ``kind`` as documented on
    :class:`TaskAttempt`.  Exceptions never escape: they are folded
    into ``"error"`` records (or redeemed by ``fallback`` on the final
    attempt) so one poisoned task cannot take down a drain loop.
    """
    fn, index, value, attempt, timeout, plan, fallback, final = payload
    clock = ambient_clock()
    started = clock.now()
    try:
        if plan is not None:
            apply_fault(plan, index, attempt, pool_module._in_worker)
        result = fn(value)
    except Exception as exc:
        if final and fallback is not None:
            try:
                result = fallback(value)
            except Exception as fallback_exc:
                return (
                    index,
                    attempt,
                    "error",
                    type(fallback_exc).__name__,
                    str(fallback_exc),
                    None,
                    os.getpid(),
                )
            return (
                index,
                attempt,
                "fallback",
                type(exc).__name__,
                str(exc),
                result,
                os.getpid(),
            )
        return (
            index,
            attempt,
            "error",
            type(exc).__name__,
            str(exc),
            None,
            os.getpid(),
        )
    busy = clock.now() - started
    if timeout is not None and busy > timeout:
        return (
            index,
            attempt,
            "timeout",
            "TaskTimeout",
            f"attempt busy {busy:.3f}s exceeded budget {timeout:.3f}s",
            None,
            os.getpid(),
        )
    return index, attempt, "ok", None, None, result, os.getpid()


class _Supervision:
    """Mutable per-map state shared by the pool and serial paths."""

    def __init__(
        self,
        fn: Callable,
        payloads: Sequence,
        config: SupervisorConfig,
        fallback: Optional[Callable],
        outcome: SupervisedOutcome,
    ) -> None:
        self.fn = fn
        self.payloads = payloads
        self.config = config
        self.fallback = fallback
        self.outcome = outcome
        self.attempt_of = [0] * len(payloads)
        self.pending = list(range(len(payloads)))
        registry = default_registry()
        self.retry_counter = registry.counter("supervisor.retries")
        self.rebuild_counter = registry.counter("supervisor.pool-rebuilds")
        self.quarantine_counter = registry.counter("supervisor.quarantined")
        self.degrade_counter = registry.counter("supervisor.degraded")
        self.backoff_hist = registry.histogram("supervisor.backoff-s")

    def attempt_payload(self, index: int) -> tuple:
        attempt = self.attempt_of[index]
        return (
            self.fn,
            index,
            self.payloads[index],
            attempt,
            self.config.task_timeout,
            self.config.fault_plan,
            self.fallback,
            attempt >= self.config.retries,
        )

    def fold_record(self, record: tuple) -> float:
        """Fold one attempt record; returns the backoff this task owes.

        A positive return means the task stays pending and must not be
        re-dispatched before the delay elapses; ``0.0`` means the task
        left the pending set (success or quarantine).
        """
        index, attempt, kind, error, message, result, _pid = record
        if kind in ("ok", "fallback"):
            if attempt > 0 or kind == "fallback":
                self.outcome.attempts.append(
                    TaskAttempt(index, attempt, kind, error, message)
                )
            self.outcome.results[index] = result
            self.outcome.completed += 1
            self.pending.remove(index)
            return 0.0
        if attempt >= self.config.retries:
            self.outcome.attempts.append(
                TaskAttempt(index, attempt, kind, error, message)
            )
            self.outcome.quarantined.append(
                QuarantineRecord(index, error, message, attempt + 1)
            )
            self.quarantine_counter.inc()
            self.pending.remove(index)
            return 0.0
        self.attempt_of[index] = attempt + 1
        self.outcome.retries += 1
        self.retry_counter.inc()
        delay = backoff_delay(self.config, index, attempt + 1)
        self.outcome.attempts.append(
            TaskAttempt(
                index, attempt, kind, error, message, backoff_s=delay
            )
        )
        self.backoff_hist.observe(delay)
        return delay

    def absorb_pool_break(self) -> None:
        """Account a broken pool: every pending attempt was lost."""
        self.outcome.pool_rebuilds += 1
        self.rebuild_counter.inc()
        for index in self.pending:
            attempt = self.attempt_of[index]
            self.outcome.attempts.append(
                TaskAttempt(index, attempt, "pool-broken")
            )
            self.attempt_of[index] = attempt + 1
            self.outcome.retries += 1
            self.retry_counter.inc()


def _run_serial(
    state: _Supervision,
    stop_when: Optional[Callable],
    deadline_at: Optional[float],
) -> None:
    """Drain the pending set in-process with per-task retry loops."""
    registry = default_registry()
    tasks = registry.counter("parallel.tasks")
    busy = registry.histogram("parallel.task-busy-s")
    clock = ambient_clock()
    for index in list(state.pending):
        last_kind = None
        while index in state.pending:
            if deadline_at is not None and clock.now() > deadline_at:
                state.outcome.stopped_early = True
                return
            attempt_started = clock.now()
            record = _supervised_invoke(state.attempt_payload(index))
            last_kind = record[2]
            # Accounting parity with parallel_map's serial path: every
            # executed attempt counts as a task with its busy time.
            tasks.inc()
            busy.observe(clock.now() - attempt_started)
            delay = state.fold_record(record)
            if delay > 0:
                clock.sleep(delay)
        if (
            last_kind == "ok"
            and stop_when is not None
            and stop_when(state.outcome.results[index])
        ):
            state.outcome.stopped_early = True
            return


def supervised_map(
    fn: Callable,
    payloads: Sequence,
    workers: Optional[int] = None,
    config: Optional[SupervisorConfig] = None,
    label: str = "tasks",
    stop_when: Optional[Callable] = None,
    deadline_at: Optional[float] = None,
    fallback: Optional[Callable] = None,
    on_quarantine: str = "raise",
) -> SupervisedOutcome:
    """Run ``fn`` over ``payloads`` with retries, recovery, degradation.

    The signature extends :func:`~repro.parallel.pool.parallel_map`
    with the supervision knobs; like it, ``fn`` (and ``fallback``, when
    given) must be module-level picklable callables, and results land
    in input order.  ``fallback`` runs only when the *final* attempt of
    a task raises — a last-resort alternative computation whose result
    is recorded with ``kind="fallback"``.

    ``on_quarantine`` is ``"raise"`` (finish everything else, then
    raise :class:`~repro.errors.QuarantineError` carrying the records)
    or ``"keep"`` (leave quarantined slots ``None`` and report them in
    ``SupervisedOutcome.quarantined``).
    """
    if on_quarantine not in ("raise", "keep"):
        raise ReproError(
            f"on_quarantine must be 'raise' or 'keep', "
            f"got {on_quarantine!r}"
        )
    cfg = resolve_supervisor(config)
    resolved = resolve_workers(workers)
    outcome = SupervisedOutcome(results=[None] * len(payloads))
    state = _Supervision(fn, payloads, cfg, fallback, outcome)
    with span(
        "parallel/supervised-map", label=label, workers=resolved
    ) as sup_span:
        if resolved <= 1 or len(payloads) <= 1:
            _run_serial(state, stop_when, deadline_at)
        else:
            _run_pooled(state, resolved, label, stop_when, deadline_at)
        sup_span.set_attribute("completed", outcome.completed)
        sup_span.set_attribute("retries", outcome.retries)
        sup_span.set_attribute("pool_rebuilds", outcome.pool_rebuilds)
        sup_span.set_attribute("quarantined", len(outcome.quarantined))
        sup_span.set_attribute("degraded", outcome.degraded)
        sup_span.set_attribute("stopped_early", outcome.stopped_early)
    if outcome.quarantined and on_quarantine == "raise":
        raise QuarantineError(label, tuple(outcome.quarantined))
    return outcome


def _wrap_stop(stop_when: Optional[Callable]) -> Optional[Callable]:
    """Lift a result predicate to attempt records (``"ok"`` only).

    Failed attempts carry ``None`` results; without the kind guard a
    predicate like ``lambda r: r is None`` (the solver's refutation
    check) would treat every transient failure as a refutation.
    """
    if stop_when is None:
        return None

    def stop_on_record(record: tuple) -> bool:
        return record[2] == "ok" and stop_when(record[5])

    return stop_on_record


def _run_pooled(
    state: _Supervision,
    resolved: int,
    label: str,
    stop_when: Optional[Callable],
    deadline_at: Optional[float],
) -> None:
    """Round-based pool drain with break recovery and the breaker."""
    cfg = state.config
    clock = ambient_clock()
    record_stop = _wrap_stop(stop_when)
    while state.pending:
        if deadline_at is not None and clock.now() > deadline_at:
            state.outcome.stopped_early = True
            return
        round_indices = list(state.pending)
        round_payloads = [
            state.attempt_payload(index) for index in round_indices
        ]
        try:
            mapped = parallel_map(
                _supervised_invoke,
                round_payloads,
                workers=resolved,
                label=label,
                stop_when=record_stop,
                deadline_at=deadline_at,
            )
        except (BrokenExecutor, CancelledError):
            discard_pool(resolved)
            state.absorb_pool_break()
            if state.outcome.pool_rebuilds > cfg.breaker_threshold:
                if not cfg.degrade:
                    raise WorkerCrashError(
                        f"pool for {label!r} broke "
                        f"{state.outcome.pool_rebuilds} times "
                        f"(threshold {cfg.breaker_threshold}) and "
                        "degradation is disabled"
                    ) from None
                state.outcome.degraded = True
                state.degrade_counter.inc()
                _run_serial(state, stop_when, deadline_at)
                return
            continue
        for pid in mapped.worker_slots:
            state.outcome.worker_slots.setdefault(
                pid, len(state.outcome.worker_slots)
            )
        max_delay = 0.0
        for record in mapped.results:
            if record is None:
                continue
            max_delay = max(max_delay, state.fold_record(record))
        if mapped.stopped_early:
            state.outcome.stopped_early = True
            return
        if max_delay > 0:
            clock.sleep(max_delay)
