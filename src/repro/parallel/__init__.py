"""Process-pool parallel execution engine.

The substrate's three embarrassingly-parallel fan-outs — protocol round
expansion (``Ξ`` per input facet), decision-map search (independent
connected components), and chaos campaigns (independent seeded trials) —
all route through one stdlib :mod:`concurrent.futures` pool managed
here.  Everything stays deterministic by construction:

* ``workers=1`` (the default) is a *serial fallback* that runs the exact
  pre-engine code paths, so results are bit-identical to the unparallel
  library;
* work is sharded deterministically (sorted inputs, contiguous chunks)
  and results are folded in input order, never completion order;
* per-trial / per-simplex seeds and memo keys do not depend on the
  worker count.

Worker counts resolve in priority order: explicit argument, process
default (:func:`set_default_workers`, set by the CLI ``--workers``
flag), the ``REPRO_WORKERS`` environment variable, then ``1``.  Inside a
worker process the resolution is pinned to ``1`` so nested fan-outs
cannot fork-bomb.

Cross-process payloads use the compact bitmask codec of
:mod:`repro.topology.wire`.  Fan-outs that must survive worker failure
route through the supervision layer (:mod:`repro.parallel.supervisor`):
bounded retries with deterministic backoff, per-task timeouts, pool
rebuild on ``BrokenProcessPool``, poison-task quarantine, and a circuit
breaker degrading to bit-identical serial execution.  See
``docs/PARALLELISM.md`` for the engine design and determinism contract
and ``docs/RESILIENCE.md`` for the supervision model.
"""

from repro.parallel.chaos import run_campaign_sharded
from repro.parallel.expansion import (
    expand_one_round,
    materialize_protocol_complexes,
    parallel_of_complex,
)
from repro.parallel.pool import (
    WORKERS_ENV,
    MapOutcome,
    discard_pool,
    get_default_workers,
    parallel_map,
    resolve_workers,
    set_default_workers,
    shutdown_pools,
)
from repro.parallel.solving import parallel_find_decision_map
from repro.parallel.supervisor import (
    QuarantineRecord,
    SupervisedOutcome,
    SupervisorConfig,
    TaskAttempt,
    backoff_delay,
    get_default_supervisor,
    resolve_supervisor,
    set_default_supervisor,
    supervised_map,
)

__all__ = [
    "WORKERS_ENV",
    "MapOutcome",
    "resolve_workers",
    "get_default_workers",
    "set_default_workers",
    "parallel_map",
    "shutdown_pools",
    "discard_pool",
    "SupervisorConfig",
    "TaskAttempt",
    "QuarantineRecord",
    "SupervisedOutcome",
    "set_default_supervisor",
    "get_default_supervisor",
    "resolve_supervisor",
    "backoff_delay",
    "supervised_map",
    "expand_one_round",
    "materialize_protocol_complexes",
    "parallel_of_complex",
    "parallel_find_decision_map",
    "run_campaign_sharded",
]
