"""Worker resolution and the shared process pool.

:func:`parallel_map` is the single fan-out primitive every parallel
code path uses: it submits picklable payloads to a shared
:class:`~concurrent.futures.ProcessPoolExecutor`, folds results back
**in payload order** (never completion order — that is the determinism
contract), and supports early cancellation (``stop_when``) for
first-failure searches and deadline-bounded campaigns.

Worker accounting is wired into telemetry: the map emits a
``parallel/map`` span, one ``parallel/worker-{slot}`` child span per
completed task (slots are assigned to worker pids in order of first
appearance, so slot numbering is stable for a given pool), and
utilization metrics (``parallel.tasks``, ``parallel.task-busy-s``,
``parallel.map-wall-s``) that ``repro trace summarize`` can attribute
per worker.
"""

from __future__ import annotations

import atexit
import os
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, TypeVar

from repro.errors import ReproError
from repro.telemetry import ambient_clock, default_registry, span

__all__ = [
    "WORKERS_ENV",
    "MapOutcome",
    "resolve_workers",
    "get_default_workers",
    "set_default_workers",
    "parallel_map",
    "shutdown_pools",
    "discard_pool",
]

P = TypeVar("P")
R = TypeVar("R")

#: Environment variable consulted when no explicit worker count is given.
WORKERS_ENV = "REPRO_WORKERS"

#: Upper bound on accepted worker counts — a typo guard, not a tuning
#: knob; the pools this library runs are CPU-bound.
MAX_WORKERS = 64

_default_workers: Optional[int] = None
_in_worker = False
_pools: dict[int, ProcessPoolExecutor] = {}
# Guards _pools: shutdown_pools() may run from another thread (tests,
# atexit during interpreter teardown) while a drain loop is still
# holding a reference to an executor it fetched from the cache.
_POOLS_LOCK = threading.Lock()


def _check_workers(workers: int) -> int:
    if not 1 <= workers <= MAX_WORKERS:
        raise ReproError(
            f"worker count must be in [1, {MAX_WORKERS}], got {workers}"
        )
    return workers


def set_default_workers(workers: Optional[int]) -> None:
    """Set the process-wide default worker count (``None`` to unset).

    The CLI ``--workers`` flag lands here, so library calls made during
    a ``repro run/experiment/chaos`` invocation inherit the flag without
    threading it through every signature.
    """
    global _default_workers
    _default_workers = None if workers is None else _check_workers(workers)


def get_default_workers() -> Optional[int]:
    """The process-wide default set via :func:`set_default_workers`."""
    return _default_workers


def resolve_workers(workers: Optional[int] = None) -> int:
    """Resolve an effective worker count.

    Priority: explicit argument, then :func:`set_default_workers`, then
    the ``REPRO_WORKERS`` environment variable, then ``1`` (serial).
    Inside a pool worker the answer is always ``1`` so nested fan-outs
    run serially instead of forking grandchild pools.
    """
    if _in_worker:
        return 1
    if workers is not None:
        return _check_workers(workers)
    if _default_workers is not None:
        return _default_workers
    raw = os.environ.get(WORKERS_ENV)
    if raw:
        try:
            parsed = int(raw)
        except ValueError:
            raise ReproError(
                f"{WORKERS_ENV} must be an integer, got {raw!r}"
            ) from None
        return _check_workers(parsed)
    return 1


def _mark_worker() -> None:
    """Pool initializer: pin nested worker resolution to serial."""
    global _in_worker
    _in_worker = True


def _pool(workers: int) -> ProcessPoolExecutor:
    """The shared executor for ``workers`` (created lazily, reused)."""
    with _POOLS_LOCK:
        found = _pools.get(workers)
        if found is None:
            found = ProcessPoolExecutor(
                max_workers=workers, initializer=_mark_worker
            )
            _pools[workers] = found
        return found


def shutdown_pools() -> None:
    """Shut down every shared executor (idempotent; used by tests).

    Safe to call concurrently with in-flight drains: the cache mutation
    happens under the pool lock, and executors are shut down *outside*
    it so a drain thread grabbing a fresh pool is never blocked on a
    slow teardown.
    """
    while True:
        with _POOLS_LOCK:
            if not _pools:
                return
            _, pool = _pools.popitem()
        pool.shutdown(wait=True, cancel_futures=True)


def discard_pool(workers: int) -> None:
    """Drop the cached executor for ``workers`` without waiting.

    Used by the supervisor after ``BrokenProcessPool``: the executor is
    permanently broken, so waiting on it is pointless — evict it from
    the cache (the next :func:`_pool` call rebuilds) and reap whatever
    is left without blocking.
    """
    with _POOLS_LOCK:
        pool = _pools.pop(workers, None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


atexit.register(shutdown_pools)


@dataclass
class MapOutcome:
    """What :func:`parallel_map` produced.

    ``results`` is index-aligned with the input payloads; entries are
    ``None`` for tasks cancelled by ``stop_when`` or ``deadline_at``.
    ``worker_slots`` maps worker pids to their stable slot numbers.
    """

    results: list
    completed: int = 0
    stopped_early: bool = False
    worker_slots: dict = field(default_factory=dict)


def _invoke(fn: Callable[[P], R], index: int, payload: P) -> tuple:
    started = time.perf_counter()
    result = fn(payload)
    return index, result, os.getpid(), time.perf_counter() - started


def _record_completion(
    outcome: MapOutcome,
    results: list,
    tasks,
    busy,
    label: str,
    index: int,
    result,
    pid: int,
    task_busy: float,
) -> None:
    """Fold one finished pool task into the outcome and telemetry.

    Used by the main completion loop *and* the post-cancel drain, so a
    task that finishes while the map is shutting down gets exactly the
    same accounting (worker slot, ``parallel/worker-{slot}`` span,
    task counter, busy histogram) as one reaped mid-flight.
    """
    slot = outcome.worker_slots.setdefault(pid, len(outcome.worker_slots))
    results[index] = result
    outcome.completed += 1
    tasks.inc()
    busy.observe(task_busy)
    with span(
        f"parallel/worker-{slot}",
        label=label,
        index=index,
    ) as task_span:
        task_span.set_attribute("busy_s", task_busy)


def chunked(items: Sequence[P], chunks: int) -> list[tuple[P, ...]]:
    """Split ``items`` into ``chunks`` contiguous, near-even pieces.

    Empty pieces are dropped, so at most ``min(chunks, len(items))``
    pieces come back.  Contiguity is what keeps sharded folds in global
    input order.
    """
    if chunks < 1:
        raise ReproError(f"chunk count must be positive, got {chunks}")
    total = len(items)
    pieces: list[tuple[P, ...]] = []
    start = 0
    for remaining in range(chunks, 0, -1):
        size = (total - start + remaining - 1) // remaining
        if size:
            pieces.append(tuple(items[start : start + size]))
            start += size
    return pieces


def parallel_map(
    fn: Callable[[P], R],
    payloads: Sequence[P],
    workers: Optional[int] = None,
    label: str = "tasks",
    stop_when: Optional[Callable[[R], bool]] = None,
    deadline_at: Optional[float] = None,
) -> MapOutcome:
    """Run ``fn`` over ``payloads`` on the shared pool, in input order.

    ``fn`` must be a module-level callable and every payload/result must
    pickle.  Results land in ``MapOutcome.results`` at the index of
    their payload regardless of completion order.  When ``stop_when``
    returns true for some result, or the ambient telemetry clock passes
    ``deadline_at``, remaining not-yet-started tasks are cancelled and
    their slots stay ``None`` (in-flight tasks finish and are recorded).

    With one (resolved) worker the map degrades to an in-process loop
    with identical semantics — no pool, no pickling.
    """
    resolved = resolve_workers(workers)
    results: list = [None] * len(payloads)
    outcome = MapOutcome(results=results)
    registry = default_registry()
    tasks = registry.counter("parallel.tasks")
    busy = registry.histogram("parallel.task-busy-s")
    wall = registry.histogram("parallel.map-wall-s")
    started = time.perf_counter()
    with span("parallel/map", label=label, workers=resolved) as map_span:
        if resolved <= 1 or len(payloads) <= 1:
            for index, payload in enumerate(payloads):
                if (
                    deadline_at is not None
                    and ambient_clock().now() > deadline_at
                ):
                    outcome.stopped_early = True
                    break
                task_started = time.perf_counter()
                results[index] = fn(payload)
                outcome.completed += 1
                tasks.inc()
                # Same busy accounting as the pool path, so serial and
                # parallel runs of one workload report comparable
                # utilization; worker slots/spans stay pool-only (there
                # is no worker process to attribute them to).
                busy.observe(time.perf_counter() - task_started)
                if stop_when is not None and stop_when(results[index]):
                    outcome.stopped_early = True
                    break
        else:
            pool = _pool(resolved)
            pending: set = {
                pool.submit(_invoke, fn, index, payload)
                for index, payload in enumerate(payloads)
            }
            try:
                while pending:
                    done, pending = wait(
                        pending, return_when=FIRST_COMPLETED
                    )
                    stop = False
                    for future in done:
                        index, result, pid, task_busy = future.result()
                        _record_completion(
                            outcome,
                            results,
                            tasks,
                            busy,
                            label,
                            index,
                            result,
                            pid,
                            task_busy,
                        )
                        if stop_when is not None and stop_when(result):
                            stop = True
                    past_deadline = (
                        deadline_at is not None
                        and ambient_clock().now() > deadline_at
                    )
                    if stop or past_deadline:
                        outcome.stopped_early = True
                        for future in pending:
                            future.cancel()
                        not_done = wait(pending).done
                        for future in not_done:
                            if future.cancelled():
                                continue
                            index, result, pid, task_busy = future.result()
                            _record_completion(
                                outcome,
                                results,
                                tasks,
                                busy,
                                label,
                                index,
                                result,
                                pid,
                                task_busy,
                            )
                        pending = set()
            finally:
                for future in pending:
                    future.cancel()
        elapsed = time.perf_counter() - started
        wall.observe(elapsed)
        map_span.set_attribute("completed", outcome.completed)
        map_span.set_attribute("stopped_early", outcome.stopped_early)
        map_span.set_attribute(
            "worker_count", max(1, len(outcome.worker_slots))
        )
    return outcome
