"""Sharded chaos campaigns: seeded trials across the pool.

Each shard is a contiguous ascending slice of trial indices; a worker
runs :func:`repro.faults.campaign.run_trial` for its slice — the exact
per-trial code of the serial loop, with seeds derived from the campaign
seed and the index alone — and ships the records back.  The parent folds
shards in payload order, so records arrive in ascending index order and
the report (kept-outcome truncation included) is byte-identical to a
serial campaign.

The campaign deadline is enforced at shard granularity: when it passes,
not-yet-started shards are cancelled and counted as skipped.  Because
cancellation follows completion order, a deadline-hit parallel campaign
may skip a different *set* of trials than the serial runner (which
always skips a suffix) — deadline-bounded runs are best-effort in both
modes and make no byte-identity promise.
"""

from __future__ import annotations

from typing import Optional

from repro.faults.campaign import (
    CampaignConfig,
    CampaignReport,
    TrialRecord,
    fold_record,
    get_cell,
    run_trial,
)
from repro.parallel.pool import chunked
from repro.parallel.supervisor import SupervisorConfig, supervised_map
from repro.telemetry import ambient_clock

__all__ = ["run_campaign_sharded"]

#: Shards handed out per worker — keeps stragglers (e.g. HUNG trials
#: burning their whole execution deadline) from idling the other slots.
_SHARDS_PER_WORKER = 4

ShardPayload = tuple[CampaignConfig, tuple[int, ...]]


def _run_shard(payload: ShardPayload) -> tuple[TrialRecord, ...]:
    config, indices = payload
    spec = get_cell(config.cell)
    return tuple(run_trial(config, spec, index) for index in indices)


def run_campaign_sharded(
    config: CampaignConfig,
    report: CampaignReport,
    campaign_deadline_at: Optional[float],
    workers: int,
    supervisor: Optional[SupervisorConfig] = None,
) -> None:
    """Run the campaign's trials on the pool, folding into ``report``.

    Called by :func:`repro.faults.campaign.run_campaign` (which owns
    validation, the campaign span, and the timing/memory accounting)
    once the worker count has resolved above one.

    Shards run under the execution supervisor: a killed worker breaks
    the pool, the supervisor rebuilds it and re-dispatches the lost
    shards, and because each shard is a pure function of
    ``(config, indices)`` the re-run produces the same records — the
    fault-injected report stays byte-identical to the serial one
    (AUD014).  A shard quarantined after exhausting its retries is
    recomputed in-process here as a last resort, so only the campaign
    deadline can make trials go missing.
    """
    shards = chunked(
        range(config.executions), workers * _SHARDS_PER_WORKER
    )
    payloads: list[ShardPayload] = [
        (config, shard) for shard in shards
    ]
    outcome = supervised_map(
        _run_shard,
        payloads,
        workers=workers,
        config=supervisor,
        label="chaos-shard",
        deadline_at=campaign_deadline_at,
        on_quarantine="keep",
    )
    if outcome.quarantined:
        for quarantine in outcome.quarantined:
            if (
                campaign_deadline_at is not None
                and ambient_clock().now() > campaign_deadline_at
            ):
                break
            outcome.results[quarantine.index] = _run_shard(
                payloads[quarantine.index]
            )
    folded = 0
    for records in outcome.results:
        if records is None:
            continue  # shard cancelled by the campaign deadline
        for record in records:
            fold_record(report, record)
            folded += 1
    report.skipped = config.executions - folded
