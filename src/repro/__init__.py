"""repro — the asynchronous speedup theorem, executable.

A reproduction of *"A Speedup Theorem for Asynchronous Computation with
Applications to Consensus and Approximate Agreement"* (Fraigniaud, Paz,
Rajsbaum, PODC 2022) as a production-quality Python library.

The package turns the paper's proof machinery into code:

* chromatic combinatorial topology (:mod:`repro.topology`);
* the iterated wait-free models — write-collect, write-snapshot, immediate
  snapshot — and their protocol complexes (:mod:`repro.models`);
* augmented models with consistent black boxes: test&set and binary
  consensus (:mod:`repro.objects`);
* the tasks: consensus variants and (liberal) ε-approximate agreement on an
  exact rational grid (:mod:`repro.tasks`);
* the core contribution: local tasks, task closures, a complete
  solvability decision procedure, the constructive speedup theorem, fixed
  points, and lower-bound engines (:mod:`repro.core`);
* an operational shared-memory runtime with adversarial schedulers and
  crash injection (:mod:`repro.runtime`);
* the matching upper-bound algorithms (:mod:`repro.algorithms`);
* census / figure / table utilities (:mod:`repro.analysis`).

Quick start::

    from repro import (
        ImmediateSnapshotModel, binary_consensus_task,
        impossibility_from_fixed_point,
    )

    report = impossibility_from_fixed_point(
        binary_consensus_task([1, 2, 3]), ImmediateSnapshotModel()
    )
    assert report.unsolvable          # FLP/Herlihy, via the speedup theorem
"""

from repro.errors import (
    ReproError,
    ChromaticityError,
    SimplicialityError,
    ScheduleError,
    TaskSpecificationError,
    SolvabilityError,
    ModelError,
    RuntimeModelError,
)
from repro.topology import (
    Vertex,
    View,
    Simplex,
    SimplicialComplex,
    SimplicialMap,
    CarrierMap,
    canonical_isomorphism,
)
from repro.models import (
    CollectModel,
    k_concurrency_model,
    no_synchrony_model,
    SnapshotModel,
    ImmediateSnapshotModel,
    AffineModel,
    ProtocolOperator,
    OneRoundSchedule,
    standard_chromatic_subdivision,
)
from repro.objects import (
    AugmentedModel,
    TestAndSetBox,
    BinaryConsensusBox,
    beta_input_function,
    majority_side,
)
from repro.tasks import (
    Task,
    binary_consensus_task,
    multivalued_consensus_task,
    relaxed_consensus_task,
    approximate_agreement_task,
    liberal_approximate_agreement_task,
    set_agreement_task,
    renaming_task,
    grid,
)
from repro.core import (
    DecisionMap,
    find_decision_map,
    is_solvable,
    local_task,
    ClosureComputer,
    closure_task,
    speedup_decision_map,
    verify_speedup_theorem,
    is_fixed_point,
    impossibility_from_fixed_point,
    iterated_closure_lower_bound,
    ceil_log,
    aa_lower_bound_iis,
    aa_lower_bound_iis_tas,
    aa_lower_bound_iis_bc,
    aa_upper_bound_iis,
)
from repro.runtime import (
    IteratedExecutor,
    NonIteratedExecutor,
    RandomMatrixAdversary,
    FixedMatrixAdversary,
    RoundAlgorithm,
    extract_decision_map,
    RandomAdversary,
    FullSyncAdversary,
    SoloFirstAdversary,
    FixedScheduleAdversary,
    all_schedule_sequences,
)
from repro.algorithms import (
    HalvingAA,
    NonIteratedHalvingAA,
    TwoProcessThirdsAA,
    TwoProcessConsensusTAS,
    ConsensusViaBinaryConsensus,
    BitwiseAA,
)

__version__ = "1.0.0"

__all__ = [
    # errors
    "ReproError",
    "ChromaticityError",
    "SimplicialityError",
    "ScheduleError",
    "TaskSpecificationError",
    "SolvabilityError",
    "ModelError",
    "RuntimeModelError",
    # topology
    "Vertex",
    "View",
    "Simplex",
    "SimplicialComplex",
    "SimplicialMap",
    "CarrierMap",
    "canonical_isomorphism",
    # models
    "CollectModel",
    "SnapshotModel",
    "ImmediateSnapshotModel",
    "AffineModel",
    "k_concurrency_model",
    "no_synchrony_model",
    "ProtocolOperator",
    "OneRoundSchedule",
    "standard_chromatic_subdivision",
    # objects
    "AugmentedModel",
    "TestAndSetBox",
    "BinaryConsensusBox",
    "beta_input_function",
    "majority_side",
    # tasks
    "Task",
    "binary_consensus_task",
    "multivalued_consensus_task",
    "relaxed_consensus_task",
    "approximate_agreement_task",
    "liberal_approximate_agreement_task",
    "set_agreement_task",
    "renaming_task",
    "grid",
    # core
    "DecisionMap",
    "find_decision_map",
    "is_solvable",
    "local_task",
    "ClosureComputer",
    "closure_task",
    "speedup_decision_map",
    "verify_speedup_theorem",
    "is_fixed_point",
    "impossibility_from_fixed_point",
    "iterated_closure_lower_bound",
    "ceil_log",
    "aa_lower_bound_iis",
    "aa_lower_bound_iis_tas",
    "aa_lower_bound_iis_bc",
    "aa_upper_bound_iis",
    # runtime
    "IteratedExecutor",
    "NonIteratedExecutor",
    "RoundAlgorithm",
    "extract_decision_map",
    "RandomAdversary",
    "FullSyncAdversary",
    "SoloFirstAdversary",
    "FixedScheduleAdversary",
    "RandomMatrixAdversary",
    "FixedMatrixAdversary",
    "all_schedule_sequences",
    # algorithms
    "HalvingAA",
    "NonIteratedHalvingAA",
    "TwoProcessThirdsAA",
    "TwoProcessConsensusTAS",
    "ConsensusViaBinaryConsensus",
    "BitwiseAA",
]
