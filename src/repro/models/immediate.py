"""The iterated immediate snapshot (IIS) model.

One round: a sequence of *blocks* of processes; the processes of a block
write simultaneously and immediately take an atomic snapshot, so each sees
exactly the writes of its own and all earlier blocks.  The one-round complex
``P^(1)(σ)`` is the **standard chromatic subdivision** of ``σ``
(Herlihy–Shavit): ``{(i, V_i)}`` is a simplex iff for all ``i, j``,
``j ∈ V_i`` or ``i ∈ V_j``, and ``j ∈ V_i ⟹ V_j ⊆ V_i`` (Section 2.2).

This is the model in which all the paper's approximate-agreement lower
bounds are proved (lower bounds in IIS imply lower bounds in the weaker
models and in the non-iterated variants).
"""

from __future__ import annotations


from repro.models.base import IteratedModel
from repro.models.schedules import (
    immediate_snapshot_schedules,
    view_maps_of_schedules,
)
from repro.topology.complex import SimplicialComplex
from repro.topology.simplex import Simplex

__all__ = ["ImmediateSnapshotModel", "standard_chromatic_subdivision"]


class ImmediateSnapshotModel(IteratedModel):
    """Iterated immediate snapshot (the wait-free IIS model)."""

    name = "iterated-immediate-snapshot"

    def _enumerate_view_maps(
        self, ids: frozenset[int]
    ) -> list[dict[int, frozenset[int]]]:
        return view_maps_of_schedules(immediate_snapshot_schedules(ids))


def standard_chromatic_subdivision(sigma: Simplex) -> SimplicialComplex:
    """The standard chromatic subdivision of a simplex.

    Convenience wrapper equal to one round of IIS applied to ``σ`` together
    with all its faces — i.e. ``Ξ(σ̄)``, the full subdivided simplex
    including its subdivided boundary.
    """
    model = ImmediateSnapshotModel()
    return model.protocol_complex(SimplicialComplex.from_simplex(sigma), 1)
