"""Model interfaces.

Two layers of abstraction:

* :class:`ComputationModel` is what the closure/solvability engine consumes —
  anything that can produce the ``t``-round protocol complex of an input
  simplex and extend a process's view by a solo round (the operation at the
  heart of the speedup theorem's ``f ↦ f'`` construction).

* :class:`IteratedModel` is the register-only specialization: a model defined
  by a set of one-round schedules (collect / snapshot / immediate snapshot /
  affine restrictions).  Augmented models (with black boxes) implement
  :class:`ComputationModel` directly in :mod:`repro.objects.augmented`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Hashable, Iterable, Optional

from repro.errors import ChromaticityError
from repro.instrumentation import counter
from repro.telemetry import span
from repro.topology.complex import SimplicialComplex
from repro.topology.simplex import Simplex
from repro.topology.table import VertexTable
from repro.topology.vertex import Vertex
from repro.topology.views import View

__all__ = ["ComputationModel", "IteratedModel"]


class ComputationModel(ABC):
    """Anything the solvability and closure engines can reason about."""

    #: Human-readable model name, used in reports and experiment tables.
    name: str = "abstract"

    def one_round_complex(self, sigma: Simplex) -> SimplicialComplex:
        """The complex ``P^(1)(σ)`` of one-round executions of ``ID(σ)``.

        The returned complex contains only the executions in which *exactly*
        the processes of ``σ`` participate; executions of faces of ``σ`` are
        obtained by calling this method on the faces (the protocol operator
        takes the union).

        Results are memoized per input simplex at the model level, so every
        :class:`~repro.models.protocol.ProtocolOperator` iteration and every
        ``σ`` of a solvability sweep over the same model instance shares
        one materialization; subclasses implement the actual enumeration in
        :meth:`_build_one_round_complex`.  Entries are keyed by
        ``(table_id, mask)`` int pairs over a per-instance growable
        :class:`~repro.topology.table.VertexTable` (values keep ``σ``
        alongside the complex so audits can rebuild), which avoids
        re-hashing simplex objects on the hot lookup path.
        """
        cache = getattr(self, "_one_round_cache", None)
        if cache is None:
            cache = self._one_round_cache = {}
            # Per-instance lazy init: the counter name embeds self.name,
            # so a module-level fetch is impossible; this runs once per
            # model instance, not per lookup.
            self._one_round_stats = counter(  # norpr: RPR003
                f"one-round-complex[{self.name}]"
            )
        found = cache.get(self._memo_key(sigma))
        if found is None:
            self._one_round_stats.miss()
            # The span is opened only on a miss: cache hits stay a bare
            # dict lookup, and with telemetry disabled the miss path pays
            # one no-op handle.
            with span(
                "model/one-round-build",
                model=self.name,
                participants=len(sigma.ids),
            ):
                built = self._build_one_round_complex(sigma)
                cache[self._memo_key(sigma)] = (sigma, built)
            return built
        self._one_round_stats.hit()
        return found[1]

    def _memo_key(self, sigma: Simplex) -> tuple[int, int]:
        """The ``(table_id, mask)`` memo key of ``σ``, interning as needed.

        The table is per-model-instance and growable; masks from it are
        only meaningful paired with its ``table_id``, which is what makes
        the int pairs unambiguous even across detach/reattach cycles
        (:func:`~repro.parallel.expansion.cold_model` drops the table
        together with the caches it keys).
        """
        table = getattr(self, "_memo_table", None)
        if table is None:
            table = self._memo_table = VertexTable()
        return (table.table_id, table.encode_mask_interning(sigma))

    def cached_one_round(
        self, sigma: Simplex
    ) -> Optional[SimplicialComplex]:
        """The memoized ``P^(1)(σ)``, or ``None`` if not yet built.

        A pure cache probe: never materializes, never touches the
        hit/miss tallies, and never grows the memo table (a vertex the
        table has not seen cannot appear in any cached key).  The
        parallel engine uses it to ship only the not-yet-expanded
        simplices to the pool.
        """
        cache = getattr(self, "_one_round_cache", None)
        table = getattr(self, "_memo_table", None)
        if cache is None or table is None:
            return None
        try:
            mask = table.encode_mask(sigma)
        except ChromaticityError:
            return None
        found = cache.get((table.table_id, mask))
        return None if found is None else found[1]

    def seed_one_round(
        self, sigma: Simplex, complex_: SimplicialComplex
    ) -> None:
        """Install a known ``P^(1)(σ)`` in the memo.

        The parallel engine folds worker-computed expansions back into
        the parent's cache through this hook.  The seeded complex must
        equal what :meth:`_build_one_round_complex` would produce —
        audit rule AUD012 cross-checks this on sampled simplices.
        """
        cache = getattr(self, "_one_round_cache", None)
        if cache is None:
            cache = self._one_round_cache = {}
            # Same per-instance lazy init as one_round_complex above.
            self._one_round_stats = counter(  # norpr: RPR003
                f"one-round-complex[{self.name}]"
            )
        cache[self._memo_key(sigma)] = (sigma, complex_)

    @abstractmethod
    def _build_one_round_complex(self, sigma: Simplex) -> SimplicialComplex:
        """Materialize ``P^(1)(σ)`` (uncached hook behind the memo layer)."""

    @abstractmethod
    def solo_value(self, vertex: Vertex) -> Hashable:
        """The value of ``vertex``'s carrier after one *solo* round.

        For register-only models this is the view ``{(i, V_i)}``; augmented
        models pair it with the black box's solo output.  This is the
        operation used to define ``f'(i, V_i) = f(i, solo_value)`` in the
        proofs of Theorems 1 and 2.
        """

    def solo_vertex(self, vertex: Vertex) -> Vertex:
        """The protocol vertex reached from ``vertex`` by a solo round."""
        return Vertex(vertex.color, self.solo_value(vertex))

    # ------------------------------------------------------------------
    # Derived operations
    # ------------------------------------------------------------------
    def protocol_complex(
        self, base: SimplicialComplex, rounds: int
    ) -> SimplicialComplex:
        """Apply the one-round operator ``Ξ`` to a complex, ``rounds`` times.

        ``Ξ(K)`` is the union of ``P^(1)(σ)`` over every simplex ``σ ∈ K``
        (Section 2.2).
        """
        current = base
        for _ in range(rounds):
            pieces = [
                self.one_round_complex(simplex) for simplex in current
            ]
            merged = SimplicialComplex(
                facet for piece in pieces for facet in piece.facets
            )
            current = merged
        return current

    def protocol_complex_of_simplex(
        self, sigma: Simplex, rounds: int
    ) -> SimplicialComplex:
        """``P^(t)(σ)``: the ``rounds``-round protocol complex of ``σ``."""
        return self.protocol_complex(
            SimplicialComplex.from_simplex(sigma), rounds
        )

    def allows_solo_executions(self, ids: Iterable[int]) -> bool:
        """Check the speedup theorem's hypothesis on a participant set.

        For every process ``i``, some execution must give ``i`` the solo
        view; we verify it on a canonical input simplex over ``ids``.
        """
        id_list = sorted(set(ids))
        sigma = Simplex((i, f"x{i}") for i in id_list)
        complex_ = self.one_round_complex(sigma)
        for i in id_list:
            solo = self.solo_vertex(Vertex(i, f"x{i}"))
            if solo not in complex_.vertices:
                return False
        return True


class IteratedModel(ComputationModel):
    """A register-only iterated model defined by one-round view maps."""

    def view_maps(
        self, ids: frozenset[int]
    ) -> list[dict[int, frozenset[int]]]:
        """The distinct per-process view maps of one round among ``ids``.

        Memoized per participant set at the model level; subclasses
        implement the enumeration in :meth:`_enumerate_view_maps`.
        """
        cache = getattr(self, "_view_map_cache", None)
        if cache is None:
            cache = self._view_map_cache = {}
            # Same per-instance lazy init as one_round_complex above.
            self._view_map_stats = counter(  # norpr: RPR003
                f"view-maps[{self.name}]"
            )
        key = frozenset(ids)
        found = cache.get(key)
        if found is None:
            self._view_map_stats.miss()
            found = cache[key] = self._enumerate_view_maps(key)
        else:
            self._view_map_stats.hit()
        return found

    @abstractmethod
    def _enumerate_view_maps(
        self, ids: frozenset[int]
    ) -> list[dict[int, frozenset[int]]]:
        """Enumerate the view maps (uncached hook behind :meth:`view_maps`)."""

    def _build_one_round_complex(self, sigma: Simplex) -> SimplicialComplex:
        """Materialize the view maps into the complex ``P^(1)(σ)``."""
        facets = set()
        values = sigma.as_mapping()
        for view_map in self.view_maps(sigma.ids):
            vertices = []
            for process, seen in view_map.items():
                view = View((j, values[j]) for j in seen)
                vertices.append(Vertex(process, view))
            facets.add(Simplex(vertices))
        # Every view map covers all of ID(σ), so the facets share one
        # dimension and the family is maximal as-is.
        return SimplicialComplex.from_maximal(facets)

    def solo_value(self, vertex: Vertex) -> Hashable:
        """A solo round leaves process ``i`` with the view ``{(i, value)}``."""
        return View([(vertex.color, vertex.value)])
