"""Protocol complexes ``P^(t)`` and their carriers.

The one-round operator ``Ξ`` of a model sends a simplex to its one-round
complex and a complex to the union over its simplices (Section 2.2).
:class:`ProtocolOperator` memoizes the iteration and tracks, for every
protocol simplex, the *input simplices it can arise from* — the carrier
information needed to state solvability ("for every σ,
``f(P^(t)(σ)) ⊆ Δ(σ)``").

Every expansion entry point accepts an optional ``workers`` count; with
more than one (resolved) worker the per-simplex ``Ξ`` calls are fanned
out through :mod:`repro.parallel` and folded back through the memo
caches, so the produced complexes — and all subsequent cache hits — are
identical to the serial ones.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ChromaticityError
from repro.instrumentation import counter
from repro.models.base import ComputationModel
from repro.telemetry import span
from repro.topology.complex import SimplicialComplex
from repro.topology.simplex import Simplex
from repro.topology.table import VertexTable

__all__ = ["ProtocolOperator"]

#: Shared across operator instances on purpose: a sweep that constructs many
#: short-lived operators still aggregates into one hit/miss line.
_OF_SIMPLEX_STATS = counter("protocol-operator.of-simplex")

#: Below this many simplices a round is expanded serially even when a
#: pool is available — fork/pickle overhead would dominate the work.
_MIN_PARALLEL_SIMPLICES = 8


def _resolve_workers(workers: Optional[int]) -> int:
    # Imported lazily: repro.parallel imports this module at load time.
    from repro.parallel.pool import resolve_workers

    return resolve_workers(workers)


class ProtocolOperator:
    """Memoized iteration of a model's one-round operator ``Ξ``.

    Parameters
    ----------
    model:
        Any :class:`~repro.models.base.ComputationModel`.
    """

    def __init__(self, model: ComputationModel) -> None:
        self._model = model
        # Memo keys are ``(table_id, mask, rounds)`` int triples over a
        # per-operator growable table — the hot of_simplex probe never
        # hashes a Simplex object (see ``repro.topology.table``).
        self._memo_table = VertexTable()
        self._simplex_cache: dict[
            tuple[int, int, int], SimplicialComplex
        ] = {}

    def _memo_key(self, sigma: Simplex, rounds: int) -> tuple[int, int, int]:
        table = self._memo_table
        return (
            table.table_id,
            table.encode_mask_interning(sigma),
            rounds,
        )

    @property
    def model(self) -> ComputationModel:
        """The underlying computation model."""
        return self._model

    def of_simplex(
        self,
        sigma: Simplex,
        rounds: int,
        workers: Optional[int] = None,
    ) -> SimplicialComplex:
        """``P^(t)(σ)`` — executions where exactly ``ID(σ)`` participate.

        For ``rounds == 0`` this is the complex of ``σ`` itself (``Ξ_0`` is
        the identity, Claim 1's setting).  ``workers`` parallelizes the
        per-round fan-out (see :meth:`_one_round_of_complex`); the result
        and the memo contents do not depend on it.
        """
        key = self._memo_key(sigma, rounds)
        found = self._simplex_cache.get(key)
        if found is None:
            _OF_SIMPLEX_STATS.miss()
            if rounds == 0:
                found = SimplicialComplex.from_simplex(sigma)
            else:
                # Span only on a miss; the recursion below nests one span
                # per expanded round under this one.
                with span(
                    "protocol/of-simplex",
                    model=self._model.name,
                    rounds=rounds,
                ):
                    previous = self.of_simplex(sigma, rounds - 1, workers)
                    found = self._one_round_of_complex(previous, workers)
            self._simplex_cache[key] = found
        else:
            _OF_SIMPLEX_STATS.hit()
        return found

    def cached_of_simplex(
        self, sigma: Simplex, rounds: int
    ) -> Optional[SimplicialComplex]:
        """The memoized ``P^(rounds)(σ)``, or ``None`` if not yet built.

        A pure cache probe (no materialization, no tally updates, no
        memo-table growth), used by the parallel engine to ship only
        missing work to the pool.
        """
        try:
            mask = self._memo_table.encode_mask(sigma)
        except ChromaticityError:
            # A vertex the table has not seen cannot be in any key.
            return None
        return self._simplex_cache.get(
            (self._memo_table.table_id, mask, rounds)
        )

    def seed_of_simplex(
        self,
        sigma: Simplex,
        rounds: int,
        complex_: SimplicialComplex,
    ) -> None:
        """Install a known ``P^(rounds)(σ)`` in the memo.

        The seeded complex must equal what :meth:`of_simplex` would
        compute — audit rule AUD012 cross-checks parallel merges
        against serial expansion on sampled simplices.
        """
        self._simplex_cache[self._memo_key(sigma, rounds)] = complex_

    def of_complex(
        self,
        base: SimplicialComplex,
        rounds: int,
        workers: Optional[int] = None,
    ) -> SimplicialComplex:
        """``P^(t)`` of a whole input complex: union over its simplices."""
        resolved = _resolve_workers(workers)
        if resolved > 1 and len(base) >= _MIN_PARALLEL_SIMPLICES:
            from repro.parallel.expansion import parallel_of_complex

            return parallel_of_complex(self, base, rounds, resolved)
        merged: list[Simplex] = []
        # A base too small to fan out still threads the worker count into
        # the per-simplex expansions, whose intermediate complexes grow
        # past the parallel threshold after one round.
        for simplex in base:
            merged.extend(
                self.of_simplex(simplex, rounds, workers=resolved).facets
            )
        return SimplicialComplex(merged)

    def _one_round_of_complex(
        self,
        base: SimplicialComplex,
        workers: Optional[int] = None,
    ) -> SimplicialComplex:
        resolved = _resolve_workers(workers)
        if resolved > 1 and len(base) >= _MIN_PARALLEL_SIMPLICES:
            from repro.parallel.expansion import expand_one_round

            return expand_one_round(self._model, base, resolved)
        pieces: list[Simplex] = []
        for simplex in base:
            pieces.extend(self._model.one_round_complex(simplex).facets)
        return SimplicialComplex(pieces)

    def carriers(
        self,
        input_complex: SimplicialComplex,
        rounds: int,
        workers: Optional[int] = None,
    ) -> dict[Simplex, list[Simplex]]:
        """Map each input simplex ``σ`` to the facets of ``P^(t)(σ)``.

        The solvability engine uses this to impose ``f(ρ) ∈ Δ(σ)`` for every
        protocol facet ``ρ`` of every input simplex ``σ``.  With several
        workers the per-``σ`` expansions run concurrently (one operator
        recursion per worker chunk) before the table is assembled from
        the seeded memo.
        """
        resolved = _resolve_workers(workers)
        if resolved > 1 and len(input_complex) >= _MIN_PARALLEL_SIMPLICES:
            from repro.parallel.expansion import (
                materialize_protocol_complexes,
            )

            materialize_protocol_complexes(
                self, list(input_complex), rounds, resolved
            )
        table: dict[Simplex, list[Simplex]] = {}
        for sigma in input_complex:
            protocol = self.of_simplex(sigma, rounds)
            table[sigma] = protocol.sorted_facets()
        return table
