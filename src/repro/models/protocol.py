"""Protocol complexes ``P^(t)`` and their carriers.

The one-round operator ``Ξ`` of a model sends a simplex to its one-round
complex and a complex to the union over its simplices (Section 2.2).
:class:`ProtocolOperator` memoizes the iteration and tracks, for every
protocol simplex, the *input simplices it can arise from* — the carrier
information needed to state solvability ("for every σ,
``f(P^(t)(σ)) ⊆ Δ(σ)``").
"""

from __future__ import annotations


from repro.instrumentation import counter
from repro.models.base import ComputationModel
from repro.telemetry import span
from repro.topology.complex import SimplicialComplex
from repro.topology.simplex import Simplex

__all__ = ["ProtocolOperator"]

#: Shared across operator instances on purpose: a sweep that constructs many
#: short-lived operators still aggregates into one hit/miss line.
_OF_SIMPLEX_STATS = counter("protocol-operator.of-simplex")


class ProtocolOperator:
    """Memoized iteration of a model's one-round operator ``Ξ``.

    Parameters
    ----------
    model:
        Any :class:`~repro.models.base.ComputationModel`.
    """

    def __init__(self, model: ComputationModel) -> None:
        self._model = model
        self._simplex_cache: dict[tuple[Simplex, int], SimplicialComplex] = {}

    @property
    def model(self) -> ComputationModel:
        """The underlying computation model."""
        return self._model

    def of_simplex(self, sigma: Simplex, rounds: int) -> SimplicialComplex:
        """``P^(t)(σ)`` — executions where exactly ``ID(σ)`` participate.

        For ``rounds == 0`` this is the complex of ``σ`` itself (``Ξ_0`` is
        the identity, Claim 1's setting).
        """
        key = (sigma, rounds)
        found = self._simplex_cache.get(key)
        if found is None:
            _OF_SIMPLEX_STATS.miss()
            if rounds == 0:
                found = SimplicialComplex.from_simplex(sigma)
            else:
                # Span only on a miss; the recursion below nests one span
                # per expanded round under this one.
                with span(
                    "protocol/of-simplex",
                    model=self._model.name,
                    rounds=rounds,
                ):
                    previous = self.of_simplex(sigma, rounds - 1)
                    found = self._one_round_of_complex(previous)
            self._simplex_cache[key] = found
        else:
            _OF_SIMPLEX_STATS.hit()
        return found

    def of_complex(
        self, base: SimplicialComplex, rounds: int
    ) -> SimplicialComplex:
        """``P^(t)`` of a whole input complex: union over its simplices."""
        merged: list[Simplex] = []
        for simplex in base:
            merged.extend(self.of_simplex(simplex, rounds).facets)
        return SimplicialComplex(merged)

    def _one_round_of_complex(
        self, base: SimplicialComplex
    ) -> SimplicialComplex:
        pieces: list[Simplex] = []
        for simplex in base:
            pieces.extend(self._model.one_round_complex(simplex).facets)
        return SimplicialComplex(pieces)

    def carriers(
        self,
        input_complex: SimplicialComplex,
        rounds: int,
    ) -> dict[Simplex, list[Simplex]]:
        """Map each input simplex ``σ`` to the facets of ``P^(t)(σ)``.

        The solvability engine uses this to impose ``f(ρ) ∈ Δ(σ)`` for every
        protocol facet ``ρ`` of every input simplex ``σ``.
        """
        table: dict[Simplex, list[Simplex]] = {}
        for sigma in input_complex:
            protocol = self.of_simplex(sigma, rounds)
            table[sigma] = protocol.sorted_facets()
        return table
