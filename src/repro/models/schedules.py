"""One-round communication schedules (Appendix A.3.4).

The paper represents one round of communication among the participants
``I`` by a matrix

.. code-block:: text

    M = [ P_0  P_1  …  P_r ]
        [ I_0  I_1  …  I_r ]

subject to the five conditions (1) ``0 ≤ r ≤ |I| - 1``, (2) ``P_s ⊆ I``,
(3) ``P_0 = I``, (4) the ``I_s`` partition ``I``, and (5)
``∪_{j=s}^r I_j ⊆ P_s``.  The semantics: every process in group ``I_s``
reads exactly the values written by ``P_s``, so its one-round view is
``{(j, x_j) : j ∈ P_s}``.

* The **collect** model admits every such matrix.
* The **snapshot** model additionally requires the view sets to be pairwise
  comparable (they form a chain — footnote 1 of the paper).
* The **immediate snapshot** model requires that whenever ``q ∈ P_i`` and
  ``q ∈ I_j``, then ``P_j ⊆ P_i`` (footnote 2); these matrices correspond
  exactly to *ordered set partitions* ``B_1, …, B_k`` of ``I`` in which the
  processes of block ``B_s`` all see ``B_1 ∪ … ∪ B_s``.

This module enumerates schedules for all three models and converts between
the matrix form and the ordered-blocks form.  Enumeration is exhaustive and
deterministic; distinct matrices can induce the same view map, so consumers
deduplicate at the view-map level via :func:`view_maps_of_schedules`.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import chain, combinations
from typing import Iterable, Iterator, Sequence

from repro.errors import ScheduleError

__all__ = [
    "OneRoundSchedule",
    "ordered_partitions",
    "collect_schedules",
    "snapshot_schedules",
    "immediate_snapshot_schedules",
    "schedule_from_blocks",
    "view_maps_of_schedules",
]

Ids = frozenset[int]
ViewMap = dict[int, Ids]


@dataclass(frozen=True)
class OneRoundSchedule:
    """A one-round communication pattern in matrix form.

    Attributes
    ----------
    groups:
        The groups ``I_0, …, I_r`` (a partition of the participants).
    views:
        The view sets ``P_0, …, P_r``; every process of ``groups[s]`` reads
        exactly the writes of ``views[s]``.
    """

    groups: tuple[Ids, ...]
    views: tuple[Ids, ...]

    def __post_init__(self) -> None:
        if len(self.groups) != len(self.views):
            raise ScheduleError(
                "schedule must have as many groups as view sets"
            )
        if not self.groups:
            raise ScheduleError("schedule must have at least one group")
        participants = self.participants
        seen: set = set()
        for group in self.groups:
            if not group:
                raise ScheduleError("schedule groups must be non-empty")
            if group & seen:
                raise ScheduleError("schedule groups must be disjoint")
            seen |= group
        if self.views[0] != participants:
            raise ScheduleError(
                "condition (3) violated: P_0 must equal the participant set"
            )
        suffix: Ids = frozenset()
        for index in range(len(self.groups) - 1, -1, -1):
            suffix = suffix | self.groups[index]
            if not suffix <= self.views[index]:
                raise ScheduleError(
                    "condition (5) violated: P_s must contain "
                    "I_s ∪ … ∪ I_r"
                )
            if not self.views[index] <= participants:
                raise ScheduleError(
                    "condition (2) violated: P_s must be a subset of I"
                )

    @property
    def participants(self) -> Ids:
        """The participant set ``I = I_0 ∪ … ∪ I_r``."""
        return frozenset(chain.from_iterable(self.groups))

    def view_map(self) -> ViewMap:
        """The per-process view sets ``{i: P_s}`` for ``i ∈ I_s``."""
        result: ViewMap = {}
        for group, view in zip(self.groups, self.views):
            for process in group:
                result[process] = view
        return result

    def view_of(self, process: int) -> Ids:
        """The set of processes whose writes ``process`` reads."""
        for group, view in zip(self.groups, self.views):
            if process in group:
                return view
        raise ScheduleError(f"process {process} does not participate")

    def is_snapshot(self) -> bool:
        """``True`` iff the view sets form a chain (snapshot condition)."""
        ordered = sorted(self.views, key=len)
        return all(
            ordered[i] <= ordered[i + 1] for i in range(len(ordered) - 1)
        )

    def is_immediate_snapshot(self) -> bool:
        """``True`` iff the matrix satisfies the immediate-snapshot condition.

        For every group ``I_i`` and every ``q ∈ P_i`` with ``q ∈ I_j``, it
        must hold that ``P_j ⊆ P_i``.
        """
        location = {}
        for index, group in enumerate(self.groups):
            for process in group:
                location[process] = index
        for index, view in enumerate(self.views):
            for seen_process in view:
                other = location[seen_process]
                if not self.views[other] <= view:
                    return False
        return True

    def solo_processes(self) -> Ids:
        """Processes whose view is exactly themselves (solo executions)."""
        return frozenset(
            process
            for process, view in self.view_map().items()
            if view == frozenset({process})
        )

    def blocks(self) -> tuple[Ids, ...]:
        """Temporal blocks ``B_1, …, B_k`` for immediate-snapshot schedules.

        The matrix orders groups by decreasing views; temporally the group
        with the *smallest* view acts first.  Only meaningful when
        :meth:`is_immediate_snapshot` holds.

        Raises
        ------
        ScheduleError
            If the schedule is not an immediate-snapshot schedule.
        """
        if not self.is_immediate_snapshot():
            raise ScheduleError(
                "temporal blocks are only defined for immediate-snapshot "
                "schedules"
            )
        indexed = sorted(
            range(len(self.groups)), key=lambda s: len(self.views[s])
        )
        merged: list[Ids] = []
        merged_views: list[Ids] = []
        for s in indexed:
            if merged_views and self.views[s] == merged_views[-1]:
                merged[-1] = merged[-1] | self.groups[s]
            else:
                merged.append(self.groups[s])
                merged_views.append(self.views[s])
        return tuple(merged)


def schedule_from_blocks(blocks: Sequence[Iterable[int]]) -> OneRoundSchedule:
    """Build the immediate-snapshot schedule of temporal blocks ``B_1…B_k``.

    Every process of block ``B_s`` sees ``B_1 ∪ … ∪ B_s``.  The returned
    matrix lists groups in the paper's order (largest view first).
    """
    resolved = [frozenset(block) for block in blocks]
    if not resolved:
        raise ScheduleError("at least one block is required")
    groups: list[Ids] = []
    views: list[Ids] = []
    prefix: Ids = frozenset()
    for block in resolved:
        if not block:
            raise ScheduleError("blocks must be non-empty")
        if block & prefix:
            raise ScheduleError("blocks must be disjoint")
        prefix = prefix | block
        groups.append(block)
        views.append(prefix)
    groups.reverse()
    views.reverse()
    return OneRoundSchedule(tuple(groups), tuple(views))


def _set_partitions(items: tuple[int, ...]) -> Iterator[list[Ids]]:
    """Yield every partition of ``items`` into non-empty unordered parts."""
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    for partial in _set_partitions(rest):
        for index in range(len(partial)):
            updated = list(partial)
            updated[index] = updated[index] | {first}
            yield updated
        yield partial + [frozenset({first})]


def ordered_partitions(ids: Iterable[int]) -> Iterator[tuple[Ids, ...]]:
    """Yield every ordered set partition of ``ids`` (temporal block order).

    The number of ordered partitions of an ``n``-set is the ``n``-th Fubini
    number (1, 3, 13, 75, 541, …) — exactly the facet count of the standard
    chromatic subdivision.
    """
    from itertools import permutations

    items = tuple(sorted(set(ids)))
    if not items:
        return
    for partition in _set_partitions(items):
        for arrangement in permutations(partition):
            yield tuple(arrangement)


def immediate_snapshot_schedules(
    ids: Iterable[int],
) -> Iterator[OneRoundSchedule]:
    """Yield the immediate-snapshot schedules: one per ordered partition."""
    for blocks in ordered_partitions(ids):
        yield schedule_from_blocks(blocks)


def _subsets_containing(
    lower: Ids, universe: Ids
) -> Iterator[Ids]:
    """Yield every set ``S`` with ``lower ⊆ S ⊆ universe``."""
    optional = tuple(sorted(universe - lower))
    for size in range(len(optional) + 1):
        for extra in combinations(optional, size):
            yield lower | frozenset(extra)


def collect_schedules(ids: Iterable[int]) -> Iterator[OneRoundSchedule]:
    """Yield every collect-model schedule (matrix) over ``ids``.

    Enumeration follows the matrix conditions directly: for every ordered
    partition ``I_0, …, I_r`` (in matrix order) choose each ``P_s`` with
    ``I_s ∪ … ∪ I_r ⊆ P_s ⊆ I`` and ``P_0 = I``.  Distinct matrices may
    induce the same view map; deduplicate with
    :func:`view_maps_of_schedules` when only views matter.
    """
    participants = frozenset(ids)
    if not participants:
        return
    for groups in ordered_partitions(participants):
        suffixes: list[Ids] = []
        suffix: Ids = frozenset()
        for group in reversed(groups):
            suffix = suffix | group
            suffixes.append(suffix)
        suffixes.reverse()

        def choose(
            index: int, chosen: tuple[Ids, ...]
        ) -> Iterator[OneRoundSchedule]:
            if index == len(groups):
                yield OneRoundSchedule(groups, chosen)
                return
            if index == 0:
                yield from choose(1, (participants,))
                return
            for view in _subsets_containing(suffixes[index], participants):
                yield from choose(index + 1, chosen + (view,))

        yield from choose(0, ())


def snapshot_schedules(ids: Iterable[int]) -> Iterator[OneRoundSchedule]:
    """Yield the snapshot-model schedules: collect matrices whose views chain."""
    for schedule in collect_schedules(ids):
        if schedule.is_snapshot():
            yield schedule


def view_maps_of_schedules(
    schedules: Iterable[OneRoundSchedule],
) -> list[ViewMap]:
    """Deduplicate schedules down to their distinct view maps.

    Returns the view maps in a deterministic order (sorted by the per-process
    view tuples).
    """
    seen = {}
    for schedule in schedules:
        view_map = schedule.view_map()
        key = tuple(
            (process, tuple(sorted(view)))
            for process, view in sorted(view_map.items())
        )
        seen.setdefault(key, view_map)
    return [seen[key] for key in sorted(seen)]
