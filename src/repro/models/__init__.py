"""Iterated asynchronous computation models.

One round of the generic full-information protocol (Algorithm 1) is a
*communication pattern*: which processes see which writes.  The paper encodes
patterns as matrices ``[[P_0 … P_r],[I_0 … I_r]]`` (Appendix A.3.4); this
subpackage enumerates them for the three models of the paper —

* **write-collect** (:class:`~repro.models.collect.CollectModel`),
* **write-snapshot** (:class:`~repro.models.snapshot.SnapshotModel`),
* **iterated immediate snapshot** —  IIS
  (:class:`~repro.models.immediate.ImmediateSnapshotModel`),

and turns them into one-round protocol complexes ``P^(1)(σ)`` and iterated
protocol complexes ``P^(t)`` (:mod:`repro.models.protocol`).  Affine
restrictions of IIS live in :mod:`repro.models.affine`.
"""

from repro.models.schedules import (
    OneRoundSchedule,
    ordered_partitions,
    collect_schedules,
    snapshot_schedules,
    immediate_snapshot_schedules,
    schedule_from_blocks,
    view_maps_of_schedules,
)
from repro.models.base import IteratedModel, ComputationModel
from repro.models.collect import CollectModel
from repro.models.snapshot import SnapshotModel
from repro.models.immediate import (
    ImmediateSnapshotModel,
    standard_chromatic_subdivision,
)
from repro.models.affine import (
    AffineModel,
    k_concurrency_model,
    no_synchrony_model,
)
from repro.models.protocol import ProtocolOperator

__all__ = [
    "OneRoundSchedule",
    "ordered_partitions",
    "collect_schedules",
    "snapshot_schedules",
    "immediate_snapshot_schedules",
    "schedule_from_blocks",
    "view_maps_of_schedules",
    "IteratedModel",
    "ComputationModel",
    "CollectModel",
    "SnapshotModel",
    "ImmediateSnapshotModel",
    "standard_chromatic_subdivision",
    "AffineModel",
    "k_concurrency_model",
    "no_synchrony_model",
    "ProtocolOperator",
]
