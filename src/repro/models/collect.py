"""The write-collect model.

One round: every participant writes its view to its register of the round's
array and then reads all registers sequentially, in arbitrary order
(Algorithm 1).  The resulting one-round complex is the largest of the three
models — its facets are exactly the view simplices of the collect matrices
of Appendix A.3.4 (Fig. 8(d) shows the simplices unique to it).
"""

from __future__ import annotations


from repro.models.base import IteratedModel
from repro.models.schedules import collect_schedules, view_maps_of_schedules

__all__ = ["CollectModel"]


class CollectModel(IteratedModel):
    """Iterated write-collect (sequential reads)."""

    name = "write-collect"

    def _enumerate_view_maps(
        self, ids: frozenset[int]
    ) -> list[dict[int, frozenset[int]]]:
        return view_maps_of_schedules(collect_schedules(ids))
