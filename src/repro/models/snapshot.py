"""The write-snapshot model.

One round: every participant writes, then takes an *atomic snapshot* of the
whole round array.  Because snapshots are linearizable, any two views are
comparable under inclusion — the views of one round form a chain (footnote 1
of the paper).  The one-round complex sits strictly between immediate
snapshot and collect (Fig. 8(c)).
"""

from __future__ import annotations


from repro.models.base import IteratedModel
from repro.models.schedules import snapshot_schedules, view_maps_of_schedules

__all__ = ["SnapshotModel"]


class SnapshotModel(IteratedModel):
    """Iterated write-snapshot (atomic collect)."""

    name = "write-snapshot"

    def _enumerate_view_maps(
        self, ids: frozenset[int]
    ) -> list[dict[int, frozenset[int]]]:
        return view_maps_of_schedules(snapshot_schedules(ids))
