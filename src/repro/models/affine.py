"""Affine sub-models of IIS.

An *affine model* (Kuznetsov–Rieutord–He, cited as [31]) is obtained from the
IIS model by removing some executions — i.e., keeping a subcomplex of the
standard chromatic subdivision, round after round.  The speedup theorem
(Theorem 1) applies to any affine model that still *allows solo executions*.

:class:`AffineModel` wraps a base iterated model with a predicate on view
maps; it refuses construction if the predicate kills a solo execution, since
the speedup machinery would then be unsound for the resulting model.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.errors import ModelError
from repro.models.base import IteratedModel

__all__ = ["AffineModel", "k_concurrency_model", "no_synchrony_model"]

ViewMap = dict[int, frozenset[int]]


class AffineModel(IteratedModel):
    """A facet-restricted iterated model.

    Parameters
    ----------
    base:
        The model whose executions are being restricted (typically IIS).
    keep:
        Predicate on view maps; executions for which it returns ``False``
        are removed from every round.
    name:
        Label for reports.
    require_solo:
        When true (default), construction-time use on any participant set
        verifies that solo executions survive the restriction, as required
        by the hypotheses of Theorem 1.  The check runs lazily per
        participant set, the first time that set is used.
    """

    def __init__(
        self,
        base: IteratedModel,
        keep: Callable[[ViewMap], bool],
        name: Optional[str] = None,
        require_solo: bool = True,
    ) -> None:
        self._base = base
        self._keep = keep
        self._require_solo = require_solo
        self.name = name or f"affine({base.name})"

    def _enumerate_view_maps(self, ids: frozenset[int]) -> list[ViewMap]:
        kept = [
            view_map
            for view_map in self._base.view_maps(ids)
            if self._keep(view_map)
        ]
        if self._require_solo:
            self._verify_solo(ids, kept)
        return kept

    def one_round_schedule_allowed(self, view_map: ViewMap) -> bool:
        """Expose the predicate (useful for adversaries and tests)."""
        return self._keep(view_map)

    def _verify_solo(
        self, ids: frozenset[int], kept: Iterable[ViewMap]
    ) -> None:
        kept = list(kept)
        for process in ids:
            has_solo = any(
                view_map.get(process) == frozenset({process})
                for view_map in kept
            )
            if not has_solo:
                raise ModelError(
                    f"affine restriction removes every solo execution of "
                    f"process {process} among {sorted(ids)}; the speedup "
                    "theorem does not apply to such models "
                    "(pass require_solo=False to bypass)"
                )


def _block_sizes(view_map: ViewMap) -> list:
    """Temporal block sizes of an immediate-snapshot view map.

    Views of an IS execution are nested; processes sharing a view form a
    block.  Only call on IS view maps (the base model guarantees it when
    the base is :class:`~repro.models.immediate.ImmediateSnapshotModel`).
    """
    by_view: dict[frozenset[int], int] = {}
    for view in view_map.values():
        by_view[view] = by_view.get(view, 0) + 1
    return [count for _, count in sorted(by_view.items(), key=lambda kv: len(kv[0]))]


def k_concurrency_model(base: IteratedModel, k: int) -> AffineModel:
    """The k-concurrency affine model (Gafni–Guerraoui, cited as [21]).

    At most ``k`` processes are active simultaneously: every immediate-
    snapshot block has size at most ``k``.  For ``k = 1`` the executions
    are fully sequential; for ``k ≥ n`` the model coincides with the base.
    Solo executions survive for every ``k ≥ 1``, so the speedup theorem
    applies (Theorem 1's hypothesis).
    """
    if k < 1:
        raise ModelError("concurrency level k must be at least 1")

    def keep(view_map: ViewMap) -> bool:
        return all(size <= k for size in _block_sizes(view_map))

    return AffineModel(base, keep, name=f"{k}-concurrency({base.name})")


def no_synchrony_model(base: IteratedModel) -> AffineModel:
    """The affine model that forbids the fully synchronous execution.

    A minimal, instructive affine restriction: one facet of the chromatic
    subdivision is removed each round.  Solo executions are untouched.
    """

    def keep(view_map: ViewMap) -> bool:
        if len(view_map) <= 1:
            # The solo "synchronous" run of a single participant must stay:
            # a one-process round has no asynchrony to remove.
            return True
        everyone = frozenset(view_map)
        return not all(view == everyone for view in view_map.values())

    return AffineModel(base, keep, name=f"no-sync({base.name})")
