"""Domain invariant audit rules over live objects.

The paper's machinery rests on structural side conditions that the data
types only partially enforce at construction time — and that trusted fast
paths (``SimplicialComplex.from_maximal``, ``check=False`` maps, the
memoization layer) deliberately skip.  This module turns each side
condition into a composable :class:`AuditRule` that inspects live objects
and reports :class:`~repro.checks.findings.Finding` records instead of
raising, so a single run can surface every violation at once.

Rule catalog
------------

========  =========  ====================================================
rule id   kind       invariant
========  =========  ====================================================
AUD001    complex    chromaticity: every simplex carries pairwise
                     distinct integer colors (Appendix A.1)
AUD002    complex    facet maximality: no stored facet is a face of
                     another (the ``from_maximal`` contract)
AUD003    carrier    name preservation: ``Δ(σ)`` only uses the colors of
                     ``σ``
AUD004    carrier    monotonicity: ``σ' ⊆ σ ⟹ Δ(σ') ⊆ Δ(σ)`` (only for
                     maps declared monotone)
AUD005    schedule   the matrix conditions (1)–(5) of Appendix A.3.4,
                     plus the snapshot chain / immediate-snapshot
                     conditions when the schedule claims them
AUD006    model      one-round structure: ``P^(1)(σ)`` is pure of
                     dimension ``|σ|−1`` on ``ID(σ)``, contains the solo
                     executions, and is idempotent on solo views
                     (``P^(1)({v}) = {solo(v)}``)
AUD007    model      memo coherence: every cached one-round complex and
                     view-map table equals a freshly built one
AUD008    task       task well-formedness: ``Δ(σ)`` is chromatic and
                     contained in the output complex
AUD009    closure    closure well-formedness (Theorem 1): ``Δ ⊆ Δ'`` and
                     ``Δ'`` is name-preserving
AUD010    faults-    chaos campaign configuration soundness: known cell,
          config     supported model, probabilities in range, crash
                     budget ``0 ≤ t < n``, illegal injectors gated behind
                     ``allow_illegal``
AUD011    trace      telemetry trace artifact well-formedness: every
                     span closed with numeric ``start ≤ end``, children
                     nested within their parent's interval, attributes
                     JSON-serializable, metric deltas numeric
AUD012    parallel   process-pool coherence: the parallel merged
                     protocol complex equals the serial operator's
                     output, and sampled facets survive a wire-codec
                     round trip unchanged
AUD013    complex    bitmask-core parity: pruning, containment,
                     ``proj``/``star``/``skeleton``, ``union``/
                     ``intersection`` and the f-vector computed through
                     the mask index equal the retained object-set
                     reference algorithms on the live complex
AUD014    super-     supervisor resilience: a chaos campaign run under
          visor      seeded executor faults (worker kills, transient
                     errors) with retries/pool-rebuild produces a JSON
                     report byte-identical to the fault-free serial
                     run, and quarantine fires exactly when retries are
                     exhausted
AUD015    serve      service parity: responses served by a live
                     ``repro.serve`` instance (cold, and warm from the
                     content-addressed store) are byte-identical to the
                     in-process ``handlers.execute`` result, and warm
                     repeats are answered from the store
AUD016    complex    mask-kernel parity: 1-skeleton adjacency,
                     connected components, shortest paths, ridge
                     incidence, the pseudomanifold test, and the
                     boundary complex computed by the mask-sweep
                     kernels equal the object-set oracles of
                     ``topology/reference.py`` on the live complex
========  =========  ====================================================

Each rule applies to one *kind* of :class:`AuditTarget`; the driver in
:mod:`repro.checks.audit` matches targets to rules by kind.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Iterator,
    Mapping,
    Optional,
    Sequence,
)

from repro.checks.findings import Finding, Severity
from repro.errors import ReproError
from repro.models.base import ComputationModel, IteratedModel
from repro.models.schedules import OneRoundSchedule
from repro.tasks.task import Task
from repro.topology.carrier import CarrierMap
from repro.topology.complex import SimplicialComplex
from repro.topology.simplex import Simplex
from repro.topology.vertex import Vertex

__all__ = [
    "AuditTarget",
    "AuditRule",
    "RULES",
    "audit_rule",
    "rules_for_kind",
    "run_rules",
]


@dataclass(frozen=True)
class AuditTarget:
    """One live object submitted to the auditor.

    Attributes
    ----------
    kind:
        What the object is: ``complex``, ``carrier``, ``schedule``,
        ``task``, ``model``, or ``closure``.  Rules declare the kind they
        audit.
    path:
        Stable human-readable location, e.g. ``E7/task[ε-AA]/Δ``.
    obj:
        The object itself.
    extras:
        Rule-specific context: sample simplices for model probes
        (``samples``), the monotonicity expectation for carrier maps
        (``expect_monotone``), the claimed schedule model
        (``schedule_model``), the base task of a closure (``base_task``).
    """

    kind: str
    path: str
    obj: Any
    extras: Mapping[str, Any] = field(default_factory=dict)


Checker = Callable[[AuditTarget], Iterator[Finding]]


@dataclass(frozen=True)
class AuditRule:
    """One named, composable invariant check."""

    rule_id: str
    kind: str
    title: str
    check: Checker

    def run(self, target: AuditTarget) -> list[Finding]:
        """Run the rule on a matching target, collecting its findings."""
        return list(self.check(target))


RULES: dict[str, AuditRule] = {}


def audit_rule(
    rule_id: str, kind: str, title: str
) -> Callable[[Checker], Checker]:
    """Register a checker function as the audit rule ``rule_id``."""

    def register(function: Checker) -> Checker:
        if rule_id in RULES:
            raise ValueError(f"duplicate audit rule id {rule_id!r}")
        RULES[rule_id] = AuditRule(rule_id, kind, title, function)
        return function

    return register


def rules_for_kind(kind: str) -> list[AuditRule]:
    """The registered rules applying to targets of the given kind."""
    return [rule for rule in RULES.values() if rule.kind == kind]


def run_rules(targets: Sequence[AuditTarget]) -> list[Finding]:
    """Run every applicable rule on every target."""
    findings: list[Finding] = []
    for target in targets:
        for rule in rules_for_kind(target.kind):
            findings.extend(rule.run(target))
    return findings


# ----------------------------------------------------------------------
# Complex rules
# ----------------------------------------------------------------------
@audit_rule("AUD001", "complex", "complexes are chromatic")
def check_complex_chromaticity(target: AuditTarget) -> Iterator[Finding]:
    """Every facet must carry pairwise-distinct integer colors.

    The :class:`Simplex` constructor enforces this, but interning bugs or
    forged objects (``object.__new__``) can corrupt it; the audit re-walks
    the raw vertex tuples.
    """
    complex_: SimplicialComplex = target.obj
    for facet in complex_.facets:
        if not isinstance(facet, Simplex):
            # from_maximal trusts its caller and will happily intern a
            # bare Vertex (or anything hashable) as a "facet".
            yield Finding(
                "AUD001",
                Severity.ERROR,
                target.path,
                f"stored facet {facet!r} is a "
                f"{type(facet).__name__}, not a Simplex (from_maximal "
                "accepted a malformed family)",
            )
            continue
        colors = [v.color for v in facet.vertices]
        if any(not isinstance(c, int) for c in colors):
            yield Finding(
                "AUD001",
                Severity.ERROR,
                target.path,
                f"facet {facet!r} carries a non-integer color",
            )
        elif len(set(colors)) != len(colors):
            yield Finding(
                "AUD001",
                Severity.ERROR,
                target.path,
                f"facet {facet!r} repeats a color: {sorted(colors)}",
            )


@audit_rule("AUD002", "complex", "stored facets are inclusion-maximal")
def check_facet_maximality(target: AuditTarget) -> Iterator[Finding]:
    """No stored facet may be a face of another stored facet.

    A violation means some construction site passed a non-maximal family
    to ``SimplicialComplex.from_maximal``, which corrupts every
    facet-based accessor (dimension, purity, f-vector, equality).
    """
    complex_: SimplicialComplex = target.obj
    # Non-Simplex entries are AUD001's problem; skip them here.
    facets = sorted(
        (f for f in complex_.facets if isinstance(f, Simplex)), key=len
    )
    vertex_sets = [frozenset(f.vertices) for f in facets]
    for i, small in enumerate(vertex_sets):
        for j in range(i + 1, len(vertex_sets)):
            if small < vertex_sets[j]:
                yield Finding(
                    "AUD002",
                    Severity.ERROR,
                    target.path,
                    f"facet {facets[i]!r} is a proper face of "
                    f"{facets[j]!r}; the stored family is not maximal "
                    "(from_maximal contract violated)",
                )
                break


@audit_rule(
    "AUD013",
    "complex",
    "bitmask core agrees with the object-set reference",
)
def check_bitmask_reference_parity(
    target: AuditTarget,
) -> Iterator[Finding]:
    """Cross-check the mask index against the retained seed algorithms.

    The bitmask-native core answers pruning, membership, projection,
    star, skeleton, union, intersection, and f-vector queries through
    integer masks; :mod:`repro.topology.reference` keeps the seed
    object-set implementations.  This probe runs both on the live
    complex and requires identical answers — a divergence means the mask
    index (or a trusted constructor feeding it) is corrupt even though
    every individual facet looks healthy.

    Malformed families (non-``Simplex`` facets, repeated or non-integer
    colors) are AUD001's findings and are skipped here; oversized
    complexes are audited on a deterministic 64-facet subfamily so the
    reference side stays affordable.
    """
    from repro.topology import reference

    complex_: SimplicialComplex = target.obj
    facets = list(complex_.facets)
    if not facets:
        return
    for facet in facets:
        if not isinstance(facet, Simplex):
            return
        colors = [v.color for v in facet.vertices]
        if any(not isinstance(c, int) for c in colors):
            return
        if len(set(colors)) != len(colors):
            return

    def mismatch(operation: str, detail: str) -> Finding:
        return Finding(
            "AUD013",
            Severity.ERROR,
            target.path,
            f"bitmask/{operation} disagrees with the object-set "
            f"reference: {detail}",
        )

    ordered = sorted(facets, key=lambda s: s._sort_key())
    if len(ordered) > 64:
        # A subfamily of an inclusion-maximal family is still maximal.
        ordered = ordered[:64]
        live = SimplicialComplex.from_maximal(ordered)
    else:
        live = complex_
    family = frozenset(ordered)

    candidates = [face for facet in ordered for face in facet.faces()]
    repruned = SimplicialComplex(candidates).facets
    expected = reference.prune_reference(candidates)
    if repruned != expected:
        yield mismatch(
            "prune",
            f"{len(repruned)} facets vs {len(expected)} from the "
            "reference pruning pass",
        )

    for facet in ordered[:8]:
        for face in facet.faces():
            if (face in live) != reference.contains_reference(
                family, face
            ):
                yield mismatch(
                    "contains", f"membership of {face!r} diverges"
                )
                break
        vertex = facet.vertices[0]
        absent = Vertex(vertex.color, ("aud013-absent", vertex.value))
        probe = Simplex(
            (absent,) + facet.vertices[1:]
        )
        if (probe in live) != reference.contains_reference(family, probe):
            yield mismatch(
                "contains", f"membership of absent {probe!r} diverges"
            )

    colors = sorted(live.ids)
    for keep in (colors[:1], colors[1:], colors):
        if not keep:
            continue
        if live.proj(keep).facets != reference.proj_reference(
            family, keep
        ):
            yield mismatch("proj", f"projection onto {keep} diverges")

    star_vertex = ordered[0].vertices[0]
    if live.star(star_vertex).facets != reference.star_reference(
        family, star_vertex
    ):
        yield mismatch("star", f"star of {star_vertex!r} diverges")

    k = live.dim - 1
    if live.skeleton(k).facets != reference.skeleton_reference(family, k):
        yield mismatch("skeleton", f"{k}-skeleton diverges")

    left, right = ordered[::2], ordered[1::2]
    if left and right:
        left_complex = SimplicialComplex.from_maximal(left)
        right_complex = SimplicialComplex.from_maximal(right)
        if left_complex.union(
            right_complex
        ).facets != reference.union_reference(left, right):
            yield mismatch("union", "facet-half union diverges")
        small_left, small_right = left[:6], right[:6]
        if SimplicialComplex.from_maximal(small_left).intersection(
            SimplicialComplex.from_maximal(small_right)
        ).facets != reference.intersection_reference(
            small_left, small_right
        ):
            yield mismatch(
                "intersection", "facet-half intersection diverges"
            )

    if live.f_vector() != reference.f_vector_reference(family):
        yield mismatch(
            "f-vector",
            f"{live.f_vector()} vs "
            f"{reference.f_vector_reference(family)}",
        )


@audit_rule(
    "AUD016",
    "complex",
    "mask kernels agree with the connectivity/structure oracles",
)
def check_mask_kernel_parity(target: AuditTarget) -> Iterator[Finding]:
    """Cross-check the mask-sweep kernels against the object oracles.

    Connectivity (:mod:`repro.topology.connectivity`) and structural
    invariants (:mod:`repro.topology.structure`) run as batch bitwise
    kernels over the complex's mask index;
    :mod:`repro.topology.reference` keeps the pre-kernel object-set
    algorithms.  This probe runs both on the live complex — the same
    target population as AUD013, one layer up the stack: AUD013 proves
    the index itself sound, this rule proves the sweeps over it.

    Malformed families are AUD001's findings and are skipped here;
    oversized complexes are audited on a deterministic 64-facet
    subfamily so the reference side stays affordable.
    """
    from repro.topology import reference
    from repro.topology.connectivity import (
        connected_components,
        one_skeleton_adjacency,
        shortest_path,
    )
    from repro.topology.structure import (
        boundary_complex,
        is_pseudomanifold,
        ridge_incidence,
    )

    complex_: SimplicialComplex = target.obj
    facets = list(complex_.facets)
    if not facets:
        return
    for facet in facets:
        if not isinstance(facet, Simplex):
            return
        colors = [v.color for v in facet.vertices]
        if any(not isinstance(c, int) for c in colors):
            return
        if len(set(colors)) != len(colors):
            return

    def mismatch(operation: str, detail: str) -> Finding:
        return Finding(
            "AUD016",
            Severity.ERROR,
            target.path,
            f"mask-kernel {operation} disagrees with the object-set "
            f"oracle: {detail}",
        )

    ordered = sorted(facets, key=lambda s: s._sort_key())
    if len(ordered) > 64:
        # A subfamily of an inclusion-maximal family is still maximal.
        ordered = ordered[:64]
        live = SimplicialComplex.from_maximal(ordered)
    else:
        live = complex_
    family = frozenset(ordered)

    if one_skeleton_adjacency(live) != reference.adjacency_reference(
        family
    ):
        yield mismatch("adjacency", "1-skeleton neighbor sets diverge")

    live_components = connected_components(live)
    oracle_components = reference.components_reference(family)
    if live_components != oracle_components:
        yield mismatch(
            "components",
            f"{len(live_components)} components vs "
            f"{len(oracle_components)} from the oracle",
        )

    # Shortest paths can tie, so compare reachability and length, not
    # the vertex sequence.  Probing within the first component and
    # across components (when there are two) covers both answers.
    probes = []
    first = sorted(
        oracle_components[0], key=lambda v: v._sort_key()
    )
    probes.append((first[0], first[-1]))
    if len(oracle_components) > 1:
        second = sorted(
            oracle_components[1], key=lambda v: v._sort_key()
        )
        probes.append((first[0], second[0]))
    for start, goal in probes:
        live_path = shortest_path(live, start, goal)
        oracle_path = reference.shortest_path_reference(
            family, start, goal
        )
        live_length = None if live_path is None else len(live_path)
        oracle_length = None if oracle_path is None else len(oracle_path)
        if live_length != oracle_length:
            yield mismatch(
                "shortest-path",
                f"{start!r} → {goal!r} gives length {live_length} vs "
                f"{oracle_length}",
            )

    live_incidence = ridge_incidence(live)
    oracle_incidence = reference.ridge_incidence_reference(family)
    if {
        ridge: frozenset(found)
        for ridge, found in live_incidence.items()
    } != {
        ridge: frozenset(found)
        for ridge, found in oracle_incidence.items()
    }:
        yield mismatch("ridge-incidence", "ridge → facet maps diverge")

    for require_connected in (True, False):
        if is_pseudomanifold(
            live, require_connected
        ) != reference.is_pseudomanifold_reference(
            family, require_connected
        ):
            yield mismatch(
                "pseudomanifold",
                f"verdict diverges (require_connected="
                f"{require_connected})",
            )

    if boundary_complex(live).facets != reference.boundary_reference(
        family
    ):
        yield mismatch("boundary", "boundary facet sets diverge")


# ----------------------------------------------------------------------
# Carrier map rules
# ----------------------------------------------------------------------
@audit_rule("AUD003", "carrier", "carrier maps preserve names")
def check_carrier_chromatic(target: AuditTarget) -> Iterator[Finding]:
    """``Δ(σ)`` may only mention the colors (process names) of ``σ``."""
    carrier: CarrierMap = target.obj
    for simplex in carrier.domain:
        try:
            image = carrier(simplex)
        except ReproError as exc:
            yield Finding(
                "AUD003",
                Severity.ERROR,
                target.path,
                f"carrier map undefined on {simplex!r}: {exc}",
            )
            continue
        stray = image.ids - simplex.ids
        if stray:
            yield Finding(
                "AUD003",
                Severity.ERROR,
                target.path,
                f"image of {simplex!r} uses colors {sorted(stray)} "
                "outside ID(σ)",
            )


@audit_rule("AUD004", "carrier", "declared-monotone carrier maps are monotone")
def check_carrier_monotone(target: AuditTarget) -> Iterator[Finding]:
    """``σ' ⊆ σ ⟹ Δ(σ') ⊆ Δ(σ)`` for maps declared monotone.

    Task maps are *not* required to be monotone (local tasks are not), so
    the rule only audits targets whose ``expect_monotone`` extra is true.
    """
    if not target.extras.get("expect_monotone", False):
        return
    carrier: CarrierMap = target.obj
    for simplex in carrier.domain:
        big = carrier(simplex).simplices
        for face in simplex.proper_faces():
            small = carrier(face).simplices
            if not small <= big:
                missing = next(iter(small - big))
                yield Finding(
                    "AUD004",
                    Severity.ERROR,
                    target.path,
                    f"not monotone: {face!r} ⊆ {simplex!r} but the face's "
                    f"image contains {missing!r}, absent from the "
                    "simplex's image",
                )
                return


# ----------------------------------------------------------------------
# Schedule rules
# ----------------------------------------------------------------------
@audit_rule("AUD005", "schedule", "schedule matrices satisfy (1)–(5)")
def check_schedule_conditions(target: AuditTarget) -> Iterator[Finding]:
    """Re-verify the Appendix A.3.4 matrix conditions from the raw fields.

    ``OneRoundSchedule.__post_init__`` validates at construction, but
    forged or deserialized schedules bypass it; the audit recomputes every
    condition, plus the chain condition for schedules claiming the
    snapshot model and the footnote-2 condition for claimed
    immediate-snapshot schedules (``schedule_model`` extra: ``collect``,
    ``snapshot``, or ``iis``).
    """
    schedule: OneRoundSchedule = target.obj
    path = target.path
    groups, views = schedule.groups, schedule.views
    if len(groups) != len(views) or not groups:
        yield Finding(
            "AUD005",
            Severity.ERROR,
            path,
            f"malformed matrix: {len(groups)} groups vs {len(views)} "
            "view sets",
        )
        return
    participants = frozenset().union(*groups)
    if len(groups) > len(participants):
        yield Finding(
            "AUD005",
            Severity.ERROR,
            path,
            f"condition (1) violated: r = {len(groups) - 1} exceeds "
            f"|I| - 1 = {len(participants) - 1}",
        )
    if sum(len(g) for g in groups) != len(participants):
        yield Finding(
            "AUD005",
            Severity.ERROR,
            path,
            "condition (4) violated: the groups do not partition I",
        )
    for index, view in enumerate(views):
        if not view <= participants:
            yield Finding(
                "AUD005",
                Severity.ERROR,
                path,
                f"condition (2) violated: P_{index} = {sorted(view)} is "
                f"not a subset of I = {sorted(participants)}",
            )
    if views[0] != participants:
        yield Finding(
            "AUD005",
            Severity.ERROR,
            path,
            f"condition (3) violated: P_0 = {sorted(views[0])} differs "
            f"from I = {sorted(participants)}",
        )
    suffix: frozenset[str] = frozenset()
    for index in range(len(groups) - 1, -1, -1):
        suffix = suffix | groups[index]
        if not suffix <= views[index]:
            yield Finding(
                "AUD005",
                Severity.ERROR,
                path,
                f"condition (5) violated: P_{index} does not contain "
                f"I_{index} ∪ … ∪ I_r",
            )
    claimed = target.extras.get("schedule_model")
    if claimed in ("snapshot", "iis") and not schedule.is_snapshot():
        yield Finding(
            "AUD005",
            Severity.ERROR,
            path,
            "snapshot condition violated: the view sets do not form a "
            "chain (footnote 1)",
        )
    if claimed == "iis" and not schedule.is_immediate_snapshot():
        yield Finding(
            "AUD005",
            Severity.ERROR,
            path,
            "immediate-snapshot condition violated: q ∈ P_i ∩ I_j with "
            "P_j ⊄ P_i (footnote 2)",
        )


# ----------------------------------------------------------------------
# Model rules
# ----------------------------------------------------------------------
@audit_rule("AUD006", "model", "one-round complexes are well-structured")
def check_model_one_round(target: AuditTarget) -> Iterator[Finding]:
    """Structure of ``P^(1)(σ)`` on the target's sample simplices.

    Checks, per sample ``σ``: the complex is pure of dimension
    ``|σ| − 1``; its colors are exactly ``ID(σ)``; every process has a
    solo execution (the speedup theorem's hypothesis); and the protocol
    operator is *idempotent on solo views* — one round of a single
    process yields exactly the solo vertex, so re-running a solo round
    never invents information.
    """
    model: ComputationModel = target.obj
    samples: Sequence[Simplex] = target.extras.get("samples", ())
    for sigma in samples:
        prefix = f"{target.path}/P1({sigma!r})"
        complex_ = model.one_round_complex(sigma)
        if not complex_.is_pure() or complex_.dim != sigma.dim:
            yield Finding(
                "AUD006",
                Severity.ERROR,
                prefix,
                f"P^(1)(σ) must be pure of dimension {sigma.dim}, got "
                f"dim {complex_.dim} (pure={complex_.is_pure()})",
            )
        if complex_.ids != sigma.ids:
            yield Finding(
                "AUD006",
                Severity.ERROR,
                prefix,
                f"P^(1)(σ) colors {sorted(complex_.ids)} differ from "
                f"ID(σ) = {sorted(sigma.ids)}",
            )
        for vertex in sigma.vertices:
            solo = model.solo_vertex(vertex)
            if solo not in complex_.vertices:
                yield Finding(
                    "AUD006",
                    Severity.ERROR,
                    prefix,
                    f"no solo execution for process {vertex.color}: "
                    f"{solo!r} is not a vertex of P^(1)(σ)",
                )
            singleton = Simplex([vertex])
            solo_complex = model.one_round_complex(singleton)
            expected = SimplicialComplex.from_simplex(Simplex([solo]))
            if solo_complex != expected:
                yield Finding(
                    "AUD006",
                    Severity.ERROR,
                    prefix,
                    f"operator not idempotent on solo views: "
                    f"P^(1)({{{vertex!r}}}) has "
                    f"{len(solo_complex.facets)} facets instead of the "
                    "single solo vertex",
                )


@audit_rule("AUD007", "model", "memoized complexes match fresh builds")
def check_memo_coherence(target: AuditTarget) -> Iterator[Finding]:
    """Cache-coherence probe for the PR-1 memoization layer.

    Interned one-round complexes and view-map tables are shared across
    every consumer of a model instance; a single in-place mutation (or a
    cache poisoned by a buggy write) silently corrupts every later
    computation.  The probe rebuilds each cached entry through the
    uncached hook and requires exact equality.
    """
    model: ComputationModel = target.obj
    one_round_cache = getattr(model, "_one_round_cache", None) or {}
    # Cache keys are opaque (table_id, mask) int pairs; the values keep
    # the input simplex alongside the complex precisely so this probe
    # can rebuild without reverse-engineering masks.
    for sigma, cached in list(one_round_cache.values()):
        fresh = model._build_one_round_complex(sigma)
        if cached != fresh:
            yield Finding(
                "AUD007",
                Severity.ERROR,
                f"{target.path}/one-round-cache[{sigma!r}]",
                f"stale memo entry: cached complex ({len(cached.facets)} "
                f"facets) differs from a fresh build "
                f"({len(fresh.facets)} facets)",
            )
    if isinstance(model, IteratedModel):
        view_cache = getattr(model, "_view_map_cache", None) or {}
        for ids, cached_maps in list(view_cache.items()):
            fresh_maps = model._enumerate_view_maps(ids)
            if cached_maps != fresh_maps:
                yield Finding(
                    "AUD007",
                    Severity.ERROR,
                    f"{target.path}/view-map-cache[{sorted(ids)}]",
                    f"stale view-map entry: {len(cached_maps)} cached "
                    f"maps vs {len(fresh_maps)} freshly enumerated",
                )


# ----------------------------------------------------------------------
# Task and closure rules
# ----------------------------------------------------------------------
@audit_rule("AUD008", "task", "task triples are well-formed")
def check_task_well_formed(target: AuditTarget) -> Iterator[Finding]:
    """``Δ(σ)`` must be chromatic and contained in the output complex."""
    task: Task = target.obj
    for sigma in task.input_complex:
        try:
            allowed = task.delta(sigma)
        except ReproError as exc:
            yield Finding(
                "AUD008",
                Severity.ERROR,
                target.path,
                f"Δ undefined on {sigma!r}: {exc}",
            )
            continue
        stray_colors = allowed.ids - sigma.ids
        if stray_colors:
            yield Finding(
                "AUD008",
                Severity.ERROR,
                target.path,
                f"Δ({sigma!r}) uses colors {sorted(stray_colors)} "
                "outside ID(σ)",
            )
        stray = allowed.simplices - task.output_complex.simplices
        if stray:
            sample = next(iter(stray))
            yield Finding(
                "AUD008",
                Severity.ERROR,
                target.path,
                f"Δ({sigma!r}) contains {sample!r}, which is not a "
                "simplex of the output complex",
            )


@audit_rule("AUD009", "closure", "closures contain their base task")
def check_closure_well_formed(target: AuditTarget) -> Iterator[Finding]:
    """Theorem 1 well-formedness of a materialized closure ``CL_M(Π)``.

    The closure must keep the inputs of ``Π``, satisfy ``Δ(σ) ⊆ Δ'(σ)``
    (the remark after Definition 2), and stay name-preserving.  The
    target object is the closure *task*; the ``base_task`` extra is the
    task it was derived from, and the optional ``samples`` extra bounds
    the sweep.
    """
    closure: Task = target.obj
    base: Optional[Task] = target.extras.get("base_task")
    if base is None:
        return
    if closure.input_complex != base.input_complex:
        yield Finding(
            "AUD009",
            Severity.ERROR,
            target.path,
            "closure changed the input complex (Definition 2 keeps I)",
        )
        return
    samples = target.extras.get("samples")
    pool = list(samples) if samples is not None else list(base.input_complex)
    for sigma in pool:
        allowed = base.delta(sigma)
        prime = closure.delta(sigma)
        if not prime.ids <= sigma.ids:
            yield Finding(
                "AUD009",
                Severity.ERROR,
                target.path,
                f"Δ'({sigma!r}) uses colors outside ID(σ)",
            )
        missing = allowed.simplices - prime.simplices
        if missing:
            sample = next(iter(missing))
            yield Finding(
                "AUD009",
                Severity.ERROR,
                target.path,
                f"Δ({sigma!r}) ⊄ Δ'({sigma!r}): lost legal output "
                f"{sample!r} (closures only grow, Definition 2)",
            )


@audit_rule(
    "AUD010", "faults-config", "chaos campaign configurations are sound"
)
def check_faults_config(target: AuditTarget) -> Iterator[Finding]:
    """Soundness of a chaos :class:`~repro.faults.campaign.CampaignConfig`.

    The campaign runner validates eagerly; this rule re-checks the same
    conditions as findings (all at once, never raising) so ``repro check``
    can audit config constants and CLI presets without running anything:
    the cell must exist, the model must be supported by the cell (black
    box cells are IIS-only — general matrix schedules have no temporal
    blocks), probabilities must be in range, the crash budget must leave a
    survivor, and *illegal* injectors must be explicitly opted into.
    """
    from repro.faults.campaign import CELLS, ILLEGAL_MODES

    config = target.obj
    spec = CELLS.get(config.cell)
    if spec is None:
        yield Finding(
            "AUD010",
            Severity.ERROR,
            target.path,
            f"unknown chaos cell {config.cell!r}",
        )
        return
    if not 0.0 <= config.crash_probability <= 1.0:
        yield Finding(
            "AUD010",
            Severity.ERROR,
            target.path,
            f"crash probability {config.crash_probability} outside "
            "[0, 1]",
        )
    if config.model not in spec.models:
        yield Finding(
            "AUD010",
            Severity.ERROR,
            target.path,
            f"cell {config.cell!r} does not support model "
            f"{config.model!r} (allowed: {'/'.join(spec.models)})",
        )
    if not 0 <= config.t < config.n:
        yield Finding(
            "AUD010",
            Severity.ERROR,
            target.path,
            f"crash budget t={config.t} must satisfy 0 ≤ t < n="
            f"{config.n} (some process must survive)",
        )
    if not 0 < config.epsilon <= 1:
        yield Finding(
            "AUD010",
            Severity.ERROR,
            target.path,
            f"ε = {config.epsilon} outside (0, 1]",
        )
    if config.illegal is not None:
        if config.illegal not in ILLEGAL_MODES:
            yield Finding(
                "AUD010",
                Severity.ERROR,
                target.path,
                f"unknown illegal injector {config.illegal!r} "
                f"(known: {', '.join(ILLEGAL_MODES)})",
            )
        elif not config.allow_illegal:
            yield Finding(
                "AUD010",
                Severity.ERROR,
                target.path,
                f"illegal injector {config.illegal!r} configured "
                "without allow_illegal: model-breaking faults must be "
                "an explicit opt-in",
            )


def _audit_span_node(
    node: Any,
    location: str,
    path: str,
    parent_interval: Optional[tuple[float, float]],
) -> Iterator[Finding]:
    """Recursively validate one span node of a trace artifact."""
    import json as _json

    if not isinstance(node, dict):
        yield Finding(
            "AUD011",
            Severity.ERROR,
            path,
            f"{location}: span node is {type(node).__name__}, not an "
            "object",
        )
        return
    name = node.get("name")
    if not isinstance(name, str) or not name:
        yield Finding(
            "AUD011",
            Severity.ERROR,
            path,
            f"{location}: span has no non-empty string 'name'",
        )
        name = "?"
    where = f"{location}[{name}]"
    start = node.get("start")
    end = node.get("end")
    numeric = isinstance(start, (int, float)) and isinstance(
        end, (int, float)
    )
    if end is None:
        yield Finding(
            "AUD011",
            Severity.ERROR,
            path,
            f"{where}: span was never closed (end is null) — the "
            "traced region did not finish",
        )
    elif not numeric:
        yield Finding(
            "AUD011",
            Severity.ERROR,
            path,
            f"{where}: start/end must be numeric seconds, got "
            f"{start!r}/{end!r}",
        )
    elif start > end:
        yield Finding(
            "AUD011",
            Severity.ERROR,
            path,
            f"{where}: start {start} exceeds end {end} (negative "
            "duration)",
        )
    elif parent_interval is not None and (
        start < parent_interval[0] or end > parent_interval[1]
    ):
        yield Finding(
            "AUD011",
            Severity.ERROR,
            path,
            f"{where}: child interval [{start}, {end}] escapes its "
            f"parent's [{parent_interval[0]}, {parent_interval[1]}]",
        )
    status = node.get("status")
    if status not in ("ok", "error"):
        yield Finding(
            "AUD011",
            Severity.ERROR,
            path,
            f"{where}: status must be 'ok' or 'error', got {status!r}",
        )
    attributes = node.get("attributes", {})
    if not isinstance(attributes, dict):
        yield Finding(
            "AUD011",
            Severity.ERROR,
            path,
            f"{where}: attributes must be an object",
        )
    else:
        for key, value in attributes.items():
            try:
                _json.dumps(value)
            except (TypeError, ValueError):
                yield Finding(
                    "AUD011",
                    Severity.ERROR,
                    path,
                    f"{where}: attribute {key!r} is not "
                    f"JSON-serializable ({type(value).__name__})",
                )
    metrics = node.get("metrics", {})
    if not isinstance(metrics, dict):
        yield Finding(
            "AUD011",
            Severity.ERROR,
            path,
            f"{where}: metrics must be an object",
        )
    else:
        for key, value in metrics.items():
            if not isinstance(value, (int, float)) or isinstance(
                value, bool
            ):
                yield Finding(
                    "AUD011",
                    Severity.ERROR,
                    path,
                    f"{where}: metric {key!r} must be numeric, got "
                    f"{type(value).__name__}",
                )
    children = node.get("children", [])
    if not isinstance(children, list):
        yield Finding(
            "AUD011",
            Severity.ERROR,
            path,
            f"{where}: children must be a list",
        )
        return
    own_interval = (
        (float(start), float(end)) if numeric and start <= end else None
    )
    for position, child in enumerate(children):
        yield from _audit_span_node(
            child, f"{where}.children[{position}]", path, own_interval
        )


@audit_rule(
    "AUD011", "trace", "telemetry trace artifacts are well-formed"
)
def check_trace_artifact(target: AuditTarget) -> Iterator[Finding]:
    """Well-formedness of a finished ``repro-trace`` artifact.

    The exporters produce valid artifacts by construction (attributes
    are coerced at record time, open spans refuse to export); this rule
    re-checks the contract on the *serialized* artifact, so foreign or
    hand-edited traces — and regressions in the exporters themselves —
    are caught before a dashboard or ``repro trace summarize`` consumes
    them: every span closed, ``start ≤ end``, children nested within
    their parent's interval, attribute values JSON-serializable, metric
    deltas numeric.
    """
    from repro.telemetry.export import TRACE_FORMAT, TRACE_VERSION

    trace = target.obj
    if not isinstance(trace, dict):
        yield Finding(
            "AUD011",
            Severity.ERROR,
            target.path,
            f"trace artifact is {type(trace).__name__}, not an object",
        )
        return
    if trace.get("format") != TRACE_FORMAT:
        yield Finding(
            "AUD011",
            Severity.ERROR,
            target.path,
            f"unknown trace format {trace.get('format')!r} (expected "
            f"{TRACE_FORMAT!r})",
        )
        return
    if trace.get("version") != TRACE_VERSION:
        yield Finding(
            "AUD011",
            Severity.ERROR,
            target.path,
            f"unsupported trace version {trace.get('version')!r} "
            f"(expected {TRACE_VERSION})",
        )
        return
    spans = trace.get("spans")
    if not isinstance(spans, list):
        yield Finding(
            "AUD011",
            Severity.ERROR,
            target.path,
            "trace artifact has no 'spans' list",
        )
        return
    for position, root in enumerate(spans):
        yield from _audit_span_node(
            root, f"spans[{position}]", target.path, None
        )


# ----------------------------------------------------------------------
# Parallel engine rules
# ----------------------------------------------------------------------
@audit_rule(
    "AUD012", "parallel", "parallel expansion matches the serial operator"
)
def check_parallel_coherence(target: AuditTarget) -> Iterator[Finding]:
    """Cross-check the process-pool fan-out against the serial operator.

    The parallel engine promises bit-identical results at every worker
    count.  This probe expands the sample simplex twice from cold
    caches — once through a fresh serial operator, once through
    :func:`repro.parallel.expansion.parallel_of_complex` on a pool —
    and requires the merged facet sets to agree exactly.  A sampled
    facet subset is then pushed through the wire codec and must come
    back unchanged: the merge is only trustworthy if the encoding that
    carried it across process boundaries is faithful.
    """
    from repro.models.protocol import ProtocolOperator
    from repro.parallel.expansion import cold_model, parallel_of_complex
    from repro.topology.wire import decode_simplex, encode_simplex

    model: ComputationModel = target.obj
    sigma: Simplex = target.extras["sample"]
    rounds: int = target.extras.get("rounds", 2)
    workers: int = target.extras.get("workers", 2)
    base = SimplicialComplex.from_simplex(sigma)
    serial = ProtocolOperator(cold_model(model)).of_complex(
        base, rounds, workers=1
    )
    merged = parallel_of_complex(
        ProtocolOperator(cold_model(model)), base, rounds, workers
    )
    if merged.facets != serial.facets:
        missing = len(serial.facets - merged.facets)
        spurious = len(merged.facets - serial.facets)
        yield Finding(
            "AUD012",
            Severity.ERROR,
            f"{target.path}/P^{rounds}",
            f"parallel merge diverges from the serial operator: "
            f"{missing} facet(s) missing and {spurious} spurious "
            f"(serial has {len(serial.facets)}, parallel "
            f"{len(merged.facets)})",
        )
        return
    sample_size: int = target.extras.get("codec_sample", 8)
    for facet in merged.sorted_facets()[:sample_size]:
        round_tripped = decode_simplex(encode_simplex(facet))
        if round_tripped != facet:
            yield Finding(
                "AUD012",
                Severity.ERROR,
                f"{target.path}/codec[{facet!r}]",
                f"wire codec round trip altered a facet: "
                f"{facet!r} became {round_tripped!r}",
            )


# ----------------------------------------------------------------------
# Supervisor resilience rules
# ----------------------------------------------------------------------
@audit_rule(
    "AUD014",
    "supervisor",
    "fault-injected supervised runs equal fault-free serial runs",
)
def check_supervisor_resilience(target: AuditTarget) -> Iterator[Finding]:
    """Cross-check the execution supervisor against the serial baseline.

    The supervisor promises that retries, pool rebuilds, and serial
    degradation are *invisible* in the artifact: a campaign run under a
    seeded executor-fault plan (worker kills and transient errors on
    first attempts) must produce a JSON report byte-identical to the
    fault-free serial run.  The probe runs both and compares canonical
    JSON; it also checks the quarantine lattice on a tiny in-process
    map — a task whose faults outlast the retry budget must be
    quarantined, not silently dropped or folded as ``None``.
    """
    import json

    from repro.faults.campaign import report_to_json, run_campaign
    from repro.faults.executor import ExecutorFaultPlan
    from repro.parallel.supervisor import SupervisorConfig, supervised_map

    config = target.obj
    workers: int = target.extras.get("workers", 2)
    plan = ExecutorFaultPlan(
        seed=target.extras.get("fault_seed", 0),
        kill_rate=target.extras.get("kill_rate", 0.25),
        error_rate=target.extras.get("error_rate", 0.25),
        faulty_attempts=1,
    )
    supervisor = SupervisorConfig(
        retries=2, backoff_base=0.0, fault_plan=plan
    )
    baseline = json.dumps(
        report_to_json(run_campaign(config, workers=1)), sort_keys=True
    )
    supervised = json.dumps(
        report_to_json(
            run_campaign(config, workers=workers, supervisor=supervisor)
        ),
        sort_keys=True,
    )
    if supervised != baseline:
        yield Finding(
            "AUD014",
            Severity.ERROR,
            f"{target.path}/report",
            f"fault-injected supervised campaign ({workers} workers, "
            f"kill_rate={plan.kill_rate}, error_rate={plan.error_rate}) "
            "diverges from the fault-free serial report — supervision "
            "leaked into the artifact",
        )
    poison = SupervisorConfig(
        retries=1,
        backoff_base=0.0,
        fault_plan=ExecutorFaultPlan(
            seed=0, error_rate=1.0, faulty_attempts=99
        ),
    )
    outcome = supervised_map(
        _aud014_identity,
        [0, 1],
        workers=1,
        config=poison,
        label="aud014-poison",
        on_quarantine="keep",
    )
    if len(outcome.quarantined) != 2 or outcome.completed != 0:
        yield Finding(
            "AUD014",
            Severity.ERROR,
            f"{target.path}/quarantine",
            f"poison tasks were not quarantined after exhausted "
            f"retries: {len(outcome.quarantined)} quarantined, "
            f"{outcome.completed} completed (expected 2 and 0)",
        )


def _aud014_identity(value: int) -> int:
    """Probe workload for the AUD014 quarantine check (module level so
    it ships to workers if the probe is ever run pooled)."""
    return value


# ----------------------------------------------------------------------
# Solver service rules
# ----------------------------------------------------------------------
@audit_rule(
    "AUD015",
    "serve",
    "served responses equal in-process results byte-for-byte",
)
def check_serve_parity(target: AuditTarget) -> Iterator[Finding]:
    """Cross-check the serving tier against the in-process handlers.

    The service promises that caching, single-flight deduplication, and
    micro-batching are *invisible* in the payload: every ``result`` a
    live server sends over a real socket must be byte-identical (as
    canonical JSON) to :func:`repro.serve.handlers.execute` on the same
    params.  The probe boots a real server with a fresh store, issues
    each probe twice — cold (computed) and warm (served from the
    content-addressed store) — and compares both against the in-process
    baseline; the warm repeat must additionally report store provenance
    (``served.cached``), or the persistence layer silently failed.
    """
    import os
    import tempfile

    from repro.errors import ServeError
    from repro.serve.handlers import execute
    from repro.serve.protocol import canonical_json
    from repro.serve.server import ServeConfig
    from repro.serve.testing import ServerHandle

    probes: Sequence[tuple[str, Mapping[str, Any]]] = target.obj
    with tempfile.TemporaryDirectory(prefix="repro-aud015-") as tmp:
        config = ServeConfig(
            store_dir=os.path.join(tmp, "store"), batch_window=0.0
        )
        with ServerHandle(config) as handle:
            for method, raw_params in probes:
                params = dict(raw_params)
                where = f"{target.path}/{method}"
                try:
                    expected = canonical_json(execute(method, params))
                except ReproError as exc:
                    yield Finding(
                        "AUD015",
                        Severity.ERROR,
                        where,
                        f"in-process baseline failed: {exc}",
                    )
                    continue
                try:
                    with handle.connect() as client:
                        cold = client.call_raw(method, params)
                        warm = client.call_raw(method, params)
                except (ServeError, OSError) as exc:
                    yield Finding(
                        "AUD015",
                        Severity.ERROR,
                        where,
                        f"served request failed: {exc}",
                    )
                    continue
                for label, envelope in (("cold", cold), ("warm", warm)):
                    if "result" not in envelope:
                        yield Finding(
                            "AUD015",
                            Severity.ERROR,
                            where,
                            f"{label} response is an error: "
                            f"{envelope.get('error')}",
                        )
                        continue
                    served = canonical_json(envelope["result"])
                    if served != expected:
                        yield Finding(
                            "AUD015",
                            Severity.ERROR,
                            where,
                            f"{label} served result diverges from the "
                            f"in-process payload: {served[:120]} != "
                            f"{expected[:120]} — the serving tier "
                            "leaked into the result bytes",
                        )
                meta = warm.get("served", {})
                if "result" in warm and not meta.get("cached"):
                    yield Finding(
                        "AUD015",
                        Severity.ERROR,
                        where,
                        "warm repeat was recomputed instead of served "
                        "from the content-addressed store "
                        f"(served metadata: {meta})",
                    )
