"""The audit driver: experiments in, findings out.

Glues the three layers of the checks subsystem together: resolve
experiment identifiers to audit targets (:mod:`repro.checks.targets`),
run every applicable rule (:mod:`repro.checks.rules`), and package the
results as a :class:`CheckReport` for the reporters and the CLI exit
policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.checks.astlint import iter_python_files, lint_paths
from repro.checks.findings import Finding, Severity, max_severity
from repro.checks.rules import AuditTarget, run_rules
from repro.checks.targets import targets_for_all, targets_for_experiment
from repro.experiments.registry import EXPERIMENTS

__all__ = [
    "CheckReport",
    "audit_experiments",
    "audit_all",
    "lint_report",
    "flow_report",
    "trace_report",
]


@dataclass(frozen=True)
class CheckReport:
    """The outcome of one ``repro check`` invocation."""

    scope: str
    findings: tuple[Finding, ...]
    targets_audited: int = 0
    files_linted: int = 0
    files_analyzed: int = 0
    baselined: int = 0
    experiments: tuple[str, ...] = field(default_factory=tuple)

    @property
    def worst(self) -> Severity:
        """The worst severity reported (``INFO`` when clean)."""
        return max_severity(self.findings)

    def is_clean(self) -> bool:
        """``True`` iff no rule reported anything."""
        return not self.findings

    def exit_code(self, fail_on: Severity) -> int:
        """``1`` iff some finding reaches the ``fail_on`` severity."""
        return (
            1
            if any(f.severity >= fail_on for f in self.findings)
            else 0
        )

    def merged_with(self, other: "CheckReport") -> "CheckReport":
        """Combine two reports (e.g. an audit and a lint run)."""
        scope = f"{self.scope} + {other.scope}"
        return CheckReport(
            scope=scope,
            findings=self.findings + other.findings,
            targets_audited=self.targets_audited + other.targets_audited,
            files_linted=self.files_linted + other.files_linted,
            files_analyzed=self.files_analyzed + other.files_analyzed,
            baselined=self.baselined + other.baselined,
            experiments=self.experiments + other.experiments,
        )


def audit_experiments(identifiers: Sequence[str]) -> CheckReport:
    """Audit the targets of the given experiment ids (deduplicated)."""
    resolved = [identifier.upper() for identifier in identifiers]
    targets: list[AuditTarget] = []
    seen_paths: set[str] = set()
    for identifier in resolved:
        for target in targets_for_experiment(identifier):
            if target.path not in seen_paths:
                seen_paths.add(target.path)
                targets.append(target)
    findings = run_rules(targets)
    return CheckReport(
        scope=f"audit[{', '.join(resolved)}]",
        findings=tuple(findings),
        targets_audited=len(targets),
        experiments=tuple(resolved),
    )


def audit_all() -> CheckReport:
    """Audit the targets of every registered experiment."""
    targets = targets_for_all()
    findings = run_rules(targets)
    return CheckReport(
        scope="audit[--all]",
        findings=tuple(findings),
        targets_audited=len(targets),
        experiments=tuple(
            sorted(EXPERIMENTS, key=lambda e: int(e[1:]))
        ),
    )


def lint_report(paths: Iterable[str]) -> CheckReport:
    """Run the AST lint over the given files/directories."""
    resolved = list(paths)
    files = sum(1 for _ in iter_python_files(resolved))
    findings = lint_paths(resolved)
    return CheckReport(
        scope=f"lint[{', '.join(resolved)}]",
        findings=tuple(findings),
        files_linted=files,
    )


def flow_report(
    paths: Iterable[str],
    baseline_path: str | None = None,
    update_baseline: bool = False,
) -> CheckReport:
    """Run the flow-sensitive analysis over the given files/directories.

    With ``update_baseline``, the current findings are written to
    ``baseline_path`` and the report comes back clean (the debt is now
    recorded, not outstanding).  Otherwise an existing baseline file
    filters grandfathered findings out; the suppressed count lands in
    ``CheckReport.baselined``.
    """
    from repro.checks.baseline import (
        apply_baseline,
        load_baseline,
        save_baseline,
    )
    from repro.checks.flow import analyze_paths

    resolved = list(paths)
    files = sum(1 for _ in iter_python_files(resolved))
    findings = analyze_paths(resolved)
    baselined = 0
    if update_baseline:
        if baseline_path is None:
            raise ValueError(
                "--update-baseline requires a baseline path"
            )
        baselined = save_baseline(baseline_path, findings)
        findings = []
    elif baseline_path is not None:
        try:
            baseline = load_baseline(baseline_path)
        except FileNotFoundError:
            baseline = set()
        except ValueError as exc:
            return CheckReport(
                scope=f"flow[{', '.join(resolved)}]",
                findings=(
                    Finding(
                        "RPR000", Severity.ERROR, baseline_path, str(exc)
                    ),
                ),
                files_analyzed=files,
            )
        findings, baselined = apply_baseline(findings, baseline)
    return CheckReport(
        scope=f"flow[{', '.join(resolved)}]",
        findings=tuple(findings),
        files_analyzed=files,
        baselined=baselined,
    )


def trace_report(paths: Iterable[str]) -> CheckReport:
    """Audit telemetry trace artifacts (AUD011) from files on disk.

    Unreadable or non-JSON files become ``AUD011`` findings rather than
    raising, so one bad artifact in a batch does not mask the others.
    """
    import json

    resolved = list(paths)
    findings: list[Finding] = []
    targets: list[AuditTarget] = []
    for path in resolved:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.loads(handle.read())
        except OSError as exc:
            findings.append(
                Finding(
                    "AUD011",
                    Severity.ERROR,
                    path,
                    f"cannot read trace artifact: {exc}",
                )
            )
            continue
        except ValueError as exc:
            findings.append(
                Finding(
                    "AUD011",
                    Severity.ERROR,
                    path,
                    f"trace artifact is not JSON: {exc}",
                )
            )
            continue
        targets.append(AuditTarget("trace", path, payload))
    findings.extend(run_rules(targets))
    return CheckReport(
        scope=f"trace[{', '.join(resolved)}]",
        findings=tuple(findings),
        targets_audited=len(targets),
    )
