"""Committed baseline of grandfathered flow findings.

A new flow rule landing on an existing tree usually surfaces findings
that are real debt but not this PR's business.  Rather than weakening
the rule or sprinkling suppressions, the CLI supports a *baseline
file*: ``repro check --flow --update-baseline`` records the current
findings, the file is committed, and subsequent runs report only
findings **not** in the baseline — so the gate stays at zero new
findings while the recorded debt stays visible (and shrinks as lines
are fixed, because fixed findings simply stop matching).

Fingerprints are ``(rule_id, file, message)`` with the line number
stripped from the path: unrelated edits above a grandfathered finding
move its line but must not un-baseline it.  The file is deterministic
(sorted, stable JSON) so diffs are reviewable.
"""

from __future__ import annotations

import json
from typing import Iterable, List, Set, Tuple

from repro.checks.findings import Finding, sort_findings

__all__ = [
    "Fingerprint",
    "fingerprint",
    "load_baseline",
    "save_baseline",
    "apply_baseline",
]

Fingerprint = Tuple[str, str, str]

_VERSION = 1


def _file_of(path: str) -> str:
    """The path with any trailing ``:line`` component stripped."""
    base, sep, tail = path.rpartition(":")
    if sep and tail.isdigit():
        return base
    return path


def fingerprint(finding: Finding) -> Fingerprint:
    """The line-insensitive identity of a finding."""
    return (finding.rule_id, _file_of(finding.path), finding.message)


def load_baseline(path: str) -> Set[Fingerprint]:
    """Read a baseline file; raises ``ValueError`` on malformed content."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if (
        not isinstance(document, dict)
        or document.get("version") != _VERSION
        or not isinstance(document.get("findings"), list)
    ):
        raise ValueError(
            f"malformed baseline file {path!r}: expected "
            f'{{"version": {_VERSION}, "findings": [...]}}'
        )
    baseline: Set[Fingerprint] = set()
    for entry in document["findings"]:
        baseline.add(
            (
                str(entry["rule"]),
                str(entry["path"]),
                str(entry["message"]),
            )
        )
    return baseline


def save_baseline(path: str, findings: Iterable[Finding]) -> int:
    """Write the baseline of ``findings``; returns the entry count."""
    entries = sorted(
        {fingerprint(finding) for finding in sort_findings(findings)}
    )
    document = {
        "version": _VERSION,
        "findings": [
            {"rule": rule, "path": file, "message": message}
            for rule, file, message in entries
        ],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(entries)


def apply_baseline(
    findings: Iterable[Finding], baseline: Set[Fingerprint]
) -> Tuple[List[Finding], int]:
    """Split findings into (new, grandfathered-count)."""
    kept: List[Finding] = []
    suppressed = 0
    for finding in findings:
        if fingerprint(finding) in baseline:
            suppressed += 1
        else:
            kept.append(finding)
    return kept, suppressed
