"""Audit targets: what ``repro check`` actually inspects per experiment.

Every experiment in :mod:`repro.experiments.registry` exercises a slice of
the library — some models, tasks, schedules, and (for the closure
experiments) a materialized ``CL_M(Π)``.  This module maps each experiment
identifier to named *target groups*; a group builds the live objects once
(memoized process-wide) and wraps them into
:class:`~repro.checks.rules.AuditTarget` records for the rule engine.

Groups are shared between experiments on purpose: ``repro check --all``
audits the union of the groups of every registered experiment, building
each group exactly once.  The construction stays deliberately small
(n ≤ 3, coarse grids) so the full audit runs in seconds while still
covering every model family, every task family, all three schedule
enumerations, and the closure machinery.
"""

from __future__ import annotations

from fractions import Fraction
from functools import lru_cache
from typing import Callable

from repro.checks.rules import AuditTarget
from repro.core.closure import ClosureComputer
from repro.experiments.registry import EXPERIMENTS
from repro.models import (
    CollectModel,
    ImmediateSnapshotModel,
    SnapshotModel,
    collect_schedules,
    immediate_snapshot_schedules,
    k_concurrency_model,
    snapshot_schedules,
)
from repro.models.base import ComputationModel
from repro.objects import (
    AugmentedModel,
    BinaryConsensusBox,
    TestAndSetBox,
    beta_input_function,
)
from repro.tasks import (
    approximate_agreement_task,
    binary_consensus_task,
    liberal_approximate_agreement_task,
    relaxed_consensus_task,
    set_agreement_task,
)
from repro.tasks.task import Task
from repro.topology.carrier import CarrierMap
from repro.topology.complex import SimplicialComplex
from repro.topology.simplex import Simplex

__all__ = [
    "TARGET_GROUPS",
    "build_group",
    "groups_for_experiment",
    "targets_for_experiment",
    "targets_for_all",
]


def _sample(n: int) -> Simplex:
    """The canonical input simplex on ``{1..n}`` with distinct values."""
    return Simplex((i, f"x{i}") for i in range(1, n + 1))


def _model_targets(
    path: str, model: ComputationModel, samples: tuple[Simplex, ...]
) -> list[AuditTarget]:
    """Model probes plus complex/carrier targets derived from the model."""
    targets = [
        AuditTarget("model", path, model, {"samples": samples}),
    ]
    for sigma in samples:
        targets.append(
            AuditTarget(
                "complex",
                f"{path}/P1({sigma!r})",
                model.one_round_complex(sigma),
            )
        )
        # The one-round protocol operator Ξ as a carrier map over the
        # faces of σ (union over participating faces) — monotone and
        # name-preserving by Section 2.2.
        targets.append(
            AuditTarget(
                "carrier",
                f"{path}/Ξ({sigma!r})",
                CarrierMap(
                    SimplicialComplex.from_simplex(sigma),
                    lambda face, m=model: m.protocol_complex_of_simplex(
                        face, 1
                    ),
                    name=f"Ξ[{model.name}]",
                ),
                {"expect_monotone": True},
            )
        )
    # Re-audit the memo after the probes above warmed the caches.
    targets.append(AuditTarget("model", f"{path}/memo", model, {}))
    return targets


def _task_targets(path: str, task: Task) -> list[AuditTarget]:
    """Task well-formedness plus its complexes and its Δ as a carrier."""
    return [
        AuditTarget("task", path, task),
        AuditTarget("complex", f"{path}/I", task.input_complex),
        AuditTarget("complex", f"{path}/O", task.output_complex),
        # Task maps are audited for name preservation only: the paper
        # deliberately does not require Δ to be monotone.
        AuditTarget("carrier", f"{path}/Δ", task.delta_map),
    ]


def _schedule_targets(path: str, n: int) -> list[AuditTarget]:
    ids = range(1, n + 1)
    targets: list[AuditTarget] = []
    for label, enumerate_, claimed in (
        ("collect", collect_schedules, "collect"),
        ("snapshot", snapshot_schedules, "snapshot"),
        ("iis", immediate_snapshot_schedules, "iis"),
    ):
        for index, schedule in enumerate(enumerate_(ids)):
            targets.append(
                AuditTarget(
                    "schedule",
                    f"{path}/{label}[{index}]",
                    schedule,
                    {"schedule_model": claimed},
                )
            )
    return targets


def _closure_targets(
    path: str, task: Task, model: ComputationModel
) -> list[AuditTarget]:
    computer = ClosureComputer(task, model)
    closure = computer.as_task()
    targets = [
        AuditTarget(
            "closure", path, closure, {"base_task": task}
        ),
        AuditTarget("task", f"{path}/as-task", closure),
        AuditTarget("complex", f"{path}/O'", closure.output_complex),
        AuditTarget("carrier", f"{path}/Δ'", closure.delta_map),
    ]
    return targets


# ----------------------------------------------------------------------
# Group builders (memoized: --all builds each group once)
# ----------------------------------------------------------------------
def _group_models_n2() -> list[AuditTarget]:
    samples = (_sample(2),)
    targets: list[AuditTarget] = []
    for model in (CollectModel(), SnapshotModel(), ImmediateSnapshotModel()):
        targets.extend(
            _model_targets(f"models[n=2]/{model.name}", model, samples)
        )
    return targets


def _group_models_n3() -> list[AuditTarget]:
    samples = (_sample(3),)
    targets: list[AuditTarget] = []
    for model in (CollectModel(), SnapshotModel(), ImmediateSnapshotModel()):
        targets.extend(
            _model_targets(f"models[n=3]/{model.name}", model, samples)
        )
    return targets


def _group_affine() -> list[AuditTarget]:
    model = k_concurrency_model(ImmediateSnapshotModel(), 2)
    return _model_targets("models[affine]/2-concurrency", model, (_sample(3),))


def _group_tas() -> list[AuditTarget]:
    targets = _model_targets(
        "objects/IIS+TS[n=2]", AugmentedModel(TestAndSetBox()), (_sample(2),)
    )
    targets.extend(
        _model_targets(
            "objects/IIS+TS[n=3]",
            AugmentedModel(TestAndSetBox()),
            (_sample(3),),
        )
    )
    return targets


def _group_bc() -> list[AuditTarget]:
    beta = beta_input_function({1: 1, 2: 0, 3: 1})
    model = AugmentedModel(BinaryConsensusBox(), beta)
    return _model_targets("objects/IIS+BC[n=3]", model, (_sample(3),))


def _group_schedules_n2() -> list[AuditTarget]:
    return _schedule_targets("schedules[n=2]", 2)


def _group_schedules_n3() -> list[AuditTarget]:
    return _schedule_targets("schedules[n=3]", 3)


def _group_consensus_tasks() -> list[AuditTarget]:
    targets = _task_targets(
        "tasks/consensus[n=2]", binary_consensus_task([1, 2])
    )
    targets.extend(
        _task_targets("tasks/consensus[n=3]", binary_consensus_task([1, 2, 3]))
    )
    targets.extend(
        _task_targets(
            "tasks/relaxed-consensus[n=3]", relaxed_consensus_task([1, 2, 3])
        )
    )
    return targets


def _group_aa_tasks() -> list[AuditTarget]:
    eps = Fraction(1, 4)
    targets = _task_targets(
        "tasks/aa[n=2]", approximate_agreement_task([1, 2], eps, 4)
    )
    targets.extend(
        _task_targets(
            "tasks/liberal-aa[n=3]",
            liberal_approximate_agreement_task(
                [1, 2, 3], Fraction(1, 2), 2
            ),
        )
    )
    return targets


def _group_kset_task() -> list[AuditTarget]:
    return _task_targets(
        "tasks/2-set-agreement[n=3]",
        set_agreement_task([1, 2, 3], [0, 1, 2], 2),
    )


def _group_closure_consensus() -> list[AuditTarget]:
    return _closure_targets(
        "closure/CL_IIS(consensus[n=2])",
        binary_consensus_task([1, 2]),
        ImmediateSnapshotModel(),
    )


def _group_faults_configs() -> list[AuditTarget]:
    """One sound config per chaos cell, plus a gated illegal probe."""
    from repro.faults.campaign import CELLS, CampaignConfig

    targets: list[AuditTarget] = []
    for key in sorted(CELLS):
        spec = CELLS[key]
        n = spec.min_n if spec.max_n is not None else max(spec.min_n, 3)
        targets.append(
            AuditTarget(
                "faults-config",
                f"faults/cells/{key}",
                CampaignConfig(
                    cell=key, model=spec.models[0], n=n, t=min(1, n - 1)
                ),
            )
        )
    targets.append(
        AuditTarget(
            "faults-config",
            "faults/illegal-probe",
            CampaignConfig(
                cell="aa",
                n=3,
                t=0,
                illegal="lost-write",
                allow_illegal=True,
            ),
        )
    )
    return targets


def _group_parallel_engine() -> list[AuditTarget]:
    """Parallel-vs-serial coherence probes (rule AUD012).

    One probe per fan-out-bearing model family, each carrying a sample
    simplex plus the rounds/worker counts the rule should exercise.  The
    n=3 IIS probe covers the exact configuration the benchmarks time;
    the snapshot probe keeps a second one-round structure honest.
    """
    return [
        AuditTarget(
            "parallel",
            "parallel/IIS[n=3]",
            ImmediateSnapshotModel(),
            {"sample": _sample(3), "rounds": 2, "workers": 2},
        ),
        AuditTarget(
            "parallel",
            "parallel/snapshot[n=2]",
            SnapshotModel(),
            {"sample": _sample(2), "rounds": 2, "workers": 2},
        ),
    ]


def _group_supervisor_resilience() -> list[AuditTarget]:
    """Supervisor byte-identity probes (rule AUD014).

    One small chaos campaign per probe — enough executions to spread
    over several shards at two workers so seeded kill faults actually
    break a pool mid-campaign, small enough that the serial baseline
    plus the supervised re-run stay in the audit's seconds budget.
    """
    from repro.faults.campaign import CampaignConfig

    return [
        AuditTarget(
            "supervisor",
            "supervisor/aa[n=3]",
            CampaignConfig(cell="aa", n=3, t=1, executions=8, seed=0),
            {"workers": 2, "fault_seed": 0},
        ),
    ]


def _group_serve_parity() -> list[AuditTarget]:
    """Service byte-identity probes (rule AUD015).

    One probe list covering every cacheable endpoint family at the
    smallest parameters that still exercise real computation — the rule
    boots one live server for the whole list, so the group costs one
    thread + a few tiny solves.  Probes must be cacheable methods: the
    rule asserts warm repeats carry store provenance.
    """
    probes = (
        ("lower_bound", {"n": 3, "eps": "1/8"}),
        (
            "solvability",
            {"task": "consensus", "n": 2, "rounds": 1, "model": "iis"},
        ),
        ("closure", {"n": 2, "eps": "1/2", "m": 2, "model": "iis"}),
        (
            "chaos_campaign",
            {"cell": "aa", "n": 3, "executions": 2, "seed": 0},
        ),
    )
    return [AuditTarget("serve", "serve/parity", probes)]


def _group_closure_aa() -> list[AuditTarget]:
    return _closure_targets(
        "closure/CL_IIS(1/2-AA[n=2])",
        approximate_agreement_task([1, 2], Fraction(1, 2), 2),
        ImmediateSnapshotModel(),
    )


#: Every named group of audit targets.
TARGET_GROUPS: dict[str, Callable[[], list[AuditTarget]]] = {
    "models-n2": _group_models_n2,
    "models-n3": _group_models_n3,
    "models-affine": _group_affine,
    "objects-tas": _group_tas,
    "objects-bc": _group_bc,
    "schedules-n2": _group_schedules_n2,
    "schedules-n3": _group_schedules_n3,
    "tasks-consensus": _group_consensus_tasks,
    "tasks-aa": _group_aa_tasks,
    "tasks-kset": _group_kset_task,
    "closure-consensus": _group_closure_consensus,
    "closure-aa": _group_closure_aa,
    "faults-configs": _group_faults_configs,
    "parallel-engine": _group_parallel_engine,
    "supervisor-resilience": _group_supervisor_resilience,
    "serve-parity": _group_serve_parity,
}

#: Which groups each experiment depends on.  Kept exhaustive on purpose —
#: ``repro check`` fails on unknown experiment ids, so a new registry
#: entry must be mapped here before it can ship (tested in tier-1).
_EXPERIMENT_GROUPS: dict[str, tuple[str, ...]] = {
    "E1": ("models-n3", "schedules-n3"),
    "E2": ("tasks-aa", "closure-aa", "models-n2"),
    "E3": ("tasks-consensus", "models-n2", "closure-consensus"),
    "E4": ("objects-tas", "tasks-consensus"),
    "E5": ("objects-tas",),
    "E6": ("objects-tas", "tasks-consensus"),
    "E7": ("tasks-aa", "closure-aa", "models-n2"),
    "E8": ("tasks-aa", "models-n3"),
    "E9": ("tasks-aa", "models-n2", "models-n3"),
    "E10": ("objects-tas", "tasks-aa"),
    "E11": ("objects-bc",),
    "E12": ("objects-bc", "tasks-aa"),
    "E13": ("models-n2", "models-n3", "tasks-consensus"),
    "E14": ("tasks-aa",),
    "E15": ("models-n2", "objects-tas", "objects-bc"),
    "E16": ("schedules-n2", "schedules-n3", "models-n3"),
    "E17": ("tasks-kset", "models-n3"),
    "E18": ("tasks-consensus", "models-n3"),
    "E19": ("models-n3", "schedules-n3", "parallel-engine"),
    "E20": ("models-affine", "tasks-consensus"),
    "E21": ("models-n2", "schedules-n2"),
    "E22": ("models-n3",),
    "E23": (
        "faults-configs",
        "schedules-n3",
        "parallel-engine",
        "supervisor-resilience",
        "serve-parity",
    ),
}


@lru_cache(maxsize=None)
def build_group(name: str) -> tuple[AuditTarget, ...]:
    """Build (once) the audit targets of a named group."""
    try:
        builder = TARGET_GROUPS[name]
    except KeyError:
        known = ", ".join(sorted(TARGET_GROUPS))
        raise KeyError(
            f"unknown target group {name!r}; known groups: {known}"
        ) from None
    return tuple(builder())


def groups_for_experiment(identifier: str) -> tuple[str, ...]:
    """The target groups audited for one experiment id (e.g. ``"E7"``)."""
    key = identifier.upper()
    if key not in EXPERIMENTS:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(
            f"unknown experiment {identifier!r}; known ids: {known}"
        )
    try:
        return _EXPERIMENT_GROUPS[key]
    except KeyError:
        raise KeyError(
            f"experiment {key} has no audit-target mapping; add it to "
            "repro.checks.targets._EXPERIMENT_GROUPS"
        ) from None


def targets_for_experiment(identifier: str) -> list[AuditTarget]:
    """All audit targets of one experiment, group-deduplicated."""
    targets: list[AuditTarget] = []
    for group in groups_for_experiment(identifier):
        targets.extend(build_group(group))
    return targets


def targets_for_all() -> list[AuditTarget]:
    """The union of the audit targets of every registered experiment.

    Groups shared between experiments are built and audited once.
    """
    names: list[str] = []
    for identifier in sorted(EXPERIMENTS, key=lambda e: int(e[1:])):
        for group in groups_for_experiment(identifier):
            if group not in names:
                names.append(group)
    targets: list[AuditTarget] = []
    for group in names:
        targets.extend(build_group(group))
    return targets
