"""Repo-specific AST lint rules (the ``RPR`` rule family).

A small stdlib-``ast`` visitor framework with rules encoding contracts
that generic linters cannot know:

========  ============================================================
rule id   contract
========  ============================================================
RPR001    never assign to the internal attributes of :class:`Vertex`,
          :class:`Simplex`, or :class:`SimplicialComplex` outside their
          own modules — the memoization layer interns and shares these
          objects, so one mutation corrupts every holder of the object
RPR002    construction sites that already hold an inclusion-maximal
          facet family (``x.facets``, ``x.sorted_facets()``,
          ``x.facets_containing(v)``) must use
          ``SimplicialComplex.from_maximal``, not the pruning
          constructor — the prune is pure overhead there
RPR003    ``repro.instrumentation.counter`` is a registry lookup;
          fetch counters once at module level, never per call on a hot
          path
RPR004    no bare ``except:`` anywhere, and no silent ``except …:
          pass`` in the solver hot paths (``repro.core``,
          ``repro.models``, ``repro.topology``, ``repro.parallel``) —
          swallowed errors there turn invariant violations into wrong
          theorems
RPR005    public functions in ``repro.core``, ``repro.models``,
          ``repro.topology``, and ``repro.parallel`` must carry
          complete type annotations (every parameter and the return
          type), keeping the mypy gate and ``py.typed`` honest
========  ============================================================

Suppression: append ``# norpr: RPR003`` (comma-separate several ids, or
``all``) to the offending line.  Suppressions are deliberate, reviewable
exemptions — e.g. the lazy per-instance counter init in
:mod:`repro.models.base`.  A suppression that suppresses *nothing* (a
stale or misspelled id, or no finding left on that line) is itself
reported as RPR000 so exemptions cannot rot silently; ids owned by the
flow engine (:mod:`repro.checks.flow` registers them in
:data:`EXTERNAL_RPR_IDS`) are judged by that engine, and the ``all``
wildcard is exempt from staleness because it may cover either engine.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Iterable,
    Iterator,
    Optional,
    Sequence,
)

from repro.checks.findings import Finding, Severity

__all__ = [
    "LintContext",
    "LintRule",
    "LINT_RULES",
    "lint_rule",
    "lint_source",
    "lint_paths",
]

_SUPPRESSION = re.compile(r"#\s*norpr:\s*([A-Za-z0-9_,\s]+)")

#: Rule ids owned by other engines sharing the ``# norpr:`` syntax (the
#: flow engine registers RPR006–RPR009 here on import).  The lint's
#: unused-suppression pass leaves these ids to their owner instead of
#: reporting them as unknown.
EXTERNAL_RPR_IDS: set[str] = set()

#: Internal attributes of the interned value objects, keyed by the module
#: allowed to assign them.
_PROTECTED_ATTRS: dict[str, str] = {
    "_facets": "repro.topology.complex",
    "_faces_cache": "repro.topology.complex",
    "_vertices_cache": "repro.topology.complex",
    "_vertices": "repro.topology.simplex",
    "_color": "repro.topology.vertex",
}

#: Attributes so specific to the value objects that even ``self.<attr>``
#: assignments are flagged outside the owning module.
_ALWAYS_PROTECTED: frozenset[str] = frozenset(
    {"_facets", "_faces_cache", "_vertices_cache"}
)

#: Packages whose exception handling and annotations are held to the
#: strictest standard (the proof-machine hot paths).
_HOT_PACKAGES: frozenset[tuple[str, str]] = frozenset(
    {
        ("repro", "core"),
        ("repro", "models"),
        ("repro", "topology"),
        ("repro", "parallel"),
    }
)

#: Methods of SimplicialComplex whose return value is already an
#: inclusion-maximal facet family.
_MAXIMAL_PRODUCERS: frozenset[str] = frozenset(
    {"sorted_facets", "facets_containing"}
)


@dataclass(frozen=True)
class LintContext:
    """Everything a lint rule needs about one module."""

    path: str
    module: str
    tree: ast.Module
    lines: tuple[str, ...]
    suppressions: dict[int, frozenset[str]] = field(default_factory=dict)

    @property
    def module_parts(self) -> tuple[str, ...]:
        return tuple(self.module.split(".")) if self.module else ()

    def in_hot_package(self) -> bool:
        return self.module_parts[:2] in _HOT_PACKAGES

    def suppressed(self, line: int, rule_id: str) -> bool:
        active = self.suppressions.get(line)
        if not active:
            return False
        return rule_id in active or "all" in active


Checker = Callable[[LintContext], Iterator[Finding]]


@dataclass(frozen=True)
class LintRule:
    """One registered AST lint rule."""

    rule_id: str
    title: str
    check: Checker


LINT_RULES: dict[str, LintRule] = {}


def lint_rule(rule_id: str, title: str) -> Callable[[Checker], Checker]:
    """Register a checker function as the lint rule ``rule_id``."""

    def register(function: Checker) -> Checker:
        if rule_id in LINT_RULES:
            raise ValueError(f"duplicate lint rule id {rule_id!r}")
        LINT_RULES[rule_id] = LintRule(rule_id, title, function)
        return function

    return register


def _parse_suppressions(lines: Sequence[str]) -> dict[int, frozenset[str]]:
    """Map line numbers to the rule ids suppressed on them.

    Works on real comment tokens, not raw text, so a ``# norpr:``
    example quoted inside a docstring is not treated as a suppression.
    Sources that fail to tokenize fall back to a line-regex scan (the
    lint still reports their syntax error separately).
    """
    found: dict[int, frozenset[str]] = {}

    def record(line_number: int, comment: str) -> None:
        match = _SUPPRESSION.search(comment)
        if match:
            found[line_number] = frozenset(
                part.strip()
                for part in match.group(1).split(",")
                if part.strip()
            )

    import io
    import tokenize

    source = "\n".join(lines)
    try:
        for token in tokenize.generate_tokens(
            io.StringIO(source).readline
        ):
            if token.type == tokenize.COMMENT:
                record(token.start[0], token.string)
    except (tokenize.TokenError, IndentationError, SyntaxError):
        found.clear()
        for number, line in enumerate(lines, start=1):
            record(number, line)
    return found


def _module_name_of(path: Path) -> str:
    """Derive the dotted module name from a file path (best effort)."""
    parts = list(path.with_suffix("").parts)
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def lint_source(
    source: str, path: str = "<string>", module: Optional[str] = None
) -> list[Finding]:
    """Lint one module given as source text; returns its findings."""
    resolved_module = (
        module if module is not None else _module_name_of(Path(path))
    )
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                "RPR000",
                Severity.ERROR,
                f"{path}:{exc.lineno or 0}",
                f"syntax error: {exc.msg}",
            )
        ]
    lines = tuple(source.splitlines())
    context = LintContext(
        path=path,
        module=resolved_module,
        tree=tree,
        lines=lines,
        suppressions=_parse_suppressions(lines),
    )
    findings: list[Finding] = []
    used: set[tuple[int, str]] = set()
    for rule in LINT_RULES.values():
        for finding in rule.check(context):
            line = int(finding.path.rsplit(":", 1)[-1])
            if context.suppressed(line, finding.rule_id):
                active = context.suppressions.get(line) or frozenset()
                used.add(
                    (
                        line,
                        finding.rule_id
                        if finding.rule_id in active
                        else "all",
                    )
                )
            else:
                findings.append(finding)
    findings.extend(_unused_suppressions(context, used))
    return findings


def _unused_suppressions(
    context: LintContext, used: set[tuple[int, str]]
) -> Iterator[Finding]:
    """RPR000 findings for suppressions that suppressed nothing.

    The lint owns its own rule ids plus any id no engine claims; ids in
    :data:`EXTERNAL_RPR_IDS` belong to the flow engine, which runs its
    own staleness pass, and the ``all`` wildcard is exempt because it
    may legitimately cover the other engine's findings.
    """
    for line, ids in sorted(context.suppressions.items()):
        for rule_id in sorted(ids):
            if rule_id == "all" or rule_id in EXTERNAL_RPR_IDS:
                continue
            if (line, rule_id) in used:
                continue
            reason = (
                "suppresses no finding on this line"
                if rule_id in LINT_RULES
                else "names a rule id no engine defines"
            )
            yield Finding(
                "RPR000",
                Severity.WARNING,
                f"{context.path}:{line}",
                f"unused suppression: `# norpr: {rule_id}` {reason} "
                "— remove it before it rots",
            )


def iter_python_files(paths: Iterable[str]) -> Iterator[Path]:
    """Yield every ``.py`` file under the given files/directories, sorted."""
    for entry in paths:
        root = Path(entry)
        if root.is_dir():
            yield from sorted(root.rglob("*.py"))
        elif root.suffix == ".py":
            yield root


def lint_paths(paths: Iterable[str]) -> list[Finding]:
    """Lint every Python file under the given paths."""
    findings: list[Finding] = []
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        findings.extend(lint_source(source, path=str(file_path)))
    return findings


def _location(context: LintContext, node: ast.AST) -> str:
    return f"{context.path}:{getattr(node, 'lineno', 0)}"


# ----------------------------------------------------------------------
# RPR001 — interning safety
# ----------------------------------------------------------------------
@lint_rule("RPR001", "no mutation of interned value-object internals")
def check_no_interned_mutation(context: LintContext) -> Iterator[Finding]:
    def flagged_targets(node: ast.AST) -> Iterator[ast.Attribute]:
        if isinstance(node, ast.Assign):
            candidates: Iterable[ast.expr] = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            candidates = [node.target]
        elif isinstance(node, ast.Delete):
            candidates = node.targets
        else:
            return
        for target in candidates:
            if isinstance(target, ast.Attribute):
                yield target

    for node in ast.walk(context.tree):
        for target in flagged_targets(node):
            attr = target.attr
            owner = _PROTECTED_ATTRS.get(attr)
            if owner is None or context.module == owner:
                continue
            is_self = (
                isinstance(target.value, ast.Name)
                and target.value.id == "self"
            )
            if is_self and attr not in _ALWAYS_PROTECTED:
                # A foreign class may legitimately own an attribute with
                # a generic name like `_color`; only non-self writes are
                # unambiguous mutations of someone else's object.
                continue
            yield Finding(
                "RPR001",
                Severity.ERROR,
                _location(context, node),
                f"assignment to {attr!r} outside {owner}: interned "
                "topology objects are shared by the memoization layer "
                "and must never be mutated",
            )


# ----------------------------------------------------------------------
# RPR002 — from_maximal discipline
# ----------------------------------------------------------------------
@lint_rule("RPR002", "maximal facet families must use from_maximal")
def check_from_maximal(context: LintContext) -> Iterator[Finding]:
    for node in ast.walk(context.tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "SimplicialComplex"
            and len(node.args) == 1
            and not node.keywords
        ):
            continue
        argument = node.args[0]
        maximal = (
            isinstance(argument, ast.Attribute)
            and argument.attr == "facets"
        ) or (
            isinstance(argument, ast.Call)
            and isinstance(argument.func, ast.Attribute)
            and argument.func.attr in _MAXIMAL_PRODUCERS
        )
        if maximal:
            yield Finding(
                "RPR002",
                Severity.ERROR,
                _location(context, node),
                "this argument is already an inclusion-maximal facet "
                "family; use SimplicialComplex.from_maximal(...) and "
                "skip the pruning pass",
            )


# ----------------------------------------------------------------------
# RPR003 — counters are module-level
# ----------------------------------------------------------------------
@lint_rule("RPR003", "counter() declarations belong at module level")
def check_counter_placement(context: LintContext) -> Iterator[Finding]:
    imported = any(
        isinstance(node, ast.ImportFrom)
        and node.module == "repro.instrumentation"
        and any(alias.name == "counter" for alias in node.names)
        for node in ast.walk(context.tree)
    )
    if not imported:
        return
    for function in ast.walk(context.tree):
        if not isinstance(
            function, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            continue
        for node in ast.walk(function):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "counter"
            ):
                yield Finding(
                    "RPR003",
                    Severity.ERROR,
                    _location(context, node),
                    "counter() called inside a function: fetch the "
                    "counter once at module level and keep a reference "
                    "on the hot path",
                )


# ----------------------------------------------------------------------
# RPR004 — no swallowed errors on hot paths
# ----------------------------------------------------------------------
@lint_rule("RPR004", "no bare except / silent pass in solver hot paths")
def check_exception_hygiene(context: LintContext) -> Iterator[Finding]:
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            yield Finding(
                "RPR004",
                Severity.ERROR,
                _location(context, node),
                "bare `except:` catches SystemExit/KeyboardInterrupt "
                "and hides invariant violations; name the exceptions",
            )
            continue
        silent = len(node.body) == 1 and isinstance(node.body[0], ast.Pass)
        if silent and context.in_hot_package():
            yield Finding(
                "RPR004",
                Severity.ERROR,
                _location(context, node),
                "silent `except …: pass` in a solver hot path: a "
                "swallowed error here turns an invariant violation "
                "into a wrong theorem — handle or re-raise",
            )


# ----------------------------------------------------------------------
# RPR005 — annotated public API in the proof core
# ----------------------------------------------------------------------
def _missing_annotations(
    function: ast.FunctionDef,
) -> list[str]:
    missing: list[str] = []
    arguments = function.args
    positional = list(arguments.posonlyargs) + list(arguments.args)
    if positional and positional[0].arg in ("self", "cls"):
        positional = positional[1:]
    for argument in positional + list(arguments.kwonlyargs):
        if argument.annotation is None:
            missing.append(argument.arg)
    for star in (arguments.vararg, arguments.kwarg):
        if star is not None and star.annotation is None:
            missing.append(star.arg)
    if function.returns is None:
        missing.append("return")
    return missing


@lint_rule("RPR005", "public proof-core functions are fully annotated")
def check_public_annotations(context: LintContext) -> Iterator[Finding]:
    if not context.in_hot_package():
        return

    class Scope(ast.NodeVisitor):
        def __init__(self) -> None:
            self.found: list[tuple[ast.FunctionDef, list[str]]] = []

        def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
            name = node.name
            public = not name.startswith("_")
            if public:
                missing = _missing_annotations(node)
                if missing:
                    self.found.append((node, missing))
            # Do not descend: closures inside a function are local
            # implementation details, not public API.

        def visit_AsyncFunctionDef(
            self, node: ast.AsyncFunctionDef
        ) -> None:
            self.visit_FunctionDef(node)  # type: ignore[arg-type]

        def visit_ClassDef(self, node: ast.ClassDef) -> None:
            self.generic_visit(node)

    scope = Scope()
    scope.visit(context.tree)
    for node, missing in scope.found:
        yield Finding(
            "RPR005",
            Severity.ERROR,
            _location(context, node),
            f"public function {node.name!r} is missing annotations for: "
            f"{', '.join(missing)} (the mypy gate and py.typed require "
            "a fully typed proof core)",
        )
