"""The value-provenance lattice of the flow analysis.

Abstract values answer the two questions the rule packs ask about an
expression: *which table does this mask/table come from* (RPR006) and
*is this collection iteration-order-deterministic* (RPR007).  The
lattice is deliberately shallow::

              TOP  (anything; no claim)
             / | \\
        TABLE MASK UNORDERED ...   (kinded, with an optional origin)

An **origin** is a string token naming where a table came from:

* ``VertexTable@<line>:<col>`` — a construction site (``VertexTable(…)``
  or ``interned_of(…)`` call).  Two *different* construction sites are
  **definitely** different tables, so mixing their masks is reported at
  ``ERROR``.
* ``interned@<line>:<col>`` — a ``VertexTable.interned(…)`` site.  Two
  interned sites *may* return the same table object (equal pairs), so
  these origins are non-definite.
* ``name:<dotted.expr>`` — a symbolic origin read off a plain
  ``Name``/``Attribute`` chain (``self._table``).  Two different dotted
  expressions *may* alias the same table, so symbolic mismatches are
  reported at ``WARNING``, never ``ERROR``.
* ``index:<dotted.expr>`` — the index table of a complex, produced by
  ``<expr>._ensure_index()`` (also symbolic).

A ``None`` origin means "unknown"; no rule ever fires on an unknown
origin — the analysis only reports mixes it can *prove* (definite) or
*strongly suspect* (two known-but-different symbolic origins).

Joins are pointwise: equal values join to themselves, a value joins
with TOP (or with a conflicting value) to TOP — once two paths disagree
about a name, the analysis stops claiming anything about it, which is
exactly the behaviour that keeps false positives out.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Optional

__all__ = [
    "AbstractValue",
    "TOP",
    "Env",
    "join",
    "join_env",
    "dotted_name",
    "table_token",
    "Evaluator",
]

# Value kinds.
KIND_TOP = "top"
KIND_TABLE = "table"          # a VertexTable; origin = its identity token
KIND_MASK = "mask"            # a bitmask (or homogeneous mask collection)
KIND_UNORDERED = "unordered"  # a set/frozenset: iteration order undefined
KIND_INDEX = "index-pair"     # the (table, masks) pair of _ensure_index()


@dataclass(frozen=True)
class AbstractValue:
    """One point of the provenance lattice.

    ``origin`` is the table token for TABLE/MASK/INDEX values (``None``
    when unknown); ``definite`` is ``True`` only for origins minted at a
    plain construction site, where distinct tokens imply distinct
    tables.
    """

    kind: str
    origin: Optional[str] = None
    definite: bool = False

    def is_top(self) -> bool:
        return self.kind == KIND_TOP


TOP = AbstractValue(KIND_TOP)

#: One program state: variable name -> abstract value.  Names absent
#: from the mapping are bottom (never assigned on this path); joining
#: bottom with a value keeps the value, which is the bug-finding choice
#: (a maybe-unassigned name still carries its one known provenance).
Env = Dict[str, AbstractValue]

#: Mask-producing VertexTable methods (origin = the receiver table).
MASK_METHODS = frozenset(
    {"encode_mask", "encode_mask_interning", "colors_mask"}
)

#: Mask-producing VertexTable attributes.
MASK_ATTRIBUTES = frozenset({"full_mask"})

#: Table-constructing callables (definite origins).
TABLE_CONSTRUCTORS = frozenset({"VertexTable"})

#: Table-returning classmethods of VertexTable (non-definite: interned
#: calls with equal pairs return the *same* object).
TABLE_CLASSMETHODS = frozenset({"interned", "interned_of"})

#: Set-algebra methods that keep a set unordered.
_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)

_BITWISE = (ast.BitAnd, ast.BitOr, ast.BitXor)


def join(left: AbstractValue, right: AbstractValue) -> AbstractValue:
    """Least upper bound of two values (TOP on any disagreement)."""
    if left == right:
        return left
    if left.kind == right.kind and left.kind in (
        KIND_MASK,
        KIND_TABLE,
        KIND_INDEX,
    ):
        # Same kind, different origin: keep the kind, drop the claim.
        return AbstractValue(left.kind)
    if left.kind == right.kind:
        return AbstractValue(left.kind)
    return TOP


def join_env(left: Env, right: Env) -> Env:
    """Pointwise join; names bound on only one side keep their value."""
    merged = dict(left)
    for name, value in right.items():
        existing = merged.get(name)
        merged[name] = value if existing is None else join(existing, value)
    return merged


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a pure Name/Attribute chain, else ``None``."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def table_token(node: ast.AST, env: Env) -> AbstractValue:
    """The abstract table value of an expression in table position.

    A tracked name wins; otherwise a pure dotted chain becomes a
    symbolic ``name:`` origin; anything else is an unknown table.
    """
    if isinstance(node, ast.Name):
        value = env.get(node.id)
        if value is not None and value.kind == KIND_TABLE:
            return value
    dotted = dotted_name(node)
    if dotted is not None:
        return AbstractValue(KIND_TABLE, f"name:{dotted}")
    return AbstractValue(KIND_TABLE)


class Evaluator:
    """Side-effect-free abstract evaluation of expressions.

    One instance per analyzed module; carries nothing but the statistics
    hook, so it is safe to share across functions.
    """

    def evaluate(self, node: ast.AST, env: Env) -> AbstractValue:
        if isinstance(node, ast.Name):
            return env.get(node.id, TOP)
        if isinstance(node, ast.Attribute):
            return self._evaluate_attribute(node, env)
        if isinstance(node, ast.Call):
            return self._evaluate_call(node, env)
        if isinstance(node, (ast.Set,)):
            return AbstractValue(KIND_UNORDERED)
        if isinstance(node, ast.SetComp):
            return AbstractValue(KIND_UNORDERED)
        if isinstance(node, ast.BinOp):
            return self._evaluate_binop(node, env)
        if isinstance(node, ast.BoolOp):
            value = self.evaluate(node.values[0], env)
            for operand in node.values[1:]:
                value = join(value, self.evaluate(operand, env))
            return value
        if isinstance(node, ast.IfExp):
            return join(
                self.evaluate(node.body, env),
                self.evaluate(node.orelse, env),
            )
        if isinstance(node, ast.NamedExpr):
            return self.evaluate(node.value, env)
        if isinstance(node, ast.Starred):
            return self.evaluate(node.value, env)
        if isinstance(node, ast.Await):
            return self.evaluate(node.value, env)
        return TOP

    # ------------------------------------------------------------------
    def _evaluate_attribute(
        self, node: ast.Attribute, env: Env
    ) -> AbstractValue:
        if node.attr in MASK_ATTRIBUTES:
            table = table_token(node.value, env)
            return AbstractValue(KIND_MASK, table.origin, table.definite)
        value = env.get(dotted_name(node) or "", None)
        if value is not None:
            return value
        return TOP

    def _evaluate_call(self, node: ast.Call, env: Env) -> AbstractValue:
        function = node.func
        # VertexTable(...) — definite construction site.
        if (
            isinstance(function, ast.Name)
            and function.id in TABLE_CONSTRUCTORS
        ):
            return AbstractValue(
                KIND_TABLE,
                f"VertexTable@{node.lineno}:{node.col_offset}",
                definite=True,
            )
        if isinstance(function, ast.Name):
            if function.id in ("set", "frozenset"):
                return AbstractValue(KIND_UNORDERED)
            if function.id in ("sorted", "list", "tuple"):
                # sorted() launders unordered into deterministic; plain
                # list()/tuple() of an unordered value is RPR007's
                # business, but the *result* is an ordinary sequence.
                return TOP
            return TOP
        if not isinstance(function, ast.Attribute):
            return TOP
        attr = function.attr
        # VertexTable.interned(...) / interned_of(...) — table, but two
        # sites may alias (equal pairs intern to one object).
        if (
            attr in TABLE_CLASSMETHODS
            and dotted_name(function.value) == "VertexTable"
        ):
            return AbstractValue(
                KIND_TABLE, f"interned@{node.lineno}:{node.col_offset}"
            )
        if attr in MASK_METHODS:
            table = table_token(function.value, env)
            return AbstractValue(KIND_MASK, table.origin, table.definite)
        if attr == "_ensure_index":
            dotted = dotted_name(function.value)
            if dotted is not None:
                return AbstractValue(KIND_INDEX, f"index:{dotted}")
            return AbstractValue(KIND_INDEX)
        if attr in _SET_METHODS:
            receiver = self.evaluate(function.value, env)
            if receiver.kind == KIND_UNORDERED:
                return AbstractValue(KIND_UNORDERED)
        return TOP

    def _evaluate_binop(self, node: ast.BinOp, env: Env) -> AbstractValue:
        left = self.evaluate(node.left, env)
        right = self.evaluate(node.right, env)
        if isinstance(node.op, _BITWISE + (ast.Sub,)):
            if (
                left.kind == KIND_UNORDERED
                or right.kind == KIND_UNORDERED
            ):
                return AbstractValue(KIND_UNORDERED)
        if isinstance(node.op, _BITWISE):
            # Mask combination: the result is a mask carrying the
            # origin of whichever side has one (a cross-origin mix is
            # RPR006's business; the result keeps the left claim).
            if left.kind == KIND_MASK:
                return left
            if right.kind == KIND_MASK:
                return right
        if isinstance(node.op, (ast.LShift, ast.RShift)):
            if left.kind == KIND_MASK:
                return left
        return TOP

    # ------------------------------------------------------------------
    def element_of(self, value: AbstractValue) -> AbstractValue:
        """The abstract value of one element of an iterated value.

        Iterating a homogeneous mask collection yields masks of the
        same origin; everything else yields TOP (the *orderedness* of
        the iteration is judged by RPR007 from the iterable itself).
        """
        if value.kind == KIND_MASK:
            return value
        return TOP
