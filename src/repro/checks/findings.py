"""Structured results of the static-analysis subsystem.

Both heads of :mod:`repro.checks` — the domain invariant auditor
(:mod:`repro.checks.rules`) and the AST lint (:mod:`repro.checks.astlint`)
— report violations as :class:`Finding` records: a rule identifier, a
severity, the path of the offending object (an audit-target path such as
``E7/task[ε-AA 1/4]/Δ`` or a source location such as
``src/repro/foo.py:12``), and a human-readable explanation.

Findings are plain immutable data so reporters can render them as text or
JSON and exit-code policies can filter them by severity without knowing
which head produced them.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Iterable

__all__ = [
    "Severity",
    "Finding",
    "max_severity",
    "parse_severity",
    "sort_findings",
]


class Severity(IntEnum):
    """Ordered severity levels; higher values are worse."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()


def parse_severity(label: str) -> Severity:
    """Parse a CLI severity label (case-insensitive) into a :class:`Severity`.

    Raises
    ------
    ValueError
        If the label is not one of ``info``, ``warning``, ``error``.
    """
    try:
        return Severity[label.upper()]
    except KeyError:
        known = ", ".join(s.name.lower() for s in Severity)
        raise ValueError(
            f"unknown severity {label!r}: use one of {known}"
        ) from None


@dataclass(frozen=True)
class Finding:
    """One violation reported by an audit or lint rule.

    Attributes
    ----------
    rule_id:
        The stable identifier of the rule that fired (``AUD00x`` for domain
        audit rules, ``RPR00x`` for AST lint rules).
    severity:
        How bad the violation is; drives the ``--fail-on`` exit policy.
    path:
        Where the violation lives: an audit-target path for live objects,
        or ``file:line`` for source findings.
    message:
        Human-readable explanation of what is wrong and why it matters.
    """

    rule_id: str
    severity: Severity
    path: str
    message: str

    def as_dict(self) -> dict[str, str]:
        """JSON-friendly representation (severity as its lowercase name)."""
        return {
            "rule": self.rule_id,
            "severity": str(self.severity),
            "path": self.path,
            "message": self.message,
        }


def max_severity(findings: Iterable[Finding]) -> Severity:
    """The worst severity among ``findings`` (``INFO`` when empty)."""
    worst = Severity.INFO
    for finding in findings:
        if finding.severity > worst:
            worst = finding.severity
    return worst


def _path_key(path: str) -> tuple[str, int]:
    """Split a ``file:line`` path into a (file, numeric line) sort key.

    Lexicographic sorting of the raw path puts ``foo.py:10`` before
    ``foo.py:9``; the numeric split keeps findings in source order.
    Paths without a line component (audit-target paths) sort by their
    text with line 0.
    """
    base, sep, tail = path.rpartition(":")
    if sep and tail.isdigit():
        return base, int(tail)
    return path, 0


def sort_findings(findings: Iterable[Finding]) -> list[Finding]:
    """Order findings by path, line, then rule id — deterministically.

    This is the one ordering every reporter and the baseline file use,
    so text output, JSON output, and CI diffs are stable across runs
    and across engines (severity breaks ties only after location and
    rule, worst first).
    """
    return sorted(
        findings,
        key=lambda f: (
            *_path_key(f.path),
            f.rule_id,
            -int(f.severity),
            f.message,
        ),
    )
