"""Control-flow graphs over ``ast`` for the flow analysis.

:func:`build_cfg` lowers one function body (or a module body treated as
a function) into basic blocks of *elements* — the statement and
header-expression :class:`ast.AST` nodes in execution order — connected
by successor edges.  The abstract interpreter in
:mod:`repro.checks.flow` then runs a forward worklist over the graph.

The lowering is deliberately modest; it is a bug-finding CFG, not a
compiler CFG:

* ``if``/``while``/``for`` produce the textbook diamond/loop shapes
  (the header expression node sits in its own header block, so the
  environment *before* a loop test is the join over entry and back
  edge);
* ``break``/``continue``/``return``/``raise`` terminate their block and
  edge to the loop exit / loop header / function exit;
* ``try`` is conservative: every handler is reachable from the block in
  which the ``try`` starts *and* from the end of the body, which
  over-approximates "an exception may fly at any point" well enough for
  a may-analysis; ``finally`` bodies run on the fall-through path;
* ``with`` bodies are straight-line (the context expression and the
  ``as`` binding become elements of the current block);
* nested function/class definitions are single elements — their bodies
  get their own CFGs, analyzed separately.

Match statements (3.10+) are lowered as a join over all case bodies so
the engine stays 3.9-compatible while not mis-analyzing newer sources.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Sequence, Union

__all__ = ["BasicBlock", "CFG", "build_cfg"]

#: A function-like region the CFG can be built for.
Region = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Module]


class BasicBlock:
    """One straight-line run of elements plus its successor edges."""

    __slots__ = ("index", "elements", "successors")

    def __init__(self, index: int) -> None:
        self.index = index
        self.elements: List[ast.AST] = []
        self.successors: List["BasicBlock"] = []

    def add_successor(self, block: "BasicBlock") -> None:
        if block not in self.successors:
            self.successors.append(block)

    def __repr__(self) -> str:
        kinds = ",".join(type(e).__name__ for e in self.elements)
        edges = ",".join(str(s.index) for s in self.successors)
        return f"BasicBlock({self.index}, [{kinds}] -> [{edges}])"


class CFG:
    """The control-flow graph of one function-like region."""

    __slots__ = ("region", "blocks", "entry", "exit")

    def __init__(self, region: Region) -> None:
        self.region = region
        self.blocks: List[BasicBlock] = []
        self.entry = self.new_block()
        self.exit = self.new_block()

    def new_block(self) -> BasicBlock:
        block = BasicBlock(len(self.blocks))
        self.blocks.append(block)
        return block

    def predecessors(self) -> dict[int, List[BasicBlock]]:
        """Map each block index to the list of its predecessor blocks."""
        preds: dict[int, List[BasicBlock]] = {
            block.index: [] for block in self.blocks
        }
        for block in self.blocks:
            for successor in block.successors:
                preds[successor.index].append(block)
        return preds

    def rpo(self) -> List[BasicBlock]:
        """Blocks in reverse post-order from the entry.

        Unreachable blocks (e.g. code after ``return``) are appended at
        the end so their elements still get environments recorded.
        """
        seen: set[int] = set()
        order: List[BasicBlock] = []

        def visit(block: BasicBlock) -> None:
            stack = [(block, iter(block.successors))]
            seen.add(block.index)
            while stack:
                current, successors = stack[-1]
                advanced = False
                for successor in successors:
                    if successor.index not in seen:
                        seen.add(successor.index)
                        stack.append(
                            (successor, iter(successor.successors))
                        )
                        advanced = True
                        break
                if not advanced:
                    order.append(current)
                    stack.pop()

        visit(self.entry)
        order.reverse()
        for block in self.blocks:
            if block.index not in seen:
                order.append(block)
        return order


class _Builder:
    """Recursive-descent lowering of a statement list into blocks."""

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        # Stack of (loop_header, loop_exit) for break/continue targets.
        self.loops: List[tuple[BasicBlock, BasicBlock]] = []

    # ------------------------------------------------------------------
    def lower(self, statements: Sequence[ast.stmt]) -> None:
        block = self.lower_body(statements, self.cfg.entry)
        if block is not None:
            block.add_successor(self.cfg.exit)

    def lower_body(
        self, statements: Sequence[ast.stmt], block: Optional[BasicBlock]
    ) -> Optional[BasicBlock]:
        """Lower a statement list; returns the fall-through block.

        ``None`` means the path never falls through (it returned, raised,
        broke, or continued).  Statements after such a terminator are
        still lowered (into an unreachable block) so every element gets
        an environment.
        """
        for statement in statements:
            if block is None:
                block = self.cfg.new_block()
            block = self.lower_statement(statement, block)
        return block

    # ------------------------------------------------------------------
    def lower_statement(
        self, statement: ast.stmt, block: BasicBlock
    ) -> Optional[BasicBlock]:
        if isinstance(statement, ast.If):
            return self.lower_if(statement, block)
        if isinstance(statement, (ast.While,)):
            return self.lower_while(statement, block)
        if isinstance(statement, (ast.For, ast.AsyncFor)):
            return self.lower_for(statement, block)
        if isinstance(statement, ast.Try):
            return self.lower_try(statement, block)
        if isinstance(statement, (ast.With, ast.AsyncWith)):
            return self.lower_with(statement, block)
        if isinstance(statement, (ast.Return, ast.Raise)):
            block.elements.append(statement)
            block.add_successor(self.cfg.exit)
            return None
        if isinstance(statement, ast.Break):
            block.elements.append(statement)
            if self.loops:
                block.add_successor(self.loops[-1][1])
            else:
                block.add_successor(self.cfg.exit)
            return None
        if isinstance(statement, ast.Continue):
            block.elements.append(statement)
            if self.loops:
                block.add_successor(self.loops[-1][0])
            else:
                block.add_successor(self.cfg.exit)
            return None
        if _is_match(statement):
            return self.lower_match(statement, block)
        # Everything else — Assign, AnnAssign, AugAssign, Expr, Assert,
        # Delete, Global, Nonlocal, Import, Pass, nested defs — is one
        # straight-line element.
        block.elements.append(statement)
        return block

    # ------------------------------------------------------------------
    def lower_if(
        self, statement: ast.If, block: BasicBlock
    ) -> Optional[BasicBlock]:
        block.elements.append(statement.test)
        then_entry = self.cfg.new_block()
        block.add_successor(then_entry)
        then_exit = self.lower_body(statement.body, then_entry)
        if statement.orelse:
            else_entry = self.cfg.new_block()
            block.add_successor(else_entry)
            else_exit = self.lower_body(statement.orelse, else_entry)
        else:
            else_exit = block
        if then_exit is None and else_exit is None:
            return None
        join = self.cfg.new_block()
        if then_exit is not None:
            then_exit.add_successor(join)
        if else_exit is not None:
            else_exit.add_successor(join)
        return join

    def lower_while(
        self, statement: ast.While, block: BasicBlock
    ) -> Optional[BasicBlock]:
        header = self.cfg.new_block()
        block.add_successor(header)
        header.elements.append(statement.test)
        exit_block = self.cfg.new_block()
        header.add_successor(exit_block)
        body_entry = self.cfg.new_block()
        header.add_successor(body_entry)
        self.loops.append((header, exit_block))
        body_exit = self.lower_body(statement.body, body_entry)
        self.loops.pop()
        if body_exit is not None:
            body_exit.add_successor(header)
        if statement.orelse:
            return self.lower_body(statement.orelse, exit_block)
        return exit_block

    def lower_for(
        self, statement: Union[ast.For, ast.AsyncFor], block: BasicBlock
    ) -> Optional[BasicBlock]:
        header = self.cfg.new_block()
        block.add_successor(header)
        # The For node itself is the header element: the transfer
        # function evaluates ``iter`` and binds ``target`` to one
        # element of it.
        header.elements.append(statement)
        exit_block = self.cfg.new_block()
        header.add_successor(exit_block)
        body_entry = self.cfg.new_block()
        header.add_successor(body_entry)
        self.loops.append((header, exit_block))
        body_exit = self.lower_body(statement.body, body_entry)
        self.loops.pop()
        if body_exit is not None:
            body_exit.add_successor(header)
        if statement.orelse:
            return self.lower_body(statement.orelse, exit_block)
        return exit_block

    def lower_try(
        self, statement: ast.Try, block: BasicBlock
    ) -> Optional[BasicBlock]:
        body_entry = self.cfg.new_block()
        block.add_successor(body_entry)
        body_exit = self.lower_body(statement.body, body_entry)
        if body_exit is not None and statement.orelse:
            body_exit = self.lower_body(statement.orelse, body_exit)

        exits: List[BasicBlock] = []
        if body_exit is not None:
            exits.append(body_exit)
        for handler in statement.handlers:
            handler_entry = self.cfg.new_block()
            # Conservative: the handler is reachable from the try's
            # start and from the end of its body (an exception may fly
            # before or after any body statement).
            body_entry.add_successor(handler_entry)
            if body_exit is not None:
                body_exit.add_successor(handler_entry)
            if handler.type is not None:
                handler_entry.elements.append(handler.type)
            handler_exit = self.lower_body(handler.body, handler_entry)
            if handler_exit is not None:
                exits.append(handler_exit)

        if statement.finalbody:
            final_entry = self.cfg.new_block()
            for exit_block in exits:
                exit_block.add_successor(final_entry)
            if not exits:
                # All paths diverge; the finally body still runs on the
                # exceptional path — keep it reachable for env purposes.
                body_entry.add_successor(final_entry)
            return self.lower_body(statement.finalbody, final_entry)
        if not exits:
            return None
        if len(exits) == 1:
            return exits[0]
        join = self.cfg.new_block()
        for exit_block in exits:
            exit_block.add_successor(join)
        return join

    def lower_with(
        self, statement: Union[ast.With, ast.AsyncWith], block: BasicBlock
    ) -> Optional[BasicBlock]:
        # Context expressions (and their `as` bindings) are elements;
        # the withitem node carries both for the transfer function.
        for item in statement.items:
            block.elements.append(item)
        return self.lower_body(statement.body, block)

    def lower_match(
        self, statement: ast.stmt, block: BasicBlock
    ) -> Optional[BasicBlock]:
        block.elements.append(statement.subject)  # type: ignore[attr-defined]
        exits: List[BasicBlock] = [block]  # no case may match
        for case in statement.cases:  # type: ignore[attr-defined]
            case_entry = self.cfg.new_block()
            block.add_successor(case_entry)
            case_exit = self.lower_body(case.body, case_entry)
            if case_exit is not None:
                exits.append(case_exit)
        join = self.cfg.new_block()
        for exit_block in exits:
            exit_block.add_successor(join)
        return join


def _is_match(statement: ast.stmt) -> bool:
    match_type = getattr(ast, "Match", None)
    return match_type is not None and isinstance(statement, match_type)


def build_cfg(region: Region) -> CFG:
    """Build the CFG of a function definition or a module body."""
    cfg = CFG(region)
    _Builder(cfg).lower(region.body)
    return cfg


def iter_elements(cfg: CFG) -> Iterator[ast.AST]:
    """Every element of every block, in reverse post-order."""
    for block in cfg.rpo():
        yield from block.elements
