"""Flow-sensitive analysis engine (the ``RPR006``–``RPR009`` rules).

The per-node lint (:mod:`repro.checks.astlint`) sees one AST node at a
time; the bug class introduced by the bitmask-native core — a mask from
one :class:`~repro.topology.table.VertexTable` meeting a mask or table
from another — is a *dataflow* property.  This module runs a forward
abstract interpretation over the CFGs of :mod:`repro.checks.cfg` with
the provenance lattice of :mod:`repro.checks.provenance`:

1. every function body (and the module body) is lowered to a CFG;
2. a worklist fixpoint propagates abstract environments (variable →
   :class:`~repro.checks.provenance.AbstractValue`) across blocks,
   joining at merge points;
3. each registered **flow rule** (:func:`flow_rule`) walks the analyzed
   regions with the environment valid *before* every element and
   reports :class:`~repro.checks.findings.Finding` records.

Findings share the ``RPR`` id space, the suppression syntax
(``# norpr: RPR006``), and the reporters with the lint — and rule
RPR006 shares its id with the runtime sanitizer
(:mod:`repro.topology.sanitize`), which asserts dynamically exactly
what the static rule proves on source.

Severity policy: a mix of two *definite* origins (distinct
``VertexTable(...)`` construction sites) is an ``ERROR`` — the tables
cannot be the same object.  Mixes involving symbolic origins (dotted
expressions like ``self._table``, ``interned`` sites) may alias, so
they report as ``WARNING`` and never gate CI.  Unknown origins never
report at all.

Suppressions that suppress nothing are themselves reported (RPR000):
this engine owns staleness of the flow rule ids, the lint owns its own
ids plus unknown ids (see ``EXTERNAL_RPR_IDS`` in astlint).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
)

from repro.checks import astlint
from repro.checks.astlint import (
    _module_name_of,
    _parse_suppressions,
    iter_python_files,
)
from repro.checks.cfg import CFG, build_cfg
from repro.checks.findings import Finding, Severity
from repro.checks.provenance import (
    KIND_INDEX,
    KIND_MASK,
    KIND_TABLE,
    TOP,
    AbstractValue,
    Env,
    Evaluator,
    join_env,
)

__all__ = [
    "FLOW_RULES",
    "FLOW_RULE_IDS",
    "FlowContext",
    "FlowRule",
    "FunctionAnalysis",
    "flow_rule",
    "analyze_source",
    "analyze_paths",
]

#: Safety cap on fixpoint sweeps; the lattice is finite and shallow, so
#: real code converges in a handful of passes.
_MAX_SWEEPS = 100


@dataclass(frozen=True)
class FlowContext:
    """Everything the flow rules need about one module."""

    path: str
    module: str
    tree: ast.Module
    lines: Tuple[str, ...]
    suppressions: Dict[int, frozenset[str]]
    #: local name -> dotted import target (``random`` -> ``random``,
    #: ``shuffle`` -> ``random.shuffle``), for resolving call sites.
    imports: Dict[str, str] = field(default_factory=dict)
    #: module-level function definitions by name (worker resolution).
    functions: Dict[str, ast.FunctionDef] = field(default_factory=dict)

    @property
    def module_parts(self) -> Tuple[str, ...]:
        return tuple(self.module.split(".")) if self.module else ()

    def in_pure_package(self) -> bool:
        """Modules whose pure paths ban ambient nondeterminism (RPR008)."""
        return self.module_parts[:2] in (
            ("repro", "core"),
            ("repro", "topology"),
        )

    def resolve_call(self, node: ast.Call) -> Optional[str]:
        """The dotted import target of a call, or ``None``.

        ``random.shuffle(x)`` resolves to ``random.shuffle`` when the
        module imported ``random``; ``shuffle(x)`` resolves the same
        way under ``from random import shuffle``.
        """
        from repro.checks.provenance import dotted_name

        dotted = dotted_name(node.func)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        target = self.imports.get(head)
        if target is None:
            return None
        return f"{target}.{rest}" if rest else target


class FunctionAnalysis:
    """One analyzed region: its CFG plus per-element environments."""

    __slots__ = ("context", "region", "cfg", "envs", "evaluator", "name")

    def __init__(
        self,
        context: FlowContext,
        region: ast.AST,
        cfg: CFG,
        envs: Dict[int, Env],
        evaluator: Evaluator,
    ) -> None:
        self.context = context
        self.region = region
        self.cfg = cfg
        self.envs = envs
        self.evaluator = evaluator
        self.name = getattr(region, "name", "<module>")

    def is_module(self) -> bool:
        return isinstance(self.region, ast.Module)

    def elements(self) -> Iterator[Tuple[ast.AST, Env]]:
        """Every CFG element with the environment valid before it."""
        for block in self.cfg.blocks:
            for element in block.elements:
                yield element, self.envs.get(id(element), {})

    def nodes(self) -> Iterator[Tuple[ast.AST, Env]]:
        """Every expression-level node with its environment.

        Walks each element's *own* expressions only: loop bodies, nested
        function bodies, and class bodies are separate elements/regions
        and are not re-walked here.
        """
        for element, env in self.elements():
            for root in _element_exprs(element):
                for node in ast.walk(root):
                    yield node, env

    def evaluate(self, node: ast.AST, env: Env) -> AbstractValue:
        return self.evaluator.evaluate(node, env)


def _element_exprs(element: ast.AST) -> Iterator[ast.AST]:
    """The expression roots a rule should walk for one element."""
    if isinstance(element, (ast.For, ast.AsyncFor)):
        # Header element: the body is lowered into its own blocks.
        yield element.target
        yield element.iter
    elif isinstance(element, ast.withitem):
        yield element.context_expr
        if element.optional_vars is not None:
            yield element.optional_vars
    elif isinstance(
        element, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
    ):
        # Nested regions are analyzed on their own; only the parts
        # evaluated in *this* scope belong to this region's walk.
        for decorator in element.decorator_list:
            yield decorator
        if isinstance(element, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield from element.args.defaults
            yield from (
                d for d in element.args.kw_defaults if d is not None
            )
    else:
        yield element


Checker = Callable[[FunctionAnalysis], Iterator[Finding]]


@dataclass(frozen=True)
class FlowRule:
    """One registered flow rule."""

    rule_id: str
    title: str
    check: Checker


FLOW_RULES: Dict[str, FlowRule] = {}


def flow_rule(rule_id: str, title: str) -> Callable[[Checker], Checker]:
    """Register a checker as the flow rule ``rule_id``."""

    def register(function: Checker) -> Checker:
        if rule_id in FLOW_RULES:
            raise ValueError(f"duplicate flow rule id {rule_id!r}")
        FLOW_RULES[rule_id] = FlowRule(rule_id, title, function)
        # Teach the lint that this id belongs to another engine, so its
        # unused-suppression pass does not claim it as unknown.
        astlint.EXTERNAL_RPR_IDS.add(rule_id)
        return function

    return register


#: The rule ids this engine owns (populated by registration below).
FLOW_RULE_IDS: frozenset[str] = frozenset()


# ----------------------------------------------------------------------
# Abstract interpretation
# ----------------------------------------------------------------------
def _bind_target(
    target: ast.AST,
    value: AbstractValue,
    state: Env,
    evaluator: Evaluator,
) -> None:
    if isinstance(target, ast.Name):
        state[target.id] = value
        return
    if isinstance(target, ast.Starred):
        _bind_target(target.value, TOP, state, evaluator)
        return
    if isinstance(target, (ast.Tuple, ast.List)):
        elements = target.elts
        if (
            value.kind == KIND_INDEX
            and len(elements) == 2
            and all(isinstance(e, ast.Name) for e in elements)
        ):
            # ``table, masks = complex._ensure_index()`` — both halves
            # share the index origin.
            state[elements[0].id] = AbstractValue(  # type: ignore[union-attr]
                KIND_TABLE, value.origin, value.definite
            )
            state[elements[1].id] = AbstractValue(  # type: ignore[union-attr]
                KIND_MASK, value.origin, value.definite
            )
            return
        for element in elements:
            _bind_target(element, TOP, state, evaluator)
    # Attribute/Subscript targets are not tracked.


def _transfer(
    element: ast.AST, state: Env, evaluator: Evaluator
) -> None:
    """Apply one element's effect to ``state`` in place."""
    if isinstance(element, ast.Assign):
        value = evaluator.evaluate(element.value, state)
        for target in element.targets:
            _bind_target(target, value, state, evaluator)
    elif isinstance(element, ast.AnnAssign):
        if element.value is not None:
            value = evaluator.evaluate(element.value, state)
            _bind_target(element.target, value, state, evaluator)
    elif isinstance(element, ast.AugAssign):
        if isinstance(element.target, ast.Name):
            left = state.get(element.target.id, TOP)
            right = evaluator.evaluate(element.value, state)
            if isinstance(
                element.op, (ast.BitAnd, ast.BitOr, ast.BitXor)
            ):
                result = left if left.kind == KIND_MASK else right
                if result.kind != KIND_MASK:
                    result = TOP
            else:
                result = TOP
            state[element.target.id] = result
    elif isinstance(element, (ast.For, ast.AsyncFor)):
        iterable = evaluator.evaluate(element.iter, state)
        _bind_target(
            element.target,
            evaluator.element_of(iterable),
            state,
            evaluator,
        )
    elif isinstance(element, ast.withitem):
        if isinstance(element.optional_vars, ast.Name):
            state[element.optional_vars.id] = TOP
    elif isinstance(element, ast.Delete):
        for target in element.targets:
            if isinstance(target, ast.Name):
                state.pop(target.id, None)


def _run_fixpoint(
    cfg: CFG, evaluator: Evaluator
) -> Dict[int, Env]:
    """Worklist fixpoint; returns env-before-element by ``id(element)``."""
    predecessors = cfg.predecessors()
    order = cfg.rpo()
    out_states: Dict[int, Env] = {}

    def in_state(block_index: int) -> Env:
        state: Env = {}
        for predecessor in predecessors[block_index]:
            previous = out_states.get(predecessor.index)
            if previous is not None:
                state = join_env(state, previous)
        return state

    for _ in range(_MAX_SWEEPS):
        changed = False
        for block in order:
            state = in_state(block.index)
            for element in block.elements:
                _transfer(element, state, evaluator)
            if out_states.get(block.index) != state:
                out_states[block.index] = state
                changed = True
        if not changed:
            break

    envs: Dict[int, Env] = {}
    for block in order:
        state = in_state(block.index)
        for element in block.elements:
            envs[id(element)] = dict(state)
            _transfer(element, state, evaluator)
    return envs


def _iter_regions(tree: ast.Module) -> Iterator[ast.AST]:
    """The module body plus every (async) function definition."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _build_imports(tree: ast.Module) -> Dict[str, str]:
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.partition(".")[0]
                imports[local] = alias.name if alias.asname else local
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                local = alias.asname or alias.name
                imports[local] = f"{node.module}.{alias.name}"
    return imports


def _build_context(
    source: str, path: str, module: Optional[str]
) -> FlowContext:
    tree = ast.parse(source, filename=path)
    lines = tuple(source.splitlines())
    functions = {
        node.name: node
        for node in tree.body
        if isinstance(node, ast.FunctionDef)
    }
    return FlowContext(
        path=path,
        module=(
            module if module is not None else _module_name_of(Path(path))
        ),
        tree=tree,
        lines=lines,
        suppressions=_parse_suppressions(lines),
        imports=_build_imports(tree),
        functions=functions,
    )


def analyze_source(
    source: str, path: str = "<string>", module: Optional[str] = None
) -> List[Finding]:
    """Analyze one module's source; returns its (unsuppressed) findings.

    Also reports RPR000 for every ``# norpr:`` suppression naming a
    flow rule id that suppressed nothing on its line — the flow half of
    the stale-suppression contract (the lint owns its own ids).
    """
    try:
        context = _build_context(source, path, module)
    except SyntaxError as exc:
        return [
            Finding(
                "RPR000",
                Severity.ERROR,
                f"{path}:{exc.lineno or 0}",
                f"syntax error: {exc.msg}",
            )
        ]
    evaluator = Evaluator()
    analyses = []
    for region in _iter_regions(context.tree):
        cfg = build_cfg(region)  # type: ignore[arg-type]
        envs = _run_fixpoint(cfg, evaluator)
        analyses.append(
            FunctionAnalysis(context, region, cfg, envs, evaluator)
        )

    raw: List[Finding] = []
    for rule in FLOW_RULES.values():
        for analysis in analyses:
            raw.extend(rule.check(analysis))

    findings: List[Finding] = []
    used: set[tuple[int, str]] = set()
    for finding in raw:
        line = int(finding.path.rsplit(":", 1)[-1])
        ids = context.suppressions.get(line) or frozenset()
        if finding.rule_id in ids or "all" in ids:
            used.add((line, finding.rule_id))
            if "all" in ids:
                used.add((line, "all"))
            continue
        findings.append(finding)

    flow_ids = frozenset(FLOW_RULES)
    for line, ids in sorted(context.suppressions.items()):
        for rule_id in sorted(ids & flow_ids):
            if (line, rule_id) not in used and (line, "all") not in used:
                findings.append(
                    Finding(
                        "RPR000",
                        Severity.WARNING,
                        f"{path}:{line}",
                        f"unused suppression: `# norpr: {rule_id}` "
                        "suppresses no flow finding on this line — "
                        "remove it before it rots",
                    )
                )
    return findings


def analyze_paths(paths: Iterable[str]) -> List[Finding]:
    """Analyze every Python file under the given files/directories."""
    findings: List[Finding] = []
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        findings.extend(analyze_source(source, path=str(file_path)))
    return findings


# Register the rule packs (imports run the @flow_rule decorators) and
# freeze the id set the stale-suppression split relies on.
from repro.checks import flowrules as _flowrules  # noqa: E402,F401

FLOW_RULE_IDS = frozenset(FLOW_RULES)
