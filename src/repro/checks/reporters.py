"""Text and JSON reporters for :class:`~repro.checks.audit.CheckReport`.

The text reporter reuses the fixed-width table engine of
:mod:`repro.analysis.reporting`, so audit output matches the look of the
experiment tables; the JSON reporter emits a stable machine-readable
document for CI annotation tooling.
"""

from __future__ import annotations

import json

from repro.analysis.reporting import render_rows
from repro.checks.audit import CheckReport
from repro.checks.findings import sort_findings

__all__ = ["render_text", "render_json"]


def _summary_line(report: CheckReport) -> str:
    pieces = []
    if report.targets_audited:
        pieces.append(f"{report.targets_audited} targets audited")
    if report.experiments:
        pieces.append(f"{len(report.experiments)} experiments")
    if report.files_linted:
        pieces.append(f"{report.files_linted} files linted")
    if report.files_analyzed:
        pieces.append(f"{report.files_analyzed} files flow-analyzed")
    if report.baselined:
        pieces.append(f"{report.baselined} baselined")
    pieces.append(
        "clean"
        if report.is_clean()
        else f"{len(report.findings)} finding(s), worst: {report.worst}"
    )
    return ", ".join(pieces)


def render_text(report: CheckReport) -> str:
    """Render a report as a fixed-width table plus a summary line."""
    if report.is_clean():
        return f"repro check {report.scope}: {_summary_line(report)}"
    table = render_rows(
        f"repro check {report.scope}",
        (
            (f.rule_id, str(f.severity), f.path, f.message)
            for f in sort_findings(report.findings)
        ),
        headers=("rule", "severity", "path", "message"),
    )
    return f"{table}\n\n{_summary_line(report)}"


def render_json(report: CheckReport) -> str:
    """Render a report as a stable JSON document."""
    document = {
        "scope": report.scope,
        "targets_audited": report.targets_audited,
        "files_linted": report.files_linted,
        "files_analyzed": report.files_analyzed,
        "baselined": report.baselined,
        "experiments": list(report.experiments),
        "clean": report.is_clean(),
        "worst_severity": str(report.worst),
        "findings": [
            finding.as_dict()
            for finding in sort_findings(report.findings)
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)
