"""Static analysis for the proof machine: ``repro check``.

Three heads share one :class:`~repro.checks.findings.Finding`
vocabulary and one CLI:

* **Domain invariant auditor** (:mod:`repro.checks.rules`,
  :mod:`repro.checks.targets`, :mod:`repro.checks.audit`) — composable
  ``AUD00x`` rules over *live objects*: chromaticity and facet
  maximality of complexes, carrier-map monotonicity and name
  preservation, the Appendix A.3.4 schedule matrix conditions,
  one-round protocol structure and solo idempotence, task and closure
  well-formedness (Theorem 1), and cache-coherence probes for the
  memoization layer.

* **AST lint** (:mod:`repro.checks.astlint`) — ``RPR00x`` rules over
  source code: interning safety, ``from_maximal`` discipline,
  counter placement, exception hygiene on solver hot paths, and the
  fully-annotated public proof core backing the mypy gate.

* **Flow engine** (:mod:`repro.checks.flow` over
  :mod:`repro.checks.cfg` and :mod:`repro.checks.provenance`) —
  flow-sensitive ``RPR006``–``RPR009`` rules: mask provenance across
  :class:`~repro.topology.table.VertexTable` boundaries (statically
  proving what the ``REPRO_SANITIZE=1`` runtime sanitizer asserts
  dynamically), unordered-iteration determinism, pure-path hygiene,
  and worker-function purity — gated through the committed
  ``.repro-flow-baseline.json``.

Run ``repro check --all`` to audit every registered experiment's
machinery, ``repro check --lint src/`` to lint the tree, and
``repro check --flow`` for the flow analysis; tier-1 runs all three
as self-tests.
"""

from repro.checks.astlint import (
    LINT_RULES,
    LintContext,
    LintRule,
    lint_paths,
    lint_source,
)
from repro.checks.audit import (
    CheckReport,
    audit_all,
    audit_experiments,
    flow_report,
    lint_report,
    trace_report,
)
from repro.checks.baseline import (
    apply_baseline,
    load_baseline,
    save_baseline,
)
from repro.checks.findings import (
    Finding,
    Severity,
    max_severity,
    parse_severity,
    sort_findings,
)
from repro.checks.flow import (
    FLOW_RULES,
    FlowContext,
    FlowRule,
    analyze_paths,
    analyze_source,
)
from repro.checks.reporters import render_json, render_text
from repro.checks.rules import (
    RULES,
    AuditRule,
    AuditTarget,
    rules_for_kind,
    run_rules,
)

__all__ = [
    "Finding",
    "Severity",
    "max_severity",
    "parse_severity",
    "sort_findings",
    "AuditRule",
    "AuditTarget",
    "RULES",
    "rules_for_kind",
    "run_rules",
    "LintContext",
    "LintRule",
    "LINT_RULES",
    "lint_source",
    "lint_paths",
    "FlowContext",
    "FlowRule",
    "FLOW_RULES",
    "analyze_source",
    "analyze_paths",
    "apply_baseline",
    "load_baseline",
    "save_baseline",
    "CheckReport",
    "audit_all",
    "audit_experiments",
    "lint_report",
    "flow_report",
    "trace_report",
    "render_text",
    "render_json",
]
