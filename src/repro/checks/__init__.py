"""Static analysis for the proof machine: ``repro check``.

Two heads share one :class:`~repro.checks.findings.Finding` vocabulary
and one CLI:

* **Domain invariant auditor** (:mod:`repro.checks.rules`,
  :mod:`repro.checks.targets`, :mod:`repro.checks.audit`) — composable
  ``AUD00x`` rules over *live objects*: chromaticity and facet
  maximality of complexes, carrier-map monotonicity and name
  preservation, the Appendix A.3.4 schedule matrix conditions,
  one-round protocol structure and solo idempotence, task and closure
  well-formedness (Theorem 1), and cache-coherence probes for the
  memoization layer.

* **AST lint** (:mod:`repro.checks.astlint`) — ``RPR00x`` rules over
  source code: interning safety, ``from_maximal`` discipline,
  counter placement, exception hygiene on solver hot paths, and the
  fully-annotated public proof core backing the mypy gate.

Run ``repro check --all`` to audit every registered experiment's
machinery and ``repro check --lint src/`` to lint the tree; tier-1 runs
both as self-tests.
"""

from repro.checks.astlint import (
    LINT_RULES,
    LintContext,
    LintRule,
    lint_paths,
    lint_source,
)
from repro.checks.audit import (
    CheckReport,
    audit_all,
    audit_experiments,
    lint_report,
    trace_report,
)
from repro.checks.findings import (
    Finding,
    Severity,
    max_severity,
    parse_severity,
    sort_findings,
)
from repro.checks.reporters import render_json, render_text
from repro.checks.rules import (
    RULES,
    AuditRule,
    AuditTarget,
    rules_for_kind,
    run_rules,
)

__all__ = [
    "Finding",
    "Severity",
    "max_severity",
    "parse_severity",
    "sort_findings",
    "AuditRule",
    "AuditTarget",
    "RULES",
    "rules_for_kind",
    "run_rules",
    "LintContext",
    "LintRule",
    "LINT_RULES",
    "lint_source",
    "lint_paths",
    "CheckReport",
    "audit_all",
    "audit_experiments",
    "lint_report",
    "trace_report",
    "render_text",
    "render_json",
]
