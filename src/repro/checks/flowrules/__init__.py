"""Rule packs of the flow-sensitive analysis engine.

Importing this package registers the rules with
:data:`repro.checks.flow.FLOW_RULES` (the modules run their
``@flow_rule`` decorators at import time):

========  ============================================================
rule id   contract
========  ============================================================
RPR006    mask provenance — a bitmask from one ``VertexTable`` is
          never combined bitwise, compared, decoded, or paired into a
          memo key with a mask or table from a different table
          (:mod:`repro.checks.flowrules.masks`; cross-validated at
          runtime by ``REPRO_SANITIZE=1``)
RPR007    determinism — unordered ``set``/``frozenset`` iteration
          never flows into order-sensitive outputs: ``list``/``tuple``
          materialization, ``enumerate``, ``str.join``, list
          comprehensions, or append/yield fold loops
          (:mod:`repro.checks.flowrules.determinism`)
RPR008    pure-path hygiene — ``repro.core``/``repro.topology`` never
          reach unseeded ``random``, wall-clock time, or ``id()``-keyed
          ordering (:mod:`repro.checks.flowrules.determinism`)
RPR009    worker purity — functions shipped through ``parallel_map``
          or executor ``submit``/``map`` pickle cleanly (no lambdas,
          no closures), do not mutate module globals, and do not read
          ambient worker-count configuration
          (:mod:`repro.checks.flowrules.purity`)
========  ============================================================
"""

from repro.checks.flowrules import determinism, masks, purity

__all__ = ["masks", "determinism", "purity"]
