"""RPR006 — mask provenance across :class:`VertexTable` boundaries.

A simplex bitmask is only meaningful relative to the one table that
encoded it; the bitmask-native core (PR 6) made this the repo's hottest
invariant and its least visible one — mixing masks across tables does
not raise, it silently produces wrong simplices.  This rule proves the
invariant on source, flow-sensitively:

* **bitwise combination** (``&``, ``|``, ``^``, also via ``&=`` …) of
  two masks whose origins are known and different;
* **ordering/equality comparison** of such masks (a subset test against
  a foreign table's mask is meaningless);
* **decode sites**: ``table.decode_mask(m)`` / ``decode_mask_trusted``
  where ``m`` provably came from a different table;
* **memo keys**: a tuple pairing ``X.table_id`` with a mask encoded by
  a table other than ``X`` (the ``(table_id, mask)`` key contract of
  the memoization layer).

Severity follows the engine-wide policy: two distinct construction
sites are provably distinct tables (``ERROR``); symbolic origins
(``self._table`` vs ``other._table``, ``interned`` sites) may alias,
so those mixes are ``WARNING``.  The runtime sanitizer
(:mod:`repro.topology.sanitize`) asserts the same contract dynamically
under the same rule id.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.checks.findings import Finding, Severity
from repro.checks.flow import FunctionAnalysis, flow_rule
from repro.checks.provenance import (
    KIND_MASK,
    AbstractValue,
    Env,
    table_token,
)

__all__ = ["check_mask_provenance"]

_BITWISE = (ast.BitAnd, ast.BitOr, ast.BitXor)
_DECODERS = frozenset({"decode_mask", "decode_mask_trusted"})


def _location(analysis: FunctionAnalysis, node: ast.AST) -> str:
    return f"{analysis.context.path}:{getattr(node, 'lineno', 0)}"


def _mismatch(
    left: AbstractValue, right: AbstractValue
) -> Optional[Severity]:
    """Severity of mixing two values, or ``None`` when fine/unknown."""
    if left.origin is None or right.origin is None:
        return None
    if left.origin == right.origin:
        return None
    if left.definite and right.definite:
        return Severity.ERROR
    return Severity.WARNING


def _mask_pair_finding(
    analysis: FunctionAnalysis,
    node: ast.AST,
    left: AbstractValue,
    right: AbstractValue,
    operation: str,
) -> Iterator[Finding]:
    if left.kind != KIND_MASK or right.kind != KIND_MASK:
        return
    severity = _mismatch(left, right)
    if severity is None:
        return
    yield Finding(
        "RPR006",
        severity,
        _location(analysis, node),
        f"{operation} mixes a mask from {left.origin!r} with a mask "
        f"from {right.origin!r}; masks are only meaningful against "
        "the one VertexTable that encoded them — re-encode on a "
        "shared table first",
    )


@flow_rule("RPR006", "masks never cross VertexTable boundaries")
def check_mask_provenance(
    analysis: FunctionAnalysis,
) -> Iterator[Finding]:
    for node, env in analysis.nodes():
        if isinstance(node, ast.BinOp) and isinstance(node.op, _BITWISE):
            yield from _mask_pair_finding(
                analysis,
                node,
                analysis.evaluate(node.left, env),
                analysis.evaluate(node.right, env),
                "bitwise combination",
            )
        elif isinstance(node, ast.Compare):
            yield from _check_compare(analysis, node, env)
        elif isinstance(node, ast.Call):
            yield from _check_decode(analysis, node, env)
        elif isinstance(node, ast.Tuple):
            yield from _check_memo_key(analysis, node, env)


def _check_compare(
    analysis: FunctionAnalysis, node: ast.Compare, env: Env
) -> Iterator[Finding]:
    operands = [node.left] + list(node.comparators)
    comparable = (ast.Eq, ast.NotEq, ast.Lt, ast.LtE, ast.Gt, ast.GtE)
    for op, left_node, right_node in zip(
        node.ops, operands, operands[1:]
    ):
        if not isinstance(op, comparable):
            continue
        yield from _mask_pair_finding(
            analysis,
            node,
            analysis.evaluate(left_node, env),
            analysis.evaluate(right_node, env),
            "comparison",
        )


def _check_decode(
    analysis: FunctionAnalysis, node: ast.Call, env: Env
) -> Iterator[Finding]:
    function = node.func
    if not (
        isinstance(function, ast.Attribute)
        and function.attr in _DECODERS
        and node.args
    ):
        return
    table = table_token(function.value, env)
    mask = analysis.evaluate(node.args[0], env)
    if mask.kind != KIND_MASK:
        return
    severity = _mismatch(table, mask)
    if severity is None:
        return
    yield Finding(
        "RPR006",
        severity,
        _location(analysis, node),
        f"{function.attr} on table {table.origin!r} is handed a mask "
        f"encoded by {mask.origin!r}; decode with the table that "
        "produced the mask",
    )


def _check_memo_key(
    analysis: FunctionAnalysis, node: ast.Tuple, env: Env
) -> Iterator[Finding]:
    """``(X.table_id, mask)`` keys must pair a table with its own mask."""
    table: Optional[AbstractValue] = None
    for element in node.elts:
        if (
            isinstance(element, ast.Attribute)
            and element.attr == "table_id"
        ):
            table = table_token(element.value, env)
            break
    if table is None or table.origin is None:
        return
    for element in node.elts:
        value = analysis.evaluate(element, env)
        if value.kind != KIND_MASK:
            continue
        severity = _mismatch(table, value)
        if severity is None:
            continue
        yield Finding(
            "RPR006",
            severity,
            _location(analysis, node),
            f"memo key pairs table_id of {table.origin!r} with a mask "
            f"encoded by {value.origin!r}; (table_id, mask) keys are "
            "only unambiguous when both halves come from the same "
            "table",
        )
