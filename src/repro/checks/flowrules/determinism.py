"""RPR007/RPR008 — determinism of orders and of ambient inputs.

The library's headline guarantee is bit-for-bit reproducibility:
identical inputs produce identical artifacts at every worker count
(AUD012 tests the parity after the fact; these rules prove the causes
away up front).

**RPR007** flags unordered iteration flowing into order-sensitive
outputs.  ``set``/``frozenset`` iteration order is undefined across
interpreters (it hashes pointers for non-trivial elements), so any of

* ``list(s)`` / ``tuple(s)`` / ``enumerate(s)`` / ``sep.join(s)``,
* a list comprehension over a set,
* a ``for`` loop over a set whose body appends/extends/inserts into an
  accumulator or ``yield``\\ s,

bakes nondeterministic order into an output.  ``sorted(s)`` is the
sanctioned laundering step and is never flagged.  Plain ``dict`` views
are *not* flagged: CPython dicts iterate in insertion order (a language
guarantee since 3.7), so flagging them would bury real findings in
noise — a deliberate narrowing of the rule to provable nondeterminism.

**RPR008** bans ambient nondeterminism from the pure proof packages
(``repro.core``, ``repro.topology``): unseeded module-level ``random``
calls, wall-clock reads (``time.time``/``monotonic``/``perf_counter``,
``datetime.now``), and ``id()``-keyed ordering (``sorted(..., key=id)``
— pointer order varies run to run).  Seeded ``random.Random(seed)``
instances are allowed: determinism comes from the seed, not from
avoiding randomness.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.checks.findings import Finding, Severity
from repro.checks.flow import FunctionAnalysis, flow_rule
from repro.checks.provenance import KIND_UNORDERED, Env

__all__ = ["check_unordered_flow", "check_pure_paths"]

#: Builtins that materialize their argument's iteration order.
_ORDER_CONSUMERS = frozenset({"list", "tuple", "enumerate"})

#: Accumulator methods that make a loop body order-sensitive.
_ACCUMULATORS = frozenset({"append", "extend", "insert"})

#: Wall-clock reads banned from pure paths.
_WALLCLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    }
)


def _location(analysis: FunctionAnalysis, node: ast.AST) -> str:
    return f"{analysis.context.path}:{getattr(node, 'lineno', 0)}"


# ----------------------------------------------------------------------
# RPR007
# ----------------------------------------------------------------------
def _order_sensitive_body(loop: ast.AST) -> bool:
    """Does the loop body append/extend/insert or ``yield``?"""
    for statement in loop.body:  # type: ignore[attr-defined]
        for node in ast.walk(statement):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return True
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _ACCUMULATORS
            ):
                return True
    return False


@flow_rule("RPR007", "unordered iteration must not feed ordered outputs")
def check_unordered_flow(
    analysis: FunctionAnalysis,
) -> Iterator[Finding]:
    for element, env in analysis.elements():
        if not isinstance(element, (ast.For, ast.AsyncFor)):
            continue
        iterable = analysis.evaluate(element.iter, env)
        if iterable.kind != KIND_UNORDERED:
            continue
        if _order_sensitive_body(element):
            yield Finding(
                "RPR007",
                Severity.ERROR,
                _location(analysis, element),
                "loop over a set feeds an ordered accumulator "
                "(append/extend/yield); set iteration order is "
                "undefined — iterate sorted(...) instead",
            )
    for node, env in analysis.nodes():
        if isinstance(node, ast.Call):
            yield from _check_consumer(analysis, node, env)
        elif isinstance(node, ast.ListComp):
            for generator in node.generators:
                iterable = analysis.evaluate(generator.iter, env)
                if iterable.kind == KIND_UNORDERED:
                    yield Finding(
                        "RPR007",
                        Severity.ERROR,
                        _location(analysis, node),
                        "list comprehension over a set bakes undefined "
                        "iteration order into an ordered result; "
                        "iterate sorted(...) instead",
                    )


def _check_consumer(
    analysis: FunctionAnalysis, node: ast.Call, env: Env
) -> Iterator[Finding]:
    function = node.func
    consumer = None
    if (
        isinstance(function, ast.Name)
        and function.id in _ORDER_CONSUMERS
    ):
        consumer = function.id
    elif isinstance(function, ast.Attribute) and function.attr == "join":
        consumer = "join"
    if consumer is None or not node.args:
        return
    value = analysis.evaluate(node.args[0], env)
    if value.kind != KIND_UNORDERED:
        return
    yield Finding(
        "RPR007",
        Severity.ERROR,
        _location(analysis, node),
        f"{consumer}() materializes a set's undefined iteration "
        "order into an ordered output; wrap the set in sorted(...) "
        "first",
    )


# ----------------------------------------------------------------------
# RPR008
# ----------------------------------------------------------------------
def _is_id_keyed_sort(node: ast.Call) -> bool:
    function = node.func
    is_sort = (
        isinstance(function, ast.Name) and function.id in ("sorted", "min", "max")
    ) or (
        isinstance(function, ast.Attribute) and function.attr == "sort"
    )
    if not is_sort:
        return False
    for keyword in node.keywords:
        if (
            keyword.arg == "key"
            and isinstance(keyword.value, ast.Name)
            and keyword.value.id == "id"
        ):
            return True
    return False


@flow_rule("RPR008", "pure paths are free of ambient nondeterminism")
def check_pure_paths(analysis: FunctionAnalysis) -> Iterator[Finding]:
    if not analysis.context.in_pure_package():
        return
    for node, _env in analysis.nodes():
        if not isinstance(node, ast.Call):
            continue
        target = analysis.context.resolve_call(node)
        if target is not None:
            if target.startswith("random.") and target != "random.Random":
                yield Finding(
                    "RPR008",
                    Severity.ERROR,
                    _location(analysis, node),
                    f"{target}() drives the unseeded module-level RNG "
                    "on a pure path; pass a seeded random.Random "
                    "instance instead",
                )
                continue
            if target in _WALLCLOCK:
                yield Finding(
                    "RPR008",
                    Severity.ERROR,
                    _location(analysis, node),
                    f"{target}() reads the wall clock on a pure path; "
                    "results must depend on inputs only",
                )
                continue
        if _is_id_keyed_sort(node):
            yield Finding(
                "RPR008",
                Severity.ERROR,
                _location(analysis, node),
                "ordering by key=id sorts by memory address, which "
                "varies run to run; order by a value-derived key",
            )
