"""RPR009 — purity of functions shipped to pool workers.

:func:`repro.parallel.pool.parallel_map` (and raw executor
``submit``/``map``) pickles the function reference and runs it in a
child process.  Three things break that contract silently:

* **unpicklable callables** — lambdas and nested functions cannot be
  pickled by reference; the failure surfaces as an opaque
  ``PicklingError`` deep inside the pool (or, worse, only at non-1
  worker counts, which the serial fast path hides);
* **module-global mutation** — a worker's write to a module global
  lands in the *child* process and is silently lost, so code that
  "works" serially diverges under ``--workers N``;
* **ambient worker-count reads** — a shipped function consulting
  ``resolve_workers``/``get_default_workers``/``$REPRO_WORKERS`` sees
  the *child's* configuration (pinned to serial), not the parent's,
  which is exactly the kind of worker-count-dependent behaviour the
  determinism contract (identical results at every worker count) bans.

The rule resolves the shipped argument intraprocedurally: lambdas are
flagged outright, names are resolved against the enclosing function
(nested definition → unpicklable) and then against the module's
top-level functions, whose bodies are scanned for the two impurity
patterns.  Names imported from other modules are left alone — the
analysis stays intraprocedural and only reports what it can prove.

The supervisor (:func:`repro.parallel.supervisor.supervised_map`)
ships *two* callables: the positional function and the optional
``fallback=`` retry callback, both pickled into every attempt payload
and executed in workers.  Both are analyzed under the same contract —
a lambda fallback fails exactly as late and as opaquely as a lambda
worker function, and only on the final attempt of a failing task,
which is the worst possible moment to discover it.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.checks.findings import Finding, Severity
from repro.checks.flow import FunctionAnalysis, flow_rule
from repro.checks.provenance import dotted_name

__all__ = ["check_worker_purity"]

#: Fan-out entry points taking the shipped callable first.
_SHIP_FUNCTIONS = frozenset({"parallel_map", "supervised_map"})

#: Entry points that additionally ship selected keyword arguments to
#: workers (the supervisor pickles ``fallback`` into attempt payloads).
_SHIP_KEYWORDS: dict[str, frozenset] = {
    "supervised_map": frozenset({"fallback"}),
}

#: Executor methods taking the shipped callable first; only receivers
#: whose name mentions a pool/executor count, so unrelated ``submit``
#: methods are not swept in.
_SHIP_METHODS = frozenset({"submit", "map"})

#: Worker-count configuration the child must not consult.
_AMBIENT_CALLS = frozenset({"resolve_workers", "get_default_workers"})


def _location(analysis: FunctionAnalysis, node: ast.AST) -> str:
    return f"{analysis.context.path}:{getattr(node, 'lineno', 0)}"


def _shipped_arguments(node: ast.Call) -> list[ast.expr]:
    """Every expression this call pickles into worker processes."""
    function = node.func
    if (
        isinstance(function, ast.Name)
        and function.id in _SHIP_FUNCTIONS
        and node.args
    ):
        shipped = [node.args[0]]
        keywords = _SHIP_KEYWORDS.get(function.id)
        if keywords:
            for keyword in node.keywords:
                if keyword.arg in keywords:
                    shipped.append(keyword.value)
        return shipped
    if (
        isinstance(function, ast.Attribute)
        and function.attr in _SHIP_METHODS
        and node.args
    ):
        receiver = (dotted_name(function.value) or "").lower()
        if "pool" in receiver or "executor" in receiver:
            return [node.args[0]]
    return []


def _defines_locally(region: ast.AST, name: str) -> bool:
    """Is ``name`` a function defined inside this (non-module) region?"""
    if isinstance(region, ast.Module):
        return False
    for node in ast.walk(region):
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node is not region
            and node.name == name
        ):
            return True
    return False


def _global_mutations(worker: ast.FunctionDef) -> Iterator[str]:
    declared: set[str] = set()
    for node in ast.walk(worker):
        if isinstance(node, ast.Global):
            declared.update(node.names)
    if not declared:
        return
    for node in ast.walk(worker):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id in declared:
                yield target.id


def _ambient_reads(worker: ast.FunctionDef) -> Iterator[str]:
    for node in ast.walk(worker):
        if isinstance(node, ast.Call):
            dotted = dotted_name(node.func) or ""
            tail = dotted.rpartition(".")[2]
            if tail in _AMBIENT_CALLS:
                yield f"{tail}()"
        elif (
            isinstance(node, ast.Constant)
            and node.value == "REPRO_WORKERS"
        ):
            yield '"REPRO_WORKERS"'
        elif isinstance(node, ast.Name) and node.id == "WORKERS_ENV":
            yield "WORKERS_ENV"


def _audit_shipped(
    analysis: FunctionAnalysis, node: ast.Call, shipped: ast.expr
) -> Iterator[Finding]:
    """Findings for one expression pickled into workers by ``node``."""
    context = analysis.context
    if isinstance(shipped, ast.Lambda):
        yield Finding(
            "RPR009",
            Severity.ERROR,
            _location(analysis, node),
            "a lambda cannot be pickled by reference and will "
            "fail (only) at worker counts > 1; ship a module-"
            "level function",
        )
        return
    if not isinstance(shipped, ast.Name):
        return
    name = shipped.id
    if _defines_locally(analysis.region, name):
        yield Finding(
            "RPR009",
            Severity.ERROR,
            _location(analysis, node),
            f"nested function {name!r} closes over local state "
            "and cannot be pickled by reference; hoist it to "
            "module level and pass state through the payload",
        )
        return
    worker = context.functions.get(name)
    if worker is None:
        return
    for mutated in sorted(set(_global_mutations(worker))):
        yield Finding(
            "RPR009",
            Severity.ERROR,
            _location(analysis, node),
            f"shipped function {name!r} mutates module global "
            f"{mutated!r}; the write lands in the child process "
            "and is silently lost — return the value through "
            "the result instead",
        )
    for read in sorted(set(_ambient_reads(worker))):
        yield Finding(
            "RPR009",
            Severity.ERROR,
            _location(analysis, node),
            f"shipped function {name!r} reads ambient worker "
            f"configuration ({read}); workers are pinned to "
            "serial, so this sees the child's config, not the "
            "caller's — pass the value through the payload",
        )


@flow_rule("RPR009", "functions shipped to workers stay pure")
def check_worker_purity(
    analysis: FunctionAnalysis,
) -> Iterator[Finding]:
    for node, _env in analysis.nodes():
        if not isinstance(node, ast.Call):
            continue
        for shipped in _shipped_arguments(node):
            yield from _audit_shipped(analysis, node, shipped)
