"""Multi-valued consensus from binary consensus in ``⌈log₂ n⌉`` rounds.

The first algorithm family of Section 5.3: the processes agree on the
*identifier* of one participant, one bit per round (most significant bit
first), then decide that participant's input.  Crucially, the bit a process
feeds the box at round ``r`` is the ``r``-th bit of its current *champion*
identifier — after round ``r-1`` every process's champion already matches
the agreed ``(r-1)``-bit prefix, so by round ``⌈log₂ n⌉`` the champion is
unique.

Why a matching champion always exists in every view: the box's output bit
is valid for the round's *first block*, and the first block's writes are
contained in **every** participant's immediate snapshot, so each process can
adopt a champion (and, by full information, the champion's input value)
from a first-block process whenever its own champion's bit disagrees.

The box input depends only on the process's champion — which after the
prefix argument is a function of its ID and the round number on the
adversary-free executions the lower bound of Theorem 4 targets; this is the
algorithm that makes Theorem 4's ``⌈log₂ n⌉ − 1`` term essentially tight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping, Optional

from repro.core.lower_bounds import ceil_log
from repro.errors import RuntimeModelError
from repro.runtime.algorithm import RoundAlgorithm

__all__ = ["ConsensusViaBinaryConsensus"]


@dataclass(frozen=True)
class _State:
    """Full-information state: champion + everything learned so far."""

    champion: int
    known_inputs: Mapping[int, Hashable]  # inputs learned transitively


def _bit(identifier: int, round_index: int, width: int) -> int:
    """The ``round_index``-th most significant of ``width`` bits of an ID.

    Identifiers are made 0-based before encoding so ``width = ⌈log₂ n⌉``
    bits always suffice for IDs ``1..n``.
    """
    zero_based = identifier - 1
    shift = width - round_index
    return (zero_based >> shift) & 1


class ConsensusViaBinaryConsensus(RoundAlgorithm):
    """n-process multi-valued consensus, ``⌈log₂ n⌉`` rounds, IIS + consensus box.

    Parameters
    ----------
    n:
        The total number of processes (IDs are ``1..n``).
    """

    name = "consensus-via-binary-consensus"

    def __init__(self, n: int) -> None:
        if n < 2:
            raise RuntimeModelError("consensus needs at least 2 processes")
        self.n = n
        self.rounds = max(1, ceil_log(2, n))

    def initial_state(self, process: int, input_value: Hashable) -> _State:
        return _State(
            champion=process, known_inputs={process: input_value}
        )

    def box_input(self, process: int, state: _State, round_index: int) -> int:
        return _bit(state.champion, round_index, self.rounds)

    def step(
        self,
        process: int,
        state: _State,
        seen_states: Mapping[int, _State],
        box_output: Optional[Hashable],
        round_index: int,
    ) -> _State:
        if box_output is None:
            raise RuntimeModelError(
                "ConsensusViaBinaryConsensus requires the binary consensus box"
            )
        merged: dict[int, Hashable] = {}
        for other in seen_states.values():
            merged.update(other.known_inputs)
        champion = state.champion
        if _bit(champion, round_index, self.rounds) != box_output:
            # Adopt a champion matching the agreed bit from the view; the
            # box's validity guarantees a first-block process proposed the
            # agreed bit, and first-block writes are in every snapshot.
            candidates = [
                other.champion
                for other in seen_states.values()
                if _bit(other.champion, round_index, self.rounds)
                == box_output
            ]
            if not candidates:
                raise RuntimeModelError(
                    f"round {round_index}: no visible champion matches the "
                    f"agreed bit {box_output}; the box violated validity "
                    "w.r.t. the first block"
                )
            champion = min(candidates)
        return _State(champion=champion, known_inputs=merged)

    def decide(self, process: int, state: _State) -> Hashable:
        try:
            return state.known_inputs[state.champion]
        except KeyError:
            raise RuntimeModelError(
                f"champion {state.champion}'s input never reached process "
                f"{process}: full-information propagation is broken"
            ) from None
