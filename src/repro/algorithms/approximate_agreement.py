"""Wait-free approximate agreement algorithms in IIS (no objects).

Both algorithms avoid averaging so that every intermediate value stays on
the grid ``{0, 1/m, …, 1}``, exactly as the paper's Section 5 requires.

**HalvingAA** (``n ≥ 3``, ``⌈log₂ 1/ε⌉`` rounds).  At round ``r`` with
round parameter ``ε_r = 2^{t-r}·ε``, each process applies Eq. (3) to the
values it saw::

    v ← min( max(seen), min(seen) + ε_r )

Invariant: entering round ``r`` the values span at most ``2·ε_r``; the
proof of Claim 3 shows one immediate-snapshot round of this map brings the
span to ``ε_r`` — halving per round, reaching ``ε_t = ε`` after ``t``
rounds.  Values never leave the input range and stay on the grid because
``ε_r`` is a multiple of ``1/m``.

**TwoProcessThirdsAA** (``n = 2``, ``⌈log₃ 1/ε⌉`` rounds).  At round ``r``
with ``ε_r = 3^{t-r}·ε``, the process holding the smaller value (ties
broken by process ID) plays the role of ``p₁`` in Eq. (2)::

    p₁ solo:   keep lo               p₁ seeing both:  min(hi, lo + 2·ε_r)
    p₂ solo:   keep hi               p₂ seeing both:  min(hi, lo + ε_r)

dividing the span by 3 per round — which is why 2-process approximate
agreement is *faster* (base 3) than the general case (base 2), matching the
crossover in Corollary 3.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Hashable, Mapping, Optional, Union

from repro.core.lower_bounds import ceil_log
from repro.errors import RuntimeModelError
from repro.runtime.algorithm import RoundAlgorithm

__all__ = ["HalvingAA", "TwoProcessThirdsAA", "NonIteratedHalvingAA"]

Rational = Union[Fraction, int, str]


class HalvingAA(RoundAlgorithm):
    """ε-approximate agreement for ``n ≥ 3`` in ``⌈log₂ 1/ε⌉`` IIS rounds.

    Parameters
    ----------
    epsilon:
        The target agreement parameter (rational in ``(0, 1]``).
    rounds:
        Optional override of the round count (defaults to the tight
        ``⌈log₂ 1/ε⌉``); running fewer rounds demonstrates the lower bound
        binding, running more is harmless.
    """

    name = "halving-AA"

    def __init__(self, epsilon: Rational, rounds: Optional[int] = None):
        self.epsilon = Fraction(epsilon)
        if not 0 < self.epsilon <= 1:
            raise RuntimeModelError("ε must lie in (0, 1]")
        self.rounds = (
            rounds if rounds is not None else ceil_log(2, 1 / self.epsilon)
        )

    def round_epsilon(self, round_index: int) -> Fraction:
        """The round parameter ``ε_r = 2^{t-r}·ε``."""
        return self.epsilon * 2 ** (self.rounds - round_index)

    def initial_state(self, process: int, input_value: Hashable) -> Fraction:
        return Fraction(input_value)

    def step(
        self,
        process: int,
        state: Fraction,
        seen_states: Mapping[int, Fraction],
        box_output: Optional[Hashable],
        round_index: int,
    ) -> Fraction:
        seen = list(seen_states.values())
        return min(max(seen), min(seen) + self.round_epsilon(round_index))

    def decide(self, process: int, state: Fraction) -> Fraction:
        return state


class TwoProcessThirdsAA(RoundAlgorithm):
    """ε-approximate agreement for exactly 2 processes, ``⌈log₃ 1/ε⌉`` rounds.

    Implements the map of Eq. (2) round by round with the tripling round
    parameter.  The process whose value is the round's minimum (ties broken
    toward the smaller ID) acts as ``p₁``.
    """

    name = "two-process-thirds-AA"

    def __init__(self, epsilon: Rational, rounds: Optional[int] = None):
        self.epsilon = Fraction(epsilon)
        if not 0 < self.epsilon <= 1:
            raise RuntimeModelError("ε must lie in (0, 1]")
        self.rounds = (
            rounds if rounds is not None else ceil_log(3, 1 / self.epsilon)
        )

    def round_epsilon(self, round_index: int) -> Fraction:
        """The round parameter ``ε_r = 3^{t-r}·ε``."""
        return self.epsilon * 3 ** (self.rounds - round_index)

    def initial_state(self, process: int, input_value: Hashable) -> Fraction:
        return Fraction(input_value)

    def step(
        self,
        process: int,
        state: Fraction,
        seen_states: Mapping[int, Fraction],
        box_output: Optional[Hashable],
        round_index: int,
    ) -> Fraction:
        if len(seen_states) == 1:
            # Solo view: both roles of Eq. (2) keep their value.
            return state
        if len(seen_states) != 2:
            raise RuntimeModelError(
                "TwoProcessThirdsAA is defined for exactly two processes"
            )
        eps = self.round_epsilon(round_index)
        (id_a, val_a), (id_b, val_b) = sorted(seen_states.items())
        if (val_a, id_a) <= (val_b, id_b):
            low_id, lo, hi = id_a, val_a, val_b
        else:
            low_id, lo, hi = id_b, val_b, val_a
        if process == low_id:
            # p₁ seeing both: min(hi, lo + 2·ε_r).
            return min(hi, lo + 2 * eps)
        # p₂ seeing both: min(hi, lo + ε_r).
        return min(hi, lo + eps)

    def decide(self, process: int, state: Fraction) -> Fraction:
        return state


class NonIteratedHalvingAA(HalvingAA):
    """Halving AA hardened for the *non-iterated* model by phase filtering.

    Under op-level asynchrony on reused registers, a phase-``r`` collect can
    return values written at earlier phases; feeding those into Eq. (3)
    breaks the halving invariant (a stale, wide-apart value re-widens the
    interval after the round parameter ``ε_r`` has already shrunk — see the
    E21 experiment, where the plain algorithm violates ε on a sizable
    fraction of random interleavings).

    The repair: a process at phase ``r`` uses only values written at phase
    ``≥ r``.  Such values went through at least ``r − 1`` applications of
    Eq. (3), so they satisfy the same spread invariant as the process's own
    value; the set is never empty because the process's own register
    qualifies.  Empirically this restores ε-agreement on every random
    non-iterated interleaving tried (and synchronized executions degenerate
    to the plain iterated algorithm).

    Only meaningful with
    :class:`~repro.runtime.noniterated.NonIteratedExecutor`, which passes
    ``(phase, state)`` tags to phase-aware algorithms.
    """

    name = "non-iterated-halving-AA"

    #: Ask the non-iterated executor for (phase, state) tags.
    phase_aware = True

    def step(
        self,
        process: int,
        state: Fraction,
        seen_states: Mapping[int, Hashable],
        box_output: Optional[Hashable],
        round_index: int,
    ) -> Fraction:
        fresh = [
            value
            for phase, value in seen_states.values()
            if phase >= round_index
        ]
        if not fresh:
            fresh = [state]
        return min(
            max(fresh), min(fresh) + self.round_epsilon(round_index)
        )
