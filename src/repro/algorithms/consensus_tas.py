"""Two-process consensus with test&set, in one round (Fig. 4).

The winner of test&set outputs its own input; the loser outputs the other
process's input.  Losing certifies that the winner's write precedes the
loser's snapshot (else the loser would have run the object solo and won),
so the loser always finds the winner's value in its view — the observation
spelled out under Fig. 4 in Section 4.3.

With three or more processes this recipe breaks down, and indeed Corollary 2
shows no other recipe exists: consensus is unsolvable for ``n > 2`` even
with test&set.  The algorithm refuses to run with more than two
participants.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Optional

from repro.errors import RuntimeModelError
from repro.runtime.algorithm import RoundAlgorithm

__all__ = ["TwoProcessConsensusTAS"]

State = tuple[Hashable, Hashable]  # (own input, decided value or None)


class TwoProcessConsensusTAS(RoundAlgorithm):
    """Multi-valued consensus for 2 processes, 1 round, IIS + test&set."""

    name = "two-process-consensus-test&set"
    rounds = 1

    def initial_state(self, process: int, input_value: Hashable) -> State:
        return (input_value, None)

    def step(
        self,
        process: int,
        state: State,
        seen_states: Mapping[int, State],
        box_output: Optional[Hashable],
        round_index: int,
    ) -> State:
        if len(seen_states) > 2:
            raise RuntimeModelError(
                "TwoProcessConsensusTAS supports at most two participants"
            )
        own_input, _ = state
        if box_output == 1:
            return (own_input, own_input)
        # Lost test&set ⟹ the winner wrote before our snapshot, so the
        # other process's input is in our view.
        others = {
            j: other_state
            for j, other_state in seen_states.items()
            if j != process
        }
        if not others:
            raise RuntimeModelError(
                "a test&set loser must have seen the winner's write; "
                "the box and the schedule are inconsistent"
            )
        ((_, (other_input, _)),) = others.items()
        return (own_input, other_input)

    def decide(self, process: int, state: State) -> Hashable:
        _, decision = state
        if decision is None:
            raise RuntimeModelError("decide called before the round ran")
        return decision
