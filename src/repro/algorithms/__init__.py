"""Upper-bound algorithms matching the paper's lower bounds.

* :class:`~repro.algorithms.approximate_agreement.HalvingAA` — ε-approximate
  agreement for ``n ≥ 3`` in ``⌈log₂ 1/ε⌉`` IIS rounds; each round applies
  the map of Eq. (3), halving the value diameter.
* :class:`~repro.algorithms.approximate_agreement.TwoProcessThirdsAA` —
  ε-approximate agreement for ``n = 2`` in ``⌈log₃ 1/ε⌉`` rounds; each round
  applies the asymmetric map of Eq. (2), dividing the diameter by 3.
* :class:`~repro.algorithms.consensus_tas.TwoProcessConsensusTAS` —
  multi-valued consensus for two processes in a single round with test&set
  (Fig. 4).
* :class:`~repro.algorithms.consensus_bc.ConsensusViaBinaryConsensus` —
  multi-valued consensus for ``n`` processes in ``⌈log₂ n⌉`` rounds with a
  binary consensus object, agreeing on a participant ID bit by bit (the
  first algorithm family of Section 5.3, whose box inputs depend only on
  IDs and round numbers).
* :class:`~repro.algorithms.bitwise_aa.BitwiseAA` — ε-approximate agreement
  in ``⌈log₂ 1/ε⌉`` rounds with a binary consensus object, agreeing on the
  output's bits most-significant first (the second family of Section 5.3,
  whose box inputs depend on values — outside Theorem 4's restriction).
"""

from repro.algorithms.approximate_agreement import (
    HalvingAA,
    NonIteratedHalvingAA,
    TwoProcessThirdsAA,
)
from repro.algorithms.consensus_tas import TwoProcessConsensusTAS
from repro.algorithms.consensus_bc import ConsensusViaBinaryConsensus
from repro.algorithms.bitwise_aa import BitwiseAA

__all__ = [
    "HalvingAA",
    "NonIteratedHalvingAA",
    "TwoProcessThirdsAA",
    "TwoProcessConsensusTAS",
    "ConsensusViaBinaryConsensus",
    "BitwiseAA",
]
