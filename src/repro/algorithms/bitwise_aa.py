"""ε-approximate agreement from binary consensus, one bit per round.

The second algorithm family of Section 5.3: at round ``r`` each process
writes its current value and calls the binary consensus object with the
``r``-th bit (most significant first) of that value; the agreed bits pin
the output to a dyadic window that halves every round.

Invariant: entering round ``r``, every current value lies in the closed
window ``[a, a + 2^{1-r}]`` where ``a = 0.b₁…b_{r-1}`` is the agreed
prefix.  The round's proposal is "am I in the upper half?"; the box agrees
on a half; processes outside the agreed half adopt a visible first-block
value inside it (the first block is contained in every immediate snapshot,
and first-block inputs are valid for the box, so such a value exists).
After ``t = ⌈log₂ 1/ε⌉`` rounds the window has width ``2^{-t} ≤ ε``.

Every adopted value is an actual written value, so outputs stay in the
input range and on the grid.  Note the box input depends on the process's
*value*, not only its ID — this family deliberately escapes Theorem 4's
hypothesis, which is exactly why the theorem's lower bound does not contradict
its ``⌈log₂ 1/ε⌉`` round complexity.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Hashable, Mapping, Optional, Union

from repro.core.lower_bounds import ceil_log
from repro.errors import RuntimeModelError
from repro.runtime.algorithm import RoundAlgorithm

__all__ = ["BitwiseAA"]

Rational = Union[Fraction, int, str]


@dataclass(frozen=True)
class _State:
    """Current value plus the low end of the agreed dyadic window."""

    value: Fraction
    window_low: Fraction


class BitwiseAA(RoundAlgorithm):
    """ε-AA in ``⌈log₂ 1/ε⌉`` rounds, IIS + binary consensus (value-called).

    Parameters
    ----------
    epsilon:
        Target agreement; values must lie in ``[0, 1]``.
    """

    name = "bitwise-AA-binary-consensus"

    def __init__(self, epsilon: Rational) -> None:
        self.epsilon = Fraction(epsilon)
        if not 0 < self.epsilon <= 1:
            raise RuntimeModelError("ε must lie in (0, 1]")
        self.rounds = ceil_log(2, 1 / self.epsilon)

    def _half_width(self, round_index: int) -> Fraction:
        """The width ``2^{-r}`` of each half-window at round ``r``."""
        return Fraction(1, 2**round_index)

    def initial_state(self, process: int, input_value: Hashable) -> _State:
        value = Fraction(input_value)
        if not 0 <= value <= 1:
            raise RuntimeModelError("inputs must lie in [0, 1]")
        return _State(value=value, window_low=Fraction(0))

    def box_input(self, process: int, state: _State, round_index: int) -> int:
        mid = state.window_low + self._half_width(round_index)
        return 1 if state.value >= mid else 0

    def step(
        self,
        process: int,
        state: _State,
        seen_states: Mapping[int, _State],
        box_output: Optional[Hashable],
        round_index: int,
    ) -> _State:
        if box_output is None:
            raise RuntimeModelError(
                "BitwiseAA requires the binary consensus box"
            )
        half = self._half_width(round_index)
        low = state.window_low + box_output * half
        high = low + half
        if low <= state.value <= high:
            return _State(value=state.value, window_low=low)
        # Adopt a visible value inside the agreed half; the box's validity
        # w.r.t. the first block guarantees one is in every snapshot.
        candidates = [
            other.value
            for other in seen_states.values()
            if low <= other.value <= high
        ]
        if not candidates:
            raise RuntimeModelError(
                f"round {round_index}: no visible value in the agreed window "
                f"[{low}, {high}] — box validity w.r.t. the first block is "
                "broken"
            )
        return _State(value=min(candidates), window_low=low)

    def decide(self, process: int, state: _State) -> Fraction:
        return state.value
