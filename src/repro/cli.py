"""Command-line interface.

Exposes the library's headline computations without writing Python::

    repro models                      # Fig. 8 census of the three models
    repro impossibility consensus --n 3 --model iis
    repro closure --n 3 --eps 1/4 --m 4 --liberal --model tas
    repro bounds --eps 1/8 --n 3
    repro run halving --eps 1/8 --inputs 0,1/2,1 --seed 7 --crash 0.2
    repro check --all                 # audit every experiment's invariants
    repro check --lint src/           # repo-specific AST lint (RPR rules)
    repro check --flow                # flow analysis (mask provenance, …)
    repro run halving --sanitize ...  # runtime mask-provenance sanitizer
    repro chaos --algorithm aa --model iis -n 3 --executions 2000 --seed 0
    repro chaos --replay trace.json --shrink
    repro chaos --workers 2 --retries 2 --inject-exec-faults 0 --json

The ``run``, ``experiment``, and ``chaos`` subcommands accept
``--retries/--task-timeout/--no-degrade`` to tune the execution
supervisor (see docs/RESILIENCE.md); ``chaos`` additionally accepts
``--inject-exec-faults SEED`` for executor-level chaos (worker kills,
transient task errors) that the supervisor must absorb without
changing the report.

The ``run``, ``experiment``, and ``chaos`` subcommands accept
``--trace PATH [--trace-format json|chrome|text]`` to record a telemetry
span tree of the invocation (see docs/OBSERVABILITY.md)::

    repro experiment E9 --trace e9.trace.json
    repro trace summarize e9.trace.json --top 10
    repro check --trace e9.trace.json     # AUD011 artifact audit

The ``serve`` subcommand runs the batched solver service (single-flight
deduplication, micro-batched solvability fan-outs, a persistent
content-addressed result store — see docs/SERVICE.md); ``client`` sends
it one request::

    repro serve --port 7341 --store .repro-store --trace-dir traces/
    repro client lower_bound --params '{"n": 4, "eps": "1/8"}'
    repro trace summarize traces/        # merge per-request artifacts

Also available as ``python -m repro``.
"""

from __future__ import annotations

import argparse
import sys
from fractions import Fraction
from typing import Optional

from repro.algorithms import (
    BitwiseAA,
    ConsensusViaBinaryConsensus,
    HalvingAA,
    TwoProcessConsensusTAS,
    TwoProcessThirdsAA,
)
from repro.analysis import ExperimentRow, figure8_census, render_table
from repro.core import (
    ClosureComputer,
    aa_lower_bound_iis,
    aa_lower_bound_iis_bc,
    aa_lower_bound_iis_tas,
    impossibility_from_fixed_point,
)
from repro.models import ImmediateSnapshotModel
from repro.objects import (
    AugmentedModel,
    BinaryConsensusBox,
    TestAndSetBox,
    beta_input_function,
)
from repro.objects.base import BlackBox
from repro.errors import ExperimentError, ReproError
from repro.runtime import (
    Adversary,
    IteratedExecutor,
    RandomAdversary,
    RandomMatrixAdversary,
)
from repro.tasks import (
    approximate_agreement_task,
    binary_consensus_task,
    liberal_approximate_agreement_task,
    relaxed_consensus_task,
)
from repro.tasks.inputs import input_simplex

__all__ = ["main", "build_parser"]


def _resolve_model(name: str, n: int):
    """Map a CLI model name to a computation model instance."""
    if name == "iis":
        return ImmediateSnapshotModel()
    if name == "tas":
        return AugmentedModel(TestAndSetBox())
    if name == "bc":
        # Theorem 4 style: ID-called, alternating bits.
        beta = {i: i % 2 for i in range(1, n + 1)}
        return AugmentedModel(BinaryConsensusBox(), beta_input_function(beta))
    raise SystemExit(f"unknown model {name!r}: use iis, tas, or bc")


def _cmd_models(args: argparse.Namespace) -> int:
    data = figure8_census()
    rows = [
        ExperimentRow(
            "immediate snapshot",
            "13 facets (chromatic subdivision)",
            f"{data['immediate_snapshot'].facets} facets, "
            f"f-vector {data['immediate_snapshot'].f_vector}",
            data["immediate_snapshot"].facets == 13,
        ),
        ExperimentRow(
            "snapshot",
            "19 facets",
            f"{data['snapshot'].facets} facets",
            data["snapshot"].facets == 19,
        ),
        ExperimentRow(
            "collect",
            "25 facets",
            f"{data['collect'].facets} facets",
            data["collect"].facets == 25,
        ),
        ExperimentRow(
            "strict hierarchy IIS ⊂ snap ⊂ collect",
            "yes",
            str(
                data["iis_strictly_inside_snapshot"]
                and data["snapshot_strictly_inside_collect"]
            ),
            True,
        ),
    ]
    print(render_table("One-round models, n = 3 (Fig. 8)", rows))
    return 0


def _cmd_impossibility(args: argparse.Namespace) -> int:
    ids = list(range(1, args.n + 1))
    if args.task == "consensus":
        task = binary_consensus_task(ids)
    elif args.task == "relaxed-consensus":
        task = relaxed_consensus_task(ids)
    else:
        raise SystemExit(f"unknown task {args.task!r}")
    model = _resolve_model(args.model, args.n)
    report = impossibility_from_fixed_point(task, model)
    print(report.summary())
    return 0 if report.fixed_point or report.zero_round_solvable else 1


def _cmd_closure(args: argparse.Namespace) -> int:
    ids = list(range(1, args.n + 1))
    eps = Fraction(args.eps)
    builder = (
        liberal_approximate_agreement_task
        if args.liberal
        else approximate_agreement_task
    )
    task = builder(ids, eps, args.m)
    model = _resolve_model(args.model, args.n)
    computer = ClosureComputer(task, model)
    values = {i: Fraction(k, args.n - 1) for k, i in enumerate(ids)}
    # Snap onto the grid.
    values = {
        i: Fraction(round(v * args.m), args.m) for i, v in values.items()
    }
    sigma = input_simplex(values)
    outputs = computer.legal_outputs(sigma)
    spreads = sorted(
        {
            max(v.value for v in tau.vertices)
            - min(v.value for v in tau.vertices)
            for tau in outputs
        }
    )
    print(f"task      : {task.name}")
    print(f"model     : {model.name}")
    print(f"input σ   : { {i: str(v) for i, v in values.items()} }")
    print(f"|Δ'(σ)|   : {len(outputs)} legal output sets")
    print(f"spreads   : {[str(s) for s in spreads]}")
    print(f"max spread: {max(spreads)}  (ε = {eps})")
    return 0


def _cmd_bounds(args: argparse.Namespace) -> int:
    eps = Fraction(args.eps)
    n = args.n
    rows = [
        ExperimentRow(
            "wait-free IIS",
            "⌈log₃ 1/ε⌉ (n=2) / ⌈log₂ 1/ε⌉ (n≥3)",
            f"{aa_lower_bound_iis(n, eps)} rounds",
            True,
        ),
        ExperimentRow(
            "IIS + test&set",
            "1 (n=2) / ⌈log₂ 1/ε⌉ (n≥3)",
            f"{aa_lower_bound_iis_tas(n, eps)} rounds",
            True,
        ),
    ]
    if n >= 3:
        rows.append(
            ExperimentRow(
                "IIS + binary consensus (ID-called)",
                "min(⌈log₂ 1/ε⌉, ⌈log₂ n⌉ − 1)",
                f"{aa_lower_bound_iis_bc(n, eps)} rounds",
                True,
            )
        )
    print(
        render_table(
            f"ε-approximate agreement round bounds — n = {n}, ε = {eps}",
            rows,
        )
    )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    eps = Fraction(args.eps) if args.eps else None
    raw_inputs = [Fraction(part) for part in args.inputs.split(",")]
    inputs = {i + 1: value for i, value in enumerate(raw_inputs)}

    box: Optional[BlackBox] = None
    if args.algorithm == "halving":
        algorithm = HalvingAA(eps)
    elif args.algorithm == "thirds":
        algorithm = TwoProcessThirdsAA(eps)
    elif args.algorithm == "tas-consensus":
        algorithm = TwoProcessConsensusTAS()
        box = TestAndSetBox()
    elif args.algorithm == "bc-consensus":
        algorithm = ConsensusViaBinaryConsensus(len(inputs))
        box = BinaryConsensusBox()
    elif args.algorithm == "bitwise":
        algorithm = BitwiseAA(eps)
        box = BinaryConsensusBox()
    else:
        raise SystemExit(f"unknown algorithm {args.algorithm!r}")

    if args.adversary == "random":
        adversary: Adversary = RandomAdversary(
            seed=args.seed, crash_probability=args.crash
        )
    else:
        # Seeded matrix adversary over the weaker snapshot/collect models.
        if box is not None:
            raise SystemExit(
                f"algorithm {args.algorithm!r} uses a black box, which "
                "requires immediate-snapshot schedules; use "
                "--adversary random"
            )
        if args.crash:
            raise SystemExit(
                "--crash is only supported with --adversary random"
            )
        adversary = RandomMatrixAdversary(kind=args.adversary, seed=args.seed)

    executor = IteratedExecutor(box=box)
    result = executor.run(algorithm, inputs, adversary)
    print(f"algorithm : {algorithm.name} ({algorithm.rounds} rounds)")
    for record in result.trace:
        blocks = " | ".join(",".join(map(str, b)) for b in record.blocks)
        extra = (
            f"  box={dict(record.box_outputs)}" if record.box_outputs else ""
        )
        print(f"  round {record.round_index}: [{blocks}]{extra}")
    if result.crashed:
        print(f"crashed   : {result.crashed}")
    print(
        "decisions :",
        {p: str(v) for p, v in sorted(result.decisions.items())},
    )
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.checks import (
        audit_all,
        audit_experiments,
        flow_report,
        lint_report,
        parse_severity,
        render_json,
        render_text,
        trace_report,
    )

    try:
        fail_on = parse_severity(args.fail_on)
    except ValueError as exc:
        raise SystemExit(str(exc))

    reports = []
    if args.lint:
        reports.append(lint_report(args.lint))
    if args.flow is not None or args.update_baseline:
        flow_paths = args.flow or ["src/repro"]
        reports.append(
            flow_report(
                flow_paths,
                baseline_path=args.baseline,
                update_baseline=args.update_baseline,
            )
        )
    if args.trace_paths:
        reports.append(trace_report(args.trace_paths))
    if args.all:
        reports.append(audit_all())
    elif args.ids:
        try:
            reports.append(audit_experiments(args.ids))
        except KeyError as exc:
            raise SystemExit(str(exc.args[0]))
    if not reports:
        # Bare `repro check` audits everything, like `--all`.
        reports.append(audit_all())

    merged = reports[0]
    for report in reports[1:]:
        merged = merged.merged_with(report)
    renderer = render_json if args.format == "json" else render_text
    print(renderer(merged))
    return merged.exit_code(fail_on)


def _cmd_experiment(args: argparse.Namespace) -> int:
    from pprint import pformat

    from repro.experiments import EXPERIMENTS, get_experiment

    if args.id is None:
        print("Available experiments (see DESIGN.md §4):")
        for identifier in sorted(
            EXPERIMENTS, key=lambda e: int(e[1:])
        ):
            entry = EXPERIMENTS[identifier]
            print(f"  {identifier:<4} {entry.artifact:<28} {entry.summary}")
        return 0
    from repro.experiments import run_experiment

    experiment = get_experiment(args.id)
    print(f"{experiment.identifier} — {experiment.artifact}")
    print(experiment.summary)
    print()
    try:
        data = run_experiment(experiment.identifier)
    except ExperimentError as exc:
        # One-line diagnosable cause instead of a raw traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(pformat(data))
    return 0


def _load_trace_file(path: str) -> dict:
    from repro.telemetry import load_trace

    try:
        with open(path, "r", encoding="utf-8") as handle:
            return load_trace(handle.read())
    except OSError as exc:
        raise SystemExit(f"cannot read trace {path!r}: {exc}")
    except ReproError as exc:
        raise SystemExit(f"invalid trace {path!r}: {exc}")


def _cmd_trace(args: argparse.Namespace) -> int:
    import os

    from repro.telemetry import merge_traces
    from repro.telemetry import render_text as render_trace_text

    if os.path.isdir(args.path):
        # A directory of per-request artifacts (repro serve --trace-dir):
        # merge every artifact's roots into one forest and summarize
        # that, in deterministic filename order.
        names = sorted(
            name
            for name in os.listdir(args.path)
            if name.endswith(".json")
        )
        if not names:
            raise SystemExit(
                f"no trace artifacts (*.json) in directory {args.path!r}"
            )
        trace = merge_traces(
            [
                _load_trace_file(os.path.join(args.path, name))
                for name in names
            ]
        )
    else:
        trace = _load_trace_file(args.path)
    print(render_trace_text(trace, top=args.top))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import ServeConfig, run_server

    config = ServeConfig(
        host=args.host,
        port=args.port,
        unix_path=args.unix_socket,
        store_dir=args.store,
        store_max_bytes=args.store_max_bytes,
        batch_window=args.batch_window,
        batch_max=args.batch_max,
        workers=getattr(args, "workers", None),
        trace_dir=args.trace_dir,
        ready_file=args.ready_file,
    )
    try:
        config.validate()
    except ReproError as exc:
        raise SystemExit(str(exc))
    where = f"{config.host}:{config.port}"
    if config.unix_path is not None:
        where += f" and unix:{config.unix_path}"
    print(f"repro serve: listening on {where}", file=sys.stderr)
    try:
        asyncio.run(run_server(config))
    except KeyboardInterrupt:
        pass
    except ReproError as exc:
        raise SystemExit(str(exc))
    return 0


def _cmd_client(args: argparse.Namespace) -> int:
    import json

    from repro.serve import ServeClient

    try:
        params = json.loads(args.params)
    except ValueError as exc:
        raise SystemExit(f"--params is not JSON: {exc}")
    if not isinstance(params, dict):
        raise SystemExit("--params must be a JSON object")
    try:
        with ServeClient(
            host=args.host,
            port=args.port,
            unix_path=args.unix_socket,
            timeout=args.timeout,
        ) as client:
            if args.envelope:
                payload = client.call_raw(args.method, params)
            else:
                payload = client.call(args.method, params)
    except (ReproError, OSError) as exc:
        raise SystemExit(f"request failed: {exc}")
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json

    from repro.faults import (
        CampaignConfig,
        FaultTrace,
        replay_trace,
        render_report,
        report_to_json,
        run_campaign,
        shrink_trace,
        trace_weight,
    )
    from repro.faults.campaign import get_cell

    eps = Fraction(args.eps)
    if args.replay is not None:
        try:
            with open(args.replay, "r", encoding="utf-8") as handle:
                trace = FaultTrace.from_json(handle.read())
        except (OSError, ValueError, KeyError) as exc:
            raise SystemExit(f"cannot load trace {args.replay!r}: {exc}")
        try:
            if args.shrink:
                trace = shrink_trace(trace, epsilon=eps)
            classification, violation = replay_trace(trace, epsilon=eps)
        except ReproError as exc:
            raise SystemExit(f"replay failed: {exc}")
        payload = {
            "classification": classification,
            "property": violation.property if violation else None,
            "witness": violation.witness if violation else None,
            "weight": trace_weight(trace),
            "trace": trace.to_json(),
        }
        if args.json:
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            print(f"classification: {classification}")
            if violation is not None:
                print(f"property      : {violation.property}")
                print(f"witness       : {violation.witness}")
            print(f"trace weight  : {payload['weight']}")
            if args.shrink:
                print(f"shrunk trace  : {payload['trace']}")
        return 0

    config = CampaignConfig(
        cell=args.algorithm,
        model=args.model,
        n=args.n,
        t=args.t,
        executions=args.executions,
        seed=args.seed,
        epsilon=eps,
        deadline=args.deadline,
        illegal=args.inject_illegal,
        allow_illegal=args.allow_illegal,
    )
    try:
        report = run_campaign(config)
    except ReproError as exc:
        raise SystemExit(str(exc))
    if args.json:
        print(json.dumps(report_to_json(report), indent=2, sort_keys=True))
    else:
        print(render_report(report))
    if get_cell(config.cell).broken:
        # Violations/hangs are the expected outcome for broken fixtures.
        return 0
    return 0 if report.clean else 1


def _add_workers_argument(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``--workers`` option (parallel execution)."""
    group = parser.add_argument_group("parallelism")
    group.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="process-pool workers for protocol expansion, solvability "
        "search, and chaos trials (default: $REPRO_WORKERS or 1; "
        "results are identical at every worker count)",
    )


def _add_supervisor_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the shared supervision options (retry/timeout/degrade)."""
    group = parser.add_argument_group("resilience")
    group.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="re-attempts per pool task before quarantine (default: 2); "
        "retried and recovered runs stay byte-identical to fault-free "
        "serial runs",
    )
    group.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-task busy-time budget; an attempt exceeding it is "
        "classified as a timeout failure (retried, then quarantined). "
        "Distinct from the whole-campaign --deadline",
    )
    group.add_argument(
        "--no-degrade",
        action="store_true",
        help="disable the circuit breaker's serial fallback: raise "
        "instead of degrading to in-process execution when the pool "
        "keeps breaking",
    )


def _add_sanitize_argument(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``--sanitize`` option (mask provenance)."""
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="enable the runtime mask-provenance sanitizer for this "
        "invocation (equivalent to REPRO_SANITIZE=1): bitmasks are "
        "tagged with their owning VertexTable and cross-table "
        "mixes raise MaskProvenanceError (RPR006)",
    )


def _add_trace_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``--trace``/``--trace-format`` options."""
    group = parser.add_argument_group("telemetry")
    group.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record a telemetry span tree of this invocation to PATH",
    )
    group.add_argument(
        "--trace-format",
        default="json",
        choices=["json", "chrome", "text"],
        help="trace artifact format: canonical span tree (json), "
        "chrome://tracing / Perfetto events (chrome), or the top-N "
        "self-time table (text); default: json",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Asynchronous speedup theorem toolbox (Fraigniaud–Paz–Rajsbaum, "
            "PODC 2022)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="census of the three one-round models")

    p = sub.add_parser(
        "impossibility", help="run the Lemma 1 fixed-point pipeline"
    )
    p.add_argument("task", choices=["consensus", "relaxed-consensus"])
    p.add_argument("--n", type=int, default=2)
    p.add_argument("--model", default="iis", choices=["iis", "tas", "bc"])

    p = sub.add_parser("closure", help="compute Δ' of ε-approximate agreement")
    p.add_argument("--n", type=int, default=2)
    p.add_argument("--eps", default="1/4")
    p.add_argument("--m", type=int, default=4)
    p.add_argument("--liberal", action="store_true")
    p.add_argument("--model", default="iis", choices=["iis", "tas", "bc"])

    p = sub.add_parser("bounds", help="ε-AA round-bound table per model")
    p.add_argument("--n", type=int, default=3)
    p.add_argument("--eps", default="1/8")

    p = sub.add_parser(
        "experiment",
        help="list or run the paper's experiments (E1–E23)",
    )
    p.add_argument("id", nargs="?", default=None)
    _add_workers_argument(p)
    _add_supervisor_arguments(p)
    _add_sanitize_argument(p)
    _add_trace_arguments(p)

    p = sub.add_parser(
        "check",
        help="static analysis: audit domain invariants and lint sources",
        description=(
            "Audit the library's structural invariants over the experiment "
            "registry's live objects (chromaticity, facet maximality, "
            "carrier monotonicity, schedule matrix conditions, memo "
            "coherence, task/closure well-formedness), run the "
            "repo-specific AST lint (RPR001–RPR005), and/or run the "
            "flow-sensitive analysis (RPR006–RPR009: mask provenance, "
            "determinism, worker purity) with its committed baseline."
        ),
    )
    p.add_argument(
        "ids",
        nargs="*",
        metavar="EXPERIMENT",
        help="experiment ids to audit (e.g. E7 E12); default: all",
    )
    p.add_argument(
        "--all",
        action="store_true",
        help="audit every registered experiment's machinery",
    )
    p.add_argument(
        "--lint",
        nargs="+",
        metavar="PATH",
        help="lint the given files/directories with the RPR rules",
    )
    p.add_argument(
        "--flow",
        nargs="*",
        metavar="PATH",
        default=None,
        help="run the flow-sensitive analysis (RPR006–RPR009: mask "
        "provenance, determinism, worker purity) over the given "
        "files/directories (default: src/repro)",
    )
    p.add_argument(
        "--baseline",
        metavar="FILE",
        default=".repro-flow-baseline.json",
        help="baseline file of grandfathered flow findings "
        "(default: .repro-flow-baseline.json; missing file = empty)",
    )
    p.add_argument(
        "--update-baseline",
        action="store_true",
        help="record the current flow findings into the baseline file "
        "and report clean (implies --flow)",
    )
    p.add_argument(
        "--format",
        default="text",
        choices=["text", "json"],
        help="report format (default: text)",
    )
    p.add_argument(
        "--fail-on",
        default="error",
        metavar="SEVERITY",
        help="exit non-zero when a finding reaches this severity "
        "(info, warning, error; default: error)",
    )
    p.add_argument(
        "--trace",
        dest="trace_paths",
        nargs="+",
        metavar="PATH",
        help="audit recorded telemetry trace artifacts (AUD011)",
    )

    p = sub.add_parser(
        "trace",
        help="inspect recorded telemetry trace artifacts",
        description=(
            "Work with trace artifacts recorded via --trace on the run/"
            "experiment/chaos subcommands."
        ),
    )
    trace_sub = p.add_subparsers(dest="trace_command", required=True)
    ps = trace_sub.add_parser(
        "summarize",
        help="print the top-N self-time table of a recorded trace",
    )
    ps.add_argument(
        "path",
        metavar="PATH",
        help="a trace artifact, or a directory of per-request "
        "artifacts (repro serve --trace-dir) to merge and summarize",
    )
    ps.add_argument(
        "--top",
        type=int,
        default=15,
        help="number of span names to show (default: 15)",
    )

    p = sub.add_parser(
        "serve",
        help="run the batched solver service (JSON-RPC over TCP lines)",
        description=(
            "Serve solvability/closure/lower_bound/chaos_campaign "
            "queries over newline-delimited JSON-RPC with single-flight "
            "deduplication, micro-batched solvability fan-outs through "
            "the execution supervisor, and an optional disk-backed "
            "content-addressed result store.  See docs/SERVICE.md."
        ),
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port",
        type=int,
        default=7341,
        help="TCP port (0 binds an ephemeral port; default: 7341)",
    )
    p.add_argument(
        "--unix-socket",
        metavar="PATH",
        default=None,
        help="additionally listen on a Unix domain socket",
    )
    p.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help="directory of the persistent content-addressed result "
        "store (omit to serve without a store)",
    )
    p.add_argument(
        "--store-max-bytes",
        type=int,
        default=None,
        metavar="N",
        help="LRU-evict store entries beyond this total size",
    )
    p.add_argument(
        "--batch-window",
        type=float,
        default=0.02,
        metavar="SECONDS",
        help="how long the first queued solvability query waits for "
        "companions before its batch flushes (default: 0.02)",
    )
    p.add_argument(
        "--batch-max",
        type=int,
        default=16,
        metavar="N",
        help="flush a solvability batch early at this size (default: 16)",
    )
    p.add_argument(
        "--trace-dir",
        metavar="DIR",
        default=None,
        help="write one repro-trace artifact per request into DIR "
        "(summarize with: repro trace summarize DIR)",
    )
    p.add_argument(
        "--ready-file",
        metavar="PATH",
        default=None,
        help="write a JSON readiness file (host/port/pid) once bound — "
        "how scripts discover an ephemeral port",
    )
    _add_workers_argument(p)
    _add_supervisor_arguments(p)
    _add_sanitize_argument(p)

    p = sub.add_parser(
        "client",
        help="send one request to a running solver service",
    )
    p.add_argument(
        "method",
        help="method name (solvability, closure, lower_bound, "
        "chaos_campaign, health, stats)",
    )
    p.add_argument(
        "--params",
        default="{}",
        metavar="JSON",
        help="request params as a JSON object (default: {})",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7341)
    p.add_argument(
        "--unix-socket",
        metavar="PATH",
        default=None,
        help="connect over a Unix domain socket instead of TCP",
    )
    p.add_argument("--timeout", type=float, default=60.0)
    p.add_argument(
        "--envelope",
        action="store_true",
        help="print the full response envelope (including the served "
        "metadata: digest, cached, coalesced) instead of just result",
    )

    p = sub.add_parser("run", help="execute an algorithm under an adversary")
    p.add_argument(
        "algorithm",
        choices=["halving", "thirds", "tas-consensus", "bc-consensus", "bitwise"],
    )
    p.add_argument("--eps", default="1/8")
    p.add_argument("--inputs", default="0,1/2,1", help="comma-separated rationals")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--crash", type=float, default=0.0)
    p.add_argument(
        "--adversary",
        default="random",
        choices=["random", "snapshot", "collect"],
        help="schedule source: seeded immediate-snapshot blocks (random), "
        "or seeded matrix schedules of the weaker models",
    )
    _add_workers_argument(p)
    _add_supervisor_arguments(p)
    _add_sanitize_argument(p)
    _add_trace_arguments(p)

    p = sub.add_parser(
        "chaos",
        help="run a randomized fault-injection campaign, or replay a trace",
        description=(
            "Execute N seeded randomized executions of an algorithm cell "
            "under crash/black-box fault injection, classify each against "
            "the cell's property oracle, and report the tally.  With "
            "--replay, re-execute a recorded trace file instead (add "
            "--shrink to delta-debug it to a locally minimal "
            "counterexample first)."
        ),
    )
    p.add_argument(
        "--algorithm",
        default="aa",
        help="campaign cell key (aa, aa2, consensus, aa-broken, "
        "consensus-broken, hang, exploding)",
    )
    p.add_argument(
        "--model",
        default="iis",
        choices=["iis", "snapshot", "collect"],
    )
    p.add_argument("-n", type=int, default=3, help="number of processes")
    p.add_argument(
        "-t", type=int, default=1, help="max crash faults per execution"
    )
    p.add_argument("--executions", type=int, default=100)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--eps", default="1/8")
    p.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="campaign wall-clock budget in seconds (monotonic)",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="emit a deterministic JSON report",
    )
    p.add_argument(
        "--replay",
        metavar="TRACE_FILE",
        default=None,
        help="replay a recorded FaultTrace JSON file instead of campaigning",
    )
    p.add_argument(
        "--shrink",
        action="store_true",
        help="with --replay: minimize the trace before replaying",
    )
    p.add_argument(
        "--inject-illegal",
        default=None,
        choices=["lost-write", "stale-snapshot", "bad-box"],
        help="inject a model-illegal fault the executor must detect "
        "(requires --allow-illegal)",
    )
    p.add_argument(
        "--allow-illegal",
        action="store_true",
        help="acknowledge that --inject-illegal makes executions invalid",
    )
    p.add_argument(
        "--inject-exec-faults",
        type=int,
        default=None,
        metavar="SEED",
        help="inject seeded executor-level chaos (worker kills and "
        "transient task errors on first attempts) around the pool "
        "tasks of this campaign; the report must stay byte-identical "
        "to a fault-free serial run (AUD014)",
    )
    _add_workers_argument(p)
    _add_supervisor_arguments(p)
    _add_sanitize_argument(p)
    _add_trace_arguments(p)

    return parser


_COMMANDS = {
    "models": _cmd_models,
    "impossibility": _cmd_impossibility,
    "closure": _cmd_closure,
    "bounds": _cmd_bounds,
    "run": _cmd_run,
    "experiment": _cmd_experiment,
    "check": _cmd_check,
    "chaos": _cmd_chaos,
    "trace": _cmd_trace,
    "serve": _cmd_serve,
    "client": _cmd_client,
}


def _supervisor_from_args(args: argparse.Namespace):
    """A SupervisorConfig from the resilience flags, or None if unset.

    Only invocations that pass at least one of ``--retries``,
    ``--task-timeout``, ``--no-degrade``, or ``--inject-exec-faults``
    install a process-default policy; everything else keeps the stock
    supervision defaults.
    """
    retries = getattr(args, "retries", None)
    task_timeout = getattr(args, "task_timeout", None)
    no_degrade = getattr(args, "no_degrade", False)
    fault_seed = getattr(args, "inject_exec_faults", None)
    if (
        retries is None
        and task_timeout is None
        and not no_degrade
        and fault_seed is None
    ):
        return None
    from repro.faults.executor import default_plan
    from repro.parallel.supervisor import SupervisorConfig

    stock = SupervisorConfig()
    return SupervisorConfig(
        retries=stock.retries if retries is None else retries,
        task_timeout=task_timeout,
        degrade=not no_degrade,
        fault_plan=None if fault_seed is None else default_plan(fault_seed),
    )


def _dispatch(args: argparse.Namespace) -> int:
    """Run the selected command, recording a trace when asked to.

    ``--trace`` turns the whole invocation into one traced region: the
    tracer is installed before the command runs, uninstalled afterwards
    (even on error), and the artifact is written once the command
    returns — including non-zero returns, so a failing experiment still
    leaves a trace to inspect.
    """
    workers = getattr(args, "workers", None)
    if workers is not None:
        # The flag becomes the process-wide default so every library
        # call of this invocation inherits it (see repro.parallel.pool).
        from repro.parallel.pool import set_default_workers

        set_default_workers(workers)
    supervisor = _supervisor_from_args(args)
    if supervisor is not None:
        from repro.parallel.supervisor import set_default_supervisor

        try:
            set_default_supervisor(supervisor)
        except ReproError as exc:
            raise SystemExit(str(exc))
    sanitize_flag = getattr(args, "sanitize", False)
    if sanitize_flag:
        from repro.topology import sanitize

        sanitize.enable()
    try:
        return _dispatch_traced(args)
    finally:
        if sanitize_flag:
            from repro.topology import sanitize

            sanitize.disable()
        if supervisor is not None:
            from repro.parallel.supervisor import set_default_supervisor

            set_default_supervisor(None)
        if workers is not None:
            from repro.parallel.pool import set_default_workers

            set_default_workers(None)


def _dispatch_traced(args: argparse.Namespace) -> int:
    trace_path = getattr(args, "trace", None)
    if trace_path is None:
        return _COMMANDS[args.command](args)

    from repro.telemetry import Tracer, disable, enable, write_trace

    tracer = Tracer()
    enable(tracer)
    try:
        code = _COMMANDS[args.command](args)
    finally:
        disable()
    try:
        write_trace(trace_path, tracer, args.trace_format)
    except OSError as exc:
        print(
            f"cannot write trace {trace_path!r}: {exc}", file=sys.stderr
        )
        return 1
    return code


def main(argv: Optional[list[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except BrokenPipeError:
        # Output was piped into a consumer that closed early (`| head`).
        import os

        try:
            os.close(sys.stdout.fileno())
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
