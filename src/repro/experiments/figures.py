"""Experiments E1, E4, E5, E11 — the paper's structural figures."""

from __future__ import annotations


from repro.algorithms import TwoProcessConsensusTAS
from repro.analysis import (
    figure4_complex_and_map,
    figure5_complex,
    figure7_complex,
    figure8_census,
)
from repro.objects import TestAndSetBox
from repro.runtime import (
    FixedScheduleAdversary,
    IteratedExecutor,
    all_schedule_sequences,
)

__all__ = [
    "reproduce_fig4",
    "reproduce_fig5",
    "reproduce_fig7",
    "reproduce_fig8",
]


def reproduce_fig8() -> dict[str, object]:
    """E1 — Fig. 8: census and strict hierarchy of the three models."""
    return figure8_census()


class _PickOption(FixedScheduleAdversary):
    """Fixed schedule plus a fixed box-option index, for exhaustive sweeps."""

    def __init__(self, blocks, option_index: int):
        super().__init__(blocks)
        self._option_index = option_index

    def choose_assignment(self, round_index, schedule, options):
        return options[min(self._option_index, len(options) - 1)]


def reproduce_fig4() -> dict[str, object]:
    """E4 — Fig. 4: 2-process consensus with test&set, combinatorially
    (a simplicial decision map exists) and operationally (the algorithm is
    correct on every input × schedule × box behavior)."""
    protocol, decision = figure4_complex_and_map()
    executor = IteratedExecutor(box=TestAndSetBox())
    runs = correct = 0
    for inputs in ({1: 0, 2: 1}, {1: 1, 2: 0}, {1: 0, 2: 0}, {1: 1, 2: 1}):
        for sequence in all_schedule_sequences([1, 2], 1):
            for option in range(2):
                result = executor.run(
                    TwoProcessConsensusTAS(),
                    inputs,
                    _PickOption(sequence, option),
                )
                runs += 1
                values = set(result.decisions.values())
                if len(values) == 1 and values <= set(inputs.values()):
                    correct += 1
    return {
        "map_found": decision is not None,
        "protocol_vertices": len(protocol.vertices),
        "runs": runs,
        "correct": correct,
    }


def reproduce_fig5() -> dict[str, object]:
    """E5 — Fig. 5: the IIS+test&set one-round complex for three processes."""
    return figure5_complex()


def reproduce_fig7() -> dict[str, object]:
    """E11 — Fig. 7: the IIS+binary-consensus one-round complex, with the
    figure's call bits (black calls 0, the others 1) and the uniform-call
    contrast."""
    mixed = figure7_complex()
    uniform = figure7_complex(call_bits={1: 1, 2: 1, 3: 1})
    return {"mixed": mixed, "uniform": uniform}
