"""The paper's experiments, as library functions.

Every evaluation artifact of the paper (and each ablation/extension this
reproduction adds) has a ``reproduce_*`` function here returning plain
data; the benchmark harness wraps them with timing and paper-vs-measured
tables, and the CLI exposes them via ``repro experiment <id>``.

The registry maps experiment ids (E1–E23, matching DESIGN.md §4) to
:class:`Experiment` descriptors.
"""

from repro.experiments.registry import (
    EXPERIMENTS,
    Experiment,
    get_experiment,
    run_experiment,
)
from repro.experiments.figures import (
    reproduce_fig4,
    reproduce_fig5,
    reproduce_fig7,
    reproduce_fig8,
)
from repro.experiments.consensus import (
    reproduce_closure_machinery,
    reproduce_corollary1,
    reproduce_corollary2,
)
from repro.experiments.approximate import (
    reproduce_claim1,
    reproduce_claim2,
    reproduce_claim3,
    reproduce_corollary3,
    reproduce_theorem3,
    reproduce_theorem4,
)
from repro.experiments.speedup import reproduce_speedup
from repro.experiments.operational import (
    reproduce_runtime_vs_matrices,
    reproduce_upper_bounds,
)
from repro.experiments.extensions import (
    reproduce_affine_concurrency,
    reproduce_kset,
    reproduce_noniterated,
)
from repro.experiments.performance import (
    reproduce_cache_effectiveness,
    reproduce_scaling,
    reproduce_solver_ablation,
)
from repro.experiments.robustness import reproduce_chaos_harness

__all__ = [
    "EXPERIMENTS",
    "Experiment",
    "get_experiment",
    "run_experiment",
    "reproduce_fig4",
    "reproduce_fig5",
    "reproduce_fig7",
    "reproduce_fig8",
    "reproduce_closure_machinery",
    "reproduce_corollary1",
    "reproduce_corollary2",
    "reproduce_claim1",
    "reproduce_claim2",
    "reproduce_claim3",
    "reproduce_corollary3",
    "reproduce_theorem3",
    "reproduce_theorem4",
    "reproduce_speedup",
    "reproduce_runtime_vs_matrices",
    "reproduce_upper_bounds",
    "reproduce_affine_concurrency",
    "reproduce_kset",
    "reproduce_noniterated",
    "reproduce_cache_effectiveness",
    "reproduce_scaling",
    "reproduce_solver_ablation",
    "reproduce_chaos_harness",
]
