"""Experiments E15, E16 — the operational layer vs the combinatorial one."""

from __future__ import annotations

import random
from fractions import Fraction
from typing import Iterable

from repro.algorithms import (
    BitwiseAA,
    ConsensusViaBinaryConsensus,
    HalvingAA,
    TwoProcessConsensusTAS,
    TwoProcessThirdsAA,
)
from repro.core import ceil_log
from repro.models.schedules import (
    collect_schedules,
    immediate_snapshot_schedules,
    snapshot_schedules,
    view_maps_of_schedules,
)
from repro.objects import BinaryConsensusBox, TestAndSetBox
from repro.runtime import (
    IteratedExecutor,
    RandomAdversary,
    random_collect_round,
    random_immediate_snapshot_round,
    random_snapshot_round,
)

__all__ = ["reproduce_upper_bounds", "reproduce_runtime_vs_matrices"]

F = Fraction


def _aa_ok(result, inputs, eps) -> bool:
    values = list(result.decisions.values())
    lo, hi = min(inputs.values()), max(inputs.values())
    return (
        bool(values)
        and max(values) - min(values) <= eps
        and all(lo <= v <= hi for v in values)
    )


def _consensus_ok(result, inputs) -> bool:
    values = set(result.decisions.values())
    return len(values) == 1 and values <= set(inputs.values())


def reproduce_upper_bounds(
    seeds: Iterable[int] = range(60),
) -> list[tuple[str, int, int, bool]]:
    """E15 — all five upper-bound algorithm families under adversarial
    randomized schedules with crashes; returns (label, expected rounds,
    actual rounds, all-correct)."""
    seeds = list(seeds)
    eps = F(1, 8)
    cases: list[tuple[str, int, int, bool]] = []

    algorithm = TwoProcessThirdsAA(F(1, 9))
    inputs = {1: F(0), 2: F(1)}
    ok = all(
        _aa_ok(
            IteratedExecutor().run(
                algorithm, inputs, RandomAdversary(seed, 0.1)
            ),
            inputs,
            F(1, 9),
        )
        for seed in seeds
    )
    cases.append(("thirds AA n=2 ε=1/9", 2, algorithm.rounds, ok))

    algorithm = HalvingAA(eps)
    inputs = {1: F(0), 2: F(3, 8), 3: F(5, 8), 4: F(1)}
    ok = all(
        _aa_ok(
            IteratedExecutor().run(
                algorithm, inputs, RandomAdversary(seed, 0.15)
            ),
            inputs,
            eps,
        )
        for seed in seeds
    )
    cases.append(("halving AA n=4 ε=1/8", 3, algorithm.rounds, ok))

    algorithm = TwoProcessConsensusTAS()
    inputs = {1: "a", 2: "b"}
    executor = IteratedExecutor(box=TestAndSetBox())
    ok = all(
        _consensus_ok(
            executor.run(algorithm, inputs, RandomAdversary(seed, 0.1)),
            inputs,
        )
        for seed in seeds
    )
    cases.append(("t&s consensus n=2", 1, algorithm.rounds, ok))

    algorithm = BitwiseAA(eps)
    inputs = {1: F(0), 2: F(5, 16), 3: F(1)}
    executor = IteratedExecutor(box=BinaryConsensusBox())
    ok = all(
        _aa_ok(
            executor.run(algorithm, inputs, RandomAdversary(seed, 0.15)),
            inputs,
            eps,
        )
        for seed in seeds
    )
    cases.append(("bitwise AA n=3 ε=1/8", 3, algorithm.rounds, ok))

    algorithm = ConsensusViaBinaryConsensus(5)
    inputs = {i: f"v{i}" for i in range(1, 6)}
    executor = IteratedExecutor(box=BinaryConsensusBox())
    ok = all(
        _consensus_ok(
            executor.run(algorithm, inputs, RandomAdversary(seed, 0.15)),
            inputs,
        )
        for seed in seeds
    )
    cases.append(("consensus via bc n=5", ceil_log(2, 5), algorithm.rounds, ok))
    return cases


def reproduce_runtime_vs_matrices(
    samples: int = 1000,
) -> dict[str, dict[str, object]]:
    """E16 — operation-level executions land inside (and cover) the matrix
    sets of Appendix A.3.4, per model."""
    ids = [1, 2, 3]
    values = {1: "a", 2: "b", 3: "c"}

    def normalize(view_map):
        return tuple(
            (p, tuple(sorted(v))) for p, v in sorted(view_map.items())
        )

    matrix_sets = {
        "collect": {
            normalize(m)
            for m in view_maps_of_schedules(collect_schedules(ids))
        },
        "snapshot": {
            normalize(m)
            for m in view_maps_of_schedules(snapshot_schedules(ids))
        },
        "immediate": {
            normalize(m)
            for m in view_maps_of_schedules(
                immediate_snapshot_schedules(ids)
            )
        },
    }
    runners = {
        "collect": random_collect_round,
        "snapshot": random_snapshot_round,
        "immediate": random_immediate_snapshot_round,
    }
    report: dict[str, dict[str, object]] = {}
    rng = random.Random(2022)
    for name, runner in runners.items():
        reached = set()
        sound = True
        for _ in range(samples):
            views = normalize(runner(ids, values, rng))
            reached.add(views)
            if views not in matrix_sets[name]:
                sound = False
        report[name] = {
            "sound": sound,
            "reached": len(reached),
            "total": len(matrix_sets[name]),
        }
    return report
