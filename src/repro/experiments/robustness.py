"""Experiment E23 — the chaos harness validates itself.

Three claims, all checked operationally:

1. **Correct algorithms stay clean.**  Seeded chaos campaigns over the
   operational upper-bound algorithms (halving ε-AA in IIS/snapshot/
   collect, two-process thirds ε-AA, consensus from the binary-consensus
   box) with mid-round crash injection classify every execution
   ``DECIDED_OK`` — wait-freedom holds under the harness's adversaries.
2. **Broken algorithms are caught and minimized.**  The deliberately
   broken fixtures (ε-AA one round short — Claim 3's invariant does not
   hold; consensus in plain IIS — impossible by Corollary 1) yield
   violations, and delta-debugging shrinks the first counterexample to a
   locally minimal trace replaying to the same verdict.
3. **Illegal faults never pass silently.**  Lost writes, stale
   snapshots, and non-admissible box assignments are all flagged by the
   executors as ``HARNESS_FAULT_DETECTED`` on every single execution.
"""

from __future__ import annotations

from typing import Any

from repro.faults.campaign import (
    CampaignConfig,
    replay_trace,
    run_campaign,
)
from repro.faults.oracles import (
    DECIDED_OK,
    HARNESS_FAULT_DETECTED,
    HUNG,
    VIOLATION,
)
from repro.faults.shrink import shrink_trace, trace_weight

__all__ = ["reproduce_chaos_harness"]

#: The clean-campaign matrix: (cell, model, n, t).
_CLEAN_CELLS = (
    ("aa", "iis", 3, 1),
    ("aa", "snapshot", 3, 1),
    ("aa", "collect", 3, 1),
    ("aa2", "iis", 2, 1),
    ("consensus", "iis", 3, 1),
    ("consensus", "iis", 4, 2),
)

#: Broken fixtures that the harness must catch.
_BROKEN_CELLS = ("aa-broken", "consensus-broken")

#: (illegal mode, carrier cell) pairs; every execution must be detected.
_ILLEGAL_PROBES = (
    ("lost-write", "aa"),
    ("stale-snapshot", "aa"),
    ("bad-box", "consensus"),
)

_EXECUTIONS = 300


def reproduce_chaos_harness() -> dict[str, Any]:
    """E23 — run the three campaign families and summarize the verdicts."""
    clean = []
    for cell, model, n, t in _CLEAN_CELLS:
        report = run_campaign(
            CampaignConfig(
                cell=cell,
                model=model,
                n=n,
                t=t,
                executions=_EXECUTIONS,
                seed=0,
            )
        )
        clean.append(
            {
                "cell": cell,
                "model": model,
                "n": n,
                "t": t,
                "counts": dict(report.counts),
                "incidents": len(report.incidents),
                "clean": report.clean
                and report.counts[DECIDED_OK] == _EXECUTIONS,
            }
        )

    broken = []
    for cell in _BROKEN_CELLS:
        report = run_campaign(
            CampaignConfig(
                cell=cell, model="iis", n=3, t=0,
                executions=_EXECUTIONS, seed=0,
            )
        )
        entry: dict[str, Any] = {
            "cell": cell,
            "violations": report.counts[VIOLATION],
            "hung": report.counts[HUNG],
            "incidents": len(report.incidents),
            "caught": report.counts[VIOLATION] > 0,
        }
        if report.violations:
            first = report.violations[0]
            assert first.trace is not None
            shrunk = shrink_trace(first.trace)
            replay_class, replay_violation = replay_trace(shrunk)
            entry.update(
                {
                    "property": first.property,
                    "original_weight": trace_weight(first.trace),
                    "shrunk_weight": trace_weight(shrunk),
                    "shrunk_rounds": [
                        list(map(list, round_.blocks))
                        for round_ in shrunk.rounds
                    ],
                    "shrunk_replays_to": (
                        replay_class,
                        replay_violation.property
                        if replay_violation is not None
                        else None,
                    ),
                }
            )
        broken.append(entry)

    illegal = []
    for mode, cell in _ILLEGAL_PROBES:
        report = run_campaign(
            CampaignConfig(
                cell=cell,
                model="iis",
                n=3,
                t=0,
                executions=50,
                seed=0,
                illegal=mode,
                allow_illegal=True,
            )
        )
        illegal.append(
            {
                "mode": mode,
                "cell": cell,
                "detected": report.counts[HARNESS_FAULT_DETECTED],
                "executions": 50,
                "all_detected": report.counts[HARNESS_FAULT_DETECTED]
                == 50,
            }
        )

    return {"clean": clean, "broken": broken, "illegal": illegal}
