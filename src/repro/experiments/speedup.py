"""Experiment E13 — the constructive speedup theorem on real algorithms."""

from __future__ import annotations

from fractions import Fraction

from repro.algorithms import TwoProcessConsensusTAS, TwoProcessThirdsAA
from repro.core import verify_speedup_theorem
from repro.core.speedup import SpeedupReport
from repro.models import ImmediateSnapshotModel
from repro.objects import AugmentedModel, TestAndSetBox
from repro.runtime import extract_decision_map
from repro.tasks import approximate_agreement_task, binary_consensus_task

__all__ = ["reproduce_speedup"]


def reproduce_speedup() -> dict[str, SpeedupReport]:
    """E13 — run ``f ↦ f'`` on real decision maps and verify Theorems 1–2.

    Theorem 1 on the 2-round thirds algorithm for ε = 1/9 approximate
    agreement; Theorem 2 on the 1-round test&set consensus algorithm.
    """
    F = Fraction
    iis = ImmediateSnapshotModel()
    eps = F(1, 9)
    aa = approximate_agreement_task([1, 2], eps, 9)
    thirds = TwoProcessThirdsAA(eps)
    aa_map = extract_decision_map(thirds, iis, aa.input_complex)
    aa_report = verify_speedup_theorem(aa, iis, aa_map)

    tas_model = AugmentedModel(TestAndSetBox())
    consensus = binary_consensus_task([1, 2])
    tas_map = extract_decision_map(
        TwoProcessConsensusTAS(), tas_model, consensus.input_complex
    )
    tas_report = verify_speedup_theorem(consensus, tas_model, tas_map)

    return {"theorem1": aa_report, "theorem2": tas_report}
