"""The experiment registry: DESIGN.md §4's index, executable.

Maps experiment identifiers (``E1`` … ``E23``) to descriptors carrying the
paper artifact they regenerate and the reproduction function.  The CLI's
``repro experiment`` subcommand and the benchmark harness both resolve
through this table, so the index in the documentation can never drift from
what actually runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import ExperimentError, ReproError
from repro.telemetry import span

__all__ = ["Experiment", "EXPERIMENTS", "get_experiment", "run_experiment"]


@dataclass(frozen=True)
class Experiment:
    """One reproducible evaluation artifact.

    Attributes
    ----------
    identifier:
        The DESIGN.md id, e.g. ``"E9"``.
    artifact:
        The paper artifact being regenerated (figure/claim/theorem).
    summary:
        One line describing the reproduced shape.
    runner:
        Zero-argument callable returning the experiment's data.
    """

    identifier: str
    artifact: str
    summary: str
    runner: Callable[[], Any]

    def run(self) -> Any:
        """Execute the reproduction and return its data."""
        return self.runner()


def _build_registry() -> dict[str, Experiment]:
    from repro.experiments import approximate as aa
    from repro.experiments import consensus as cons
    from repro.experiments import extensions as ext
    from repro.experiments import figures as figs
    from repro.experiments import operational as ops
    from repro.experiments import performance as perf
    from repro.experiments import robustness as rob
    from repro.experiments import speedup as sp

    entries = [
        Experiment(
            "E1", "Fig. 8",
            "one-round complexes: IIS ⊂ snapshot ⊂ collect (13/19/25 facets)",
            figs.reproduce_fig8,
        ),
        Experiment(
            "E2", "Figs. 1–3",
            "local tasks and closure membership on a worked ε-AA instance",
            cons.reproduce_closure_machinery,
        ),
        Experiment(
            "E3", "Corollary 1",
            "consensus is a fixed point of IIS ⟹ wait-free impossibility",
            cons.reproduce_corollary1,
        ),
        Experiment(
            "E4", "Fig. 4",
            "2-process consensus with test&set in one round",
            figs.reproduce_fig4,
        ),
        Experiment(
            "E5", "Fig. 5",
            "IIS+test&set one-round complex: 7 vertices per color",
            figs.reproduce_fig5,
        ),
        Experiment(
            "E6", "Corollary 2 + Fig. 6",
            "relaxed consensus is a fixed point of IIS+test&set (n=3)",
            cons.reproduce_corollary2,
        ),
        Experiment(
            "E7", "Claim 2",
            "CL_IIS(ε-AA) = 3ε-AA for two processes",
            aa.reproduce_claim2,
        ),
        Experiment(
            "E8", "Claim 3",
            "CL_IIS(liberal ε-AA) = liberal 2ε-AA for n ≥ 3",
            aa.reproduce_claim3,
        ),
        Experiment(
            "E9", "Corollary 3",
            "⌈log₃ 1/ε⌉ / ⌈log₂ 1/ε⌉ round bounds, tight",
            aa.reproduce_corollary3,
        ),
        Experiment(
            "E10", "Theorem 3 / Claim 4",
            "test&set does not accelerate ε-AA for n ≥ 3",
            aa.reproduce_theorem3,
        ),
        Experiment(
            "E11", "Fig. 7",
            "IIS+binary-consensus one-round complex",
            figs.reproduce_fig7,
        ),
        Experiment(
            "E12", "Theorem 4 / Claims 5–6",
            "β-closure halves participants; min(⌈log₂ 1/ε⌉, ⌈log₂ n⌉−1)",
            aa.reproduce_theorem4,
        ),
        Experiment(
            "E13", "Theorems 1–2",
            "the constructive speedup f ↦ f' on real algorithms",
            sp.reproduce_speedup,
        ),
        Experiment(
            "E14", "Claim 1",
            "zero-round (un)solvability of (liberal) ε-AA",
            aa.reproduce_claim1,
        ),
        Experiment(
            "E15", "upper bounds (§1.2, §5.3)",
            "all five algorithm families correct at the stated round counts",
            ops.reproduce_upper_bounds,
        ),
        Experiment(
            "E16", "Appendix A",
            "op-level interleavings land inside the matrix schedules",
            ops.reproduce_runtime_vs_matrices,
        ),
        Experiment(
            "E17", "Conclusion (extension)",
            "the closure engine on 2-set agreement",
            ext.reproduce_kset,
        ),
        Experiment(
            "E18", "ablation",
            "solvability-engine stages: AC + components vs plain search",
            perf.reproduce_solver_ablation,
        ),
        Experiment(
            "E19", "scaling",
            "Fubini growth, 13^t protocol growth, memoization",
            perf.reproduce_scaling,
        ),
        Experiment(
            "E20", "extension (affine models)",
            "k-concurrency: consensus landscape + halving robustness",
            ext.reproduce_affine_concurrency,
        ),
        Experiment(
            "E21", "extension (non-iterated model)",
            "stale reads break Eq. (3); phase filtering repairs it",
            ext.reproduce_noniterated,
        ),
        Experiment(
            "E22", "cache effectiveness",
            "one-round materializations saved by the model-level memo",
            perf.reproduce_cache_effectiveness,
        ),
        Experiment(
            "E23", "robustness (chaos harness)",
            "fault campaigns: clean cells stay clean, broken fixtures "
            "caught & shrunk, illegal faults detected",
            rob.reproduce_chaos_harness,
        ),
    ]
    return {entry.identifier: entry for entry in entries}


EXPERIMENTS: dict[str, Experiment] = _build_registry()


def get_experiment(identifier: str) -> Experiment:
    """Look up an experiment by id (case-insensitive)."""
    key = identifier.upper()
    try:
        return EXPERIMENTS[key]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ReproError(
            f"unknown experiment {identifier!r}; known ids: {known}"
        ) from None


def run_experiment(identifier: str) -> Any:
    """Run an experiment by id and return its data.

    Any exception escaping the reproduction function is wrapped into an
    :class:`~repro.errors.ExperimentError` carrying the experiment id, so
    callers (the CLI, the benchmark harness) get a one-line diagnosable
    cause instead of a context-free traceback.
    """
    experiment = get_experiment(identifier)
    # The root span of a traced experiment run: everything the
    # reproduction touches (closure, solvability, protocol builds) nests
    # under it, so `repro trace summarize` attributes the whole run.
    with span(
        f"experiment/{experiment.identifier}",
        artifact=experiment.artifact,
    ):
        try:
            return experiment.run()
        except ExperimentError:
            raise
        except Exception as exc:
            raise ExperimentError(experiment.identifier, exc) from exc
