"""Experiments E18, E19, E22 — ablation, scaling, and cache effectiveness."""

from __future__ import annotations

import time
from fractions import Fraction

from repro.core import ClosureComputer
from repro.core.solvability import build_solvability_problem
from repro.errors import SolvabilityError
from repro.instrumentation import counters_delta, counters_snapshot
from repro.models import ImmediateSnapshotModel, ProtocolOperator
from repro.tasks import approximate_agreement_task
from repro.topology import Simplex

__all__ = [
    "reproduce_solver_ablation",
    "reproduce_scaling",
    "reproduce_cache_effectiveness",
    "SOLVER_NODE_BUDGET",
]

F = Fraction

#: Node budget after which the ablation declares a configuration thrashing.
SOLVER_NODE_BUDGET = 2_000_000


def _refutation_problem():
    """The canonical refutation: 1-round ε = 1/4 AA for n = 2, m = 4."""
    iis = ImmediateSnapshotModel()
    task = approximate_agreement_task([1, 2], F(1, 4), 4)
    operator = ProtocolOperator(iis)
    return build_solvability_problem(
        list(task.input_complex),
        task.delta,
        lambda sigma: operator.of_simplex(sigma, 1),
        rounds=1,
    )


def _measure_solver(use_propagation: bool, use_components: bool):
    problem = _refutation_problem()
    start = time.perf_counter()
    try:
        result = problem.solve(
            use_propagation=use_propagation,
            use_components=use_components,
            node_limit=SOLVER_NODE_BUDGET,
        )
        exceeded = False
    except SolvabilityError:
        result = "budget-exceeded"
        exceeded = True
    return {
        "refuted": result is None,
        "exceeded": exceeded,
        "nodes": problem.last_search_nodes,
        "seconds": time.perf_counter() - start,
    }


def reproduce_solver_ablation() -> dict[str, dict[str, object]]:
    """E18 — search-node counts per solver configuration."""
    return {
        "full": _measure_solver(True, True),
        "components_only": _measure_solver(False, True),
        "propagation_only": _measure_solver(True, False),
        "none": _measure_solver(False, False),
    }


def reproduce_scaling() -> dict[str, object]:
    """E19 — Fubini growth, per-round protocol growth, cache effectiveness."""
    iis = ImmediateSnapshotModel()
    subdivision_counts = {}
    for n in (1, 2, 3, 4):
        sigma = Simplex((i, i) for i in range(1, n + 1))
        subdivision_counts[n] = len(iis.one_round_complex(sigma).facets)

    operator = ProtocolOperator(iis)
    triangle = Simplex([(1, "a"), (2, "b"), (3, "c")])
    round_counts = {
        t: len(operator.of_simplex(triangle, t).facets) for t in (0, 1, 2)
    }

    task = approximate_agreement_task([1, 2], F(1, 4), 4)
    computer = ClosureComputer(task, iis)
    queries = 0
    for sigma in task.input_complex.simplices_of_dim(1):
        queries += len(computer.legal_outputs(sigma))
    cache_entries = len(computer._membership_cache)

    return {
        "subdivision": subdivision_counts,
        "rounds": round_counts,
        "queries": queries,
        "cache_entries": cache_entries,
    }


#: Sweep iterations of the cache-effectiveness workload.  Mirrors the
#: closure machinery, where each (σ, τ, β) decision historically built its
#: own :class:`ProtocolOperator` over the shared model.
CACHE_SWEEP_OPERATORS = 5


def reproduce_cache_effectiveness() -> dict[str, object]:
    """E22 — one-round materializations saved on the 3-process substrate.

    The workload is the hot pattern of every closure/solvability sweep:
    independent :class:`ProtocolOperator` instances (one per decision, as
    the closure computer used to construct them) each requesting the
    2-round protocol complex of every face of a 3-process input simplex.
    Without the model-level memo every request re-enumerates the ordered
    partitions of Appendix A.3.4, so the pre-caching baseline performs one
    materialization per request; the measured ratio ``requests /
    materializations`` is exactly the saving factor.
    """
    iis = ImmediateSnapshotModel()
    triangle = Simplex([(1, "a"), (2, "b"), (3, "c")])
    faces = list(triangle.faces())

    before = counters_snapshot()
    start = time.perf_counter()
    protocol = None
    for _ in range(CACHE_SWEEP_OPERATORS):
        operator = ProtocolOperator(iis)
        for face in faces:
            result = operator.of_simplex(face, 2)
            if face is faces[0]:
                protocol = result
    elapsed = time.perf_counter() - start
    stats = counters_delta(before, counters_snapshot())

    hits, misses = stats.get(
        "one-round-complex[iterated-immediate-snapshot]", (0, 0)
    )
    requests = hits + misses
    op_hits, op_misses = stats.get("protocol-operator.of-simplex", (0, 0))
    assert protocol is not None
    return {
        "requests": requests,
        "materializations": misses,
        "saving_factor": requests / misses if misses else float("inf"),
        "operator_requests": op_hits + op_misses,
        "operator_materializations": op_misses,
        "facets": len(protocol.facets),
        "f_vector": protocol.f_vector(),
        "seconds": elapsed,
        "stats": stats,
    }
