"""Experiments E7–E10, E12, E14 — approximate agreement closures and bounds."""

from __future__ import annotations

from fractions import Fraction

from repro.algorithms import HalvingAA, TwoProcessThirdsAA
from repro.core import (
    ClosureComputer,
    aa_lower_bound_iis,
    aa_lower_bound_iis_bc,
    aa_lower_bound_iis_tas,
    is_solvable,
    iterated_closure_lower_bound,
)
from repro.models import ImmediateSnapshotModel
from repro.objects import (
    AugmentedModel,
    BinaryConsensusBox,
    TestAndSetBox,
    beta_input_function,
    majority_side,
)
from repro.tasks import (
    approximate_agreement_task,
    liberal_approximate_agreement_task,
)
from repro.tasks.inputs import input_simplex

__all__ = [
    "reproduce_claim1",
    "reproduce_claim2",
    "reproduce_claim3",
    "reproduce_corollary3",
    "reproduce_theorem3",
    "reproduce_theorem4",
]

F = Fraction

#: The β function used for Theorem 4's experiment (5 declared processes).
THEOREM4_BETA = {1: 0, 2: 1, 3: 0, 4: 0, 5: 1}


def reproduce_claim1() -> dict[str, bool]:
    """E14 — Claim 1: zero-round (un)solvability landscape of ε-AA."""
    iis = ImmediateSnapshotModel()
    return {
        "strict_2": is_solvable(
            approximate_agreement_task([1, 2], F(1, 2), 2), iis, 0
        ),
        "strict_3": is_solvable(
            approximate_agreement_task([1, 2, 3], F(1, 2), 2), iis, 0
        ),
        "liberal_3": is_solvable(
            liberal_approximate_agreement_task([1, 2, 3], F(1, 2), 2), iis, 0
        ),
        "liberal_2": is_solvable(
            liberal_approximate_agreement_task([1, 2], F(1, 2), 2), iis, 0
        ),
        "eps_1": is_solvable(
            approximate_agreement_task([1, 2], 1, 1), iis, 0
        ),
    }


def reproduce_claim2(m: int = 6, eps: Fraction = F(1, 6)) -> dict[str, object]:
    """E7 — Claim 2: CL_IIS(ε-AA) = (3ε)-AA for two processes,
    exhaustively over the grid."""
    iis = ImmediateSnapshotModel()
    task = approximate_agreement_task([1, 2], eps, m)
    target = approximate_agreement_task([1, 2], 3 * eps, m)
    computer = ClosureComputer(task, iis)
    checked = mismatches = 0
    for sigma in task.input_complex:
        checked += 1
        if (
            computer.delta_prime(sigma).simplices
            != target.delta(sigma).simplices
        ):
            mismatches += 1
    return {"checked": checked, "mismatches": mismatches, "eps": eps, "m": m}


def reproduce_claim3(m: int = 4, eps: Fraction = F(1, 4)) -> dict[str, object]:
    """E8 — Claim 3: CL_IIS(liberal ε-AA) = liberal (2ε)-AA for n = 3,
    over every 2-dimensional input simplex plus representative faces."""
    iis = ImmediateSnapshotModel()
    task = liberal_approximate_agreement_task([1, 2, 3], eps, m)
    target = liberal_approximate_agreement_task([1, 2, 3], 2 * eps, m)
    computer = ClosureComputer(task, iis)
    checked = mismatches = 0
    for sigma in task.input_complex.simplices_of_dim(2):
        checked += 1
        if (
            computer.delta_prime(sigma).simplices
            != target.delta(sigma).simplices
        ):
            mismatches += 1
    for sigma in [
        input_simplex({1: F(0), 2: F(1)}),
        input_simplex({2: F(1, 4), 3: F(1, 2)}),
        input_simplex({1: F(1, 2)}),
    ]:
        checked += 1
        if (
            computer.delta_prime(sigma).simplices
            != target.delta(sigma).simplices
        ):
            mismatches += 1
    return {"checked": checked, "mismatches": mismatches, "eps": eps, "m": m}


def reproduce_corollary3() -> dict[str, object]:
    """E9 — Corollary 3: lower bounds, generic iteration, and tightness."""
    iis = ImmediateSnapshotModel()
    table: list[tuple[int, Fraction, int, int, int]] = []
    for n in (2, 3):
        for k in (1, 2, 3, 4):
            eps = F(1, 2**k) if n >= 3 else F(1, 3**k)
            lower = aa_lower_bound_iis(n, eps)
            algorithm = TwoProcessThirdsAA(eps) if n == 2 else HalvingAA(eps)
            table.append((n, eps, k, lower, algorithm.rounds))
    generic = iterated_closure_lower_bound(
        approximate_agreement_task([1, 2], F(1, 4), 4), iis, max_rounds=4
    )
    binding = not is_solvable(
        approximate_agreement_task([1, 2], F(1, 4), 4), iis, 1
    )
    return {"table": table, "generic_quarter": generic, "binding": binding}


def reproduce_theorem3(
    m: int = 4, eps: Fraction = F(1, 4)
) -> dict[str, object]:
    """E10 — Theorem 3 / Claim 4: the IIS+test&set closure still doubles ε
    and the round bounds coincide with plain IIS for n ≥ 3."""
    model = AugmentedModel(TestAndSetBox())
    task = liberal_approximate_agreement_task([1, 2, 3], eps, m)
    target = liberal_approximate_agreement_task([1, 2, 3], 2 * eps, m)
    computer = ClosureComputer(task, model)

    checked = mismatches = 0
    seen_windows = set()
    for sigma in task.input_complex.simplices_of_dim(2):
        values = sorted(v.value for v in sigma.vertices)
        window = (values[0], values[-1])
        if window in seen_windows:
            continue
        seen_windows.add(window)
        checked += 1
        if (
            computer.delta_prime(sigma).simplices
            != target.delta(sigma).simplices
        ):
            mismatches += 1

    bounds = [
        (n, e, aa_lower_bound_iis(n, e), aa_lower_bound_iis_tas(n, e))
        for n in (3, 5)
        for e in (F(1, 2), F(1, 4), F(1, 16))
    ]
    n2 = (
        aa_lower_bound_iis(2, F(1, 16)),
        aa_lower_bound_iis_tas(2, F(1, 16)),
        is_solvable(
            approximate_agreement_task([1, 2], F(1, 4), 4), model, 1
        ),
    )
    return {
        "checked": checked,
        "mismatches": mismatches,
        "bounds": bounds,
        "n2": n2,
    }


def reproduce_theorem4(
    m: int = 4, eps: Fraction = F(1, 4)
) -> dict[str, object]:
    """E12 — Theorem 4 / Claims 5–6: the β-closure collapses on the
    majority call side, escapes on mixed sides, and the closed form holds."""
    from repro.core import ceil_log

    beta = dict(THEOREM4_BETA)
    model = AugmentedModel(BinaryConsensusBox(), beta_input_function(beta))
    side = sorted(majority_side(beta, beta))
    task = liberal_approximate_agreement_task(side, eps, m)
    target = liberal_approximate_agreement_task(side, 2 * eps, m)
    computer = ClosureComputer(task, model)

    checked = mismatches = 0
    seen = set()
    for sigma in task.input_complex.simplices_of_dim(2):
        values = sorted(v.value for v in sigma.vertices)
        window = (values[0], values[-1])
        if window in seen:
            continue
        seen.add(window)
        checked += 1
        if (
            computer.delta_prime(sigma).simplices
            != target.delta(sigma).simplices
        ):
            mismatches += 1

    mixed = [1, 2, 5]
    mixed_task = liberal_approximate_agreement_task(mixed, eps, m)
    mixed_target = liberal_approximate_agreement_task(mixed, 2 * eps, m)
    mixed_computer = ClosureComputer(mixed_task, model)
    sigma = input_simplex({1: F(0), 2: F(1, 2), 5: F(1)})
    mixed_escapes = (
        mixed_computer.delta_prime(sigma).simplices
        > mixed_target.delta(sigma).simplices
    )

    bounds = [
        (n, e, aa_lower_bound_iis_bc(n, e))
        for n in (3, 8, 16, 64)
        for e in (F(1, 8), F(1, 64))
    ]
    expected = [
        (n, e, min(ceil_log(2, 1 / e), ceil_log(2, n) - 1))
        for n in (3, 8, 16, 64)
        for e in (F(1, 8), F(1, 64))
    ]
    return {
        "majority_side": side,
        "checked": checked,
        "mismatches": mismatches,
        "mixed_escapes": mixed_escapes,
        "bounds": bounds,
        "expected_bounds": expected,
    }
