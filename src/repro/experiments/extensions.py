"""Experiments E17, E20, E21 — beyond the paper: k-set agreement,
affine concurrency models, and the non-iterated setting."""

from __future__ import annotations

from fractions import Fraction

from repro.algorithms import HalvingAA
from repro.core import (
    ClosureComputer,
    impossibility_from_fixed_point,
    is_solvable,
)
from repro.models import ImmediateSnapshotModel, k_concurrency_model
from repro.runtime import IteratedExecutor, RandomMatrixAdversary
from repro.tasks import (
    binary_consensus_task,
    relaxed_consensus_task,
    set_agreement_task,
)
from repro.tasks.inputs import input_simplex

__all__ = [
    "reproduce_kset",
    "reproduce_affine_concurrency",
    "reproduce_noniterated",
]

F = Fraction


def reproduce_kset() -> dict[str, object]:
    """E17 — the closure engine on 2-set agreement among three processes.

    The closure strictly extends Δ (not a fixed point: the paper's remark
    that its impossibility needs connectivity-type arguments), while 0- and
    1-round unsolvability are certified by search.
    """
    iis = ImmediateSnapshotModel()
    task = set_agreement_task([1, 2, 3], ["a", "b", "c"], 2)
    computer = ClosureComputer(task, iis)
    rainbow = input_simplex({1: "a", 2: "b", 3: "c"})
    simplices = [rainbow] + list(rainbow.proper_faces())

    closure = computer.delta_prime(rainbow)
    delta = task.delta(rainbow)
    return {
        "zero_round": is_solvable(task, iis, 0, input_simplices=simplices),
        "one_round": is_solvable(task, iis, 1, input_simplices=simplices),
        "closure_grows": closure.simplices > delta.simplices,
        "closure_facets": len(closure.facets),
        "delta_facets": len(delta.facets),
    }


def reproduce_affine_concurrency() -> dict[str, object]:
    """E20 — concurrency as a resource in affine sub-models of IIS.

    * k = 1, n = 2: consensus becomes 1-round solvable;
    * k = 1, n = 3: still impossible — the *relaxed* task is a fixed point
      of the sequential model (a new Lemma-1 application);
    * k = 2, n = 3: plain consensus is a fixed point again;
    * the Eq. (3) halving map is empirically robust under snapshot and
      collect schedules at n = 3.
    """
    iis = ImmediateSnapshotModel()
    seq = k_concurrency_model(iis, 1)
    two = k_concurrency_model(iis, 2)

    sequential_2proc = is_solvable(binary_consensus_task([1, 2]), seq, 1)
    sequential_3proc_1round = is_solvable(
        binary_consensus_task([1, 2, 3]), seq, 1
    )
    relaxed_report = impossibility_from_fixed_point(
        relaxed_consensus_task([1, 2, 3]), seq
    )
    two_report = impossibility_from_fixed_point(
        binary_consensus_task([1, 2, 3]), two
    )

    eps = F(1, 4)
    algorithm = HalvingAA(eps)
    inputs = {1: F(0), 2: F(1, 2), 3: F(1)}
    robustness = {}
    for kind in ("snapshot", "collect"):
        executor = IteratedExecutor()
        worst = F(0)
        for seed in range(150):
            result = executor.run(
                algorithm, inputs, RandomMatrixAdversary(kind, seed=seed)
            )
            values = list(result.decisions.values())
            worst = max(worst, max(values) - min(values))
        robustness[kind] = worst

    return {
        "sequential_2proc": sequential_2proc,
        "sequential_3proc_1round": sequential_3proc_1round,
        "relaxed_fixed_point": relaxed_report.fixed_point,
        "relaxed_unsolvable": relaxed_report.unsolvable,
        "two_concurrency_fixed_point": two_report.fixed_point,
        "halving_worst": robustness,
        "eps": eps,
    }


def reproduce_noniterated(samples: int = 800) -> dict[str, object]:
    """E21 — the non-iterated model (the conclusion's open question).

    Empirics for why iterated vs non-iterated round complexity is subtle:

    * the round-indexed halving map of Eq. (3) — correct in every iterated
      model down to collect — violates ε on a sizable fraction of random
      non-iterated interleavings, and even under phase barriers (stale
      previous-phase register values substitute for the iterated model's
      "nothing written yet");
    * filtering collected values by phase (``NonIteratedHalvingAA``)
      empirically restores ε-agreement on every interleaving tried.
    """
    from repro.algorithms import NonIteratedHalvingAA
    from repro.runtime import NonIteratedExecutor

    eps = F(1, 4)
    inputs = {1: F(0), 2: F(1, 2), 3: F(1)}

    def sweep(algorithm, synchronized):
        violations = 0
        worst = F(0)
        max_skew = 0
        for seed in range(samples):
            executor = NonIteratedExecutor(
                seed=seed, synchronized=synchronized
            )
            result = executor.run(algorithm, inputs)
            values = list(result.decisions.values())
            spread = max(values) - min(values)
            worst = max(worst, spread)
            max_skew = max(max_skew, result.max_phase_skew())
            if spread > eps:
                violations += 1
        return {
            "violations": violations,
            "worst": worst,
            "max_skew": max_skew,
        }

    from repro.algorithms import HalvingAA

    return {
        "eps": eps,
        "samples": samples,
        "plain_async": sweep(HalvingAA(eps), synchronized=False),
        "plain_sync": sweep(HalvingAA(eps), synchronized=True),
        "filtered_async": sweep(NonIteratedHalvingAA(eps), synchronized=False),
        "filtered_sync": sweep(NonIteratedHalvingAA(eps), synchronized=True),
    }
