"""Experiments E2, E3, E6 — closure machinery and consensus impossibility."""

from __future__ import annotations

from fractions import Fraction

from repro.analysis import figure6_simplices
from repro.core import (
    ClosureComputer,
    impossibility_from_fixed_point,
    is_solvable,
    local_task,
)
from repro.core.solvability import build_solvability_problem
from repro.models import ImmediateSnapshotModel, ProtocolOperator
from repro.objects import AugmentedModel, TestAndSetBox
from repro.tasks import (
    approximate_agreement_task,
    binary_consensus_task,
    relaxed_consensus_task,
)
from repro.tasks.inputs import input_simplex
from repro.topology import Simplex

__all__ = [
    "reproduce_closure_machinery",
    "reproduce_corollary1",
    "reproduce_corollary2",
]


def reproduce_closure_machinery() -> dict[str, object]:
    """E2 — the worked closure instance of Figs. 1–3 on ε-AA.

    Builds a local task for a non-Δ output set, witnesses its one-round
    solvability, and contrasts closure membership for a set too spread even
    for the closure.
    """
    F = Fraction
    iis = ImmediateSnapshotModel()
    task = approximate_agreement_task([1, 2, 3], F(1, 4), 4)
    sigma = input_simplex({1: F(0), 2: F(1, 2), 3: F(1)})
    tau_in = input_simplex({1: F(1, 4), 2: F(1, 2), 3: F(3, 4)})
    tau_out = input_simplex({1: F(0), 2: F(1, 2), 3: F(1)})

    operator = ProtocolOperator(iis)
    the_local = local_task(task, sigma, tau_in)
    problem = build_solvability_problem(
        list(the_local.input_complex),
        the_local.delta,
        lambda face: operator.of_simplex(face, 1),
        rounds=1,
    )
    witness = problem.solve()

    computer = ClosureComputer(task, iis)
    return {
        "tau_in_delta": tau_in in task.delta(sigma),
        "witness_found": witness is not None,
        "tau_in_closure": computer.contains(sigma, tau_in),
        "tau_out_closure": computer.contains(sigma, tau_out),
        "closure_size": len(computer.legal_outputs(sigma)),
        "delta_size": len(task.delta(sigma).facets),
    }


def reproduce_corollary1() -> dict[int, dict[str, bool]]:
    """E3 — Corollary 1: consensus is a fixed point of wait-free IIS,
    hence unsolvable (Lemma 1); cross-checked by brute force at t = 1."""
    iis = ImmediateSnapshotModel()
    outcomes: dict[int, dict[str, bool]] = {}
    for n in (2, 3):
        task = binary_consensus_task(list(range(1, n + 1)))
        report = impossibility_from_fixed_point(task, iis)
        outcomes[n] = {
            "fixed_point": report.fixed_point,
            "zero_round": report.zero_round_solvable,
            "unsolvable": report.unsolvable,
            "brute_force_1_round": is_solvable(task, iis, 1),
        }
    return outcomes


def reproduce_corollary2() -> dict[str, bool]:
    """E6 — Corollary 2 + Fig. 6: consensus with test&set for n > 2.

    The relaxed task is a fixed point of IIS+test&set (so unsolvable); the
    ρ-simplices of Fig. 6 exist; the two-process contrast is solvable.
    """
    model = AugmentedModel(TestAndSetBox())
    relaxed = relaxed_consensus_task([1, 2, 3])
    report = impossibility_from_fixed_point(relaxed, model)

    tau_values = {1: 0, 2: 1, 3: 1}
    rho_ijk, rho_jik = figure6_simplices(tau_values, 1, 2, 3)
    complex_ = model.one_round_complex(Simplex(tau_values.items()))

    return {
        "fixed_point": report.fixed_point,
        "zero_round": report.zero_round_solvable,
        "unsolvable": report.unsolvable,
        "rho_ijk_exists": rho_ijk in complex_,
        "rho_jik_exists": rho_jik in complex_,
        "two_proc_solvable": is_solvable(
            binary_consensus_task([1, 2]), model, 1
        ),
        "three_proc_one_round": is_solvable(
            binary_consensus_task([1, 2, 3]), model, 1
        ),
    }
