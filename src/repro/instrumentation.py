"""Compatibility shim over :mod:`repro.telemetry.metrics` (PR-1 API).

The original process-wide cache/construction counters now live in the
:class:`~repro.telemetry.metrics.MetricsRegistry` of the telemetry
subsystem, where the tracer snapshots them to attach per-span metric
deltas.  This module keeps the PR-1 call sites and reports working
unchanged:

* :func:`counter` returns the registry-resident
  :class:`~repro.telemetry.metrics.CacheCounter` under that name —
  hit/miss recording is still a single attribute increment, so the
  hot-path guidance (fetch once at import, keep a reference; lint rule
  RPR003) is unchanged;
* the snapshot/delta helpers operate on the same
  ``{name: (hits, misses)}`` shape as before, so
  :mod:`repro.analysis.cache_report` and the perf harnesses keep
  rendering identical tables.

New code should prefer :func:`repro.telemetry.default_registry`, which
also offers counters, gauges, and histograms.
"""

from __future__ import annotations

from repro.telemetry.metrics import CacheCounter, default_registry

__all__ = [
    "CacheCounter",
    "counter",
    "all_counters",
    "reset_counters",
    "counters_snapshot",
    "counters_delta",
]


def counter(name: str) -> CacheCounter:
    """The process-wide cache counter registered under ``name``."""
    return default_registry().cache(name)


def all_counters() -> list[CacheCounter]:
    """Every registered cache counter, sorted by name."""
    return default_registry().caches()


def reset_counters() -> None:
    """Zero every registered cache counter."""
    default_registry().reset_caches()


def counters_snapshot() -> dict[str, tuple[int, int]]:
    """An immutable ``{name: (hits, misses)}`` view of the registry."""
    return default_registry().cache_snapshot()


def counters_delta(
    before: dict[str, tuple[int, int]],
    after: dict[str, tuple[int, int]],
) -> dict[str, tuple[int, int]]:
    """Per-counter ``(hits, misses)`` accumulated between two snapshots.

    Counters absent from ``before`` are taken as starting from zero;
    counters unchanged between the snapshots are omitted.
    """
    changed: dict[str, tuple[int, int]] = {}
    for name, (hits, misses) in after.items():
        base_hits, base_misses = before.get(name, (0, 0))
        delta = (hits - base_hits, misses - base_misses)
        if delta != (0, 0):
            changed[name] = delta
    return changed
