"""Process-wide cache and construction counters for the hot paths.

The combinatorial substrate (one-round complexes, view maps, iterated
protocol complexes, closure membership) is memoized at several layers; this
module provides the shared, dependency-free counters those layers report
into, so benchmarks and the :mod:`repro.analysis` cache report can verify
that the memoization actually fires.

Counters are process-global and keyed by name, so independent instances of
the same model (or operator) aggregate into one line — exactly what a sweep
that constructs many short-lived operators needs.  The recording methods are
single attribute increments; fetch the counter once at import (or first
use) and keep a reference on the hot path.

For a memoizing layer, every ``miss`` is one materialization of the cached
object, so ``constructions`` is an alias of ``misses``; layers that build
unconditionally (no cache in front) record via :meth:`CacheCounter.built`
and report zero hits.
"""

from __future__ import annotations


__all__ = [
    "CacheCounter",
    "counter",
    "all_counters",
    "reset_counters",
    "counters_snapshot",
    "counters_delta",
]


class CacheCounter:
    """Hit/miss tallies for one named cache (or construction site)."""

    __slots__ = ("name", "hits", "misses")

    def __init__(self, name: str) -> None:
        self.name = name
        self.hits = 0
        self.misses = 0

    def hit(self) -> None:
        """Record a lookup served from the cache."""
        self.hits += 1

    def miss(self) -> None:
        """Record a lookup that had to materialize the object."""
        self.misses += 1

    #: Construction sites without a cache record every build as a miss.
    built = miss

    @property
    def calls(self) -> int:
        """Total lookups (hits + misses)."""
        return self.hits + self.misses

    @property
    def constructions(self) -> int:
        """Materializations — for a memoized layer, exactly the misses."""
        return self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        calls = self.calls
        return self.hits / calls if calls else 0.0

    def reset(self) -> None:
        """Zero the tallies (the counter stays registered)."""
        self.hits = 0
        self.misses = 0

    def __repr__(self) -> str:
        return (
            f"CacheCounter({self.name!r}, hits={self.hits}, "
            f"misses={self.misses})"
        )


_REGISTRY: dict[str, CacheCounter] = {}


def counter(name: str) -> CacheCounter:
    """The process-wide counter registered under ``name`` (created lazily)."""
    found = _REGISTRY.get(name)
    if found is None:
        found = _REGISTRY[name] = CacheCounter(name)
    return found


def all_counters() -> list[CacheCounter]:
    """Every registered counter, sorted by name."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def reset_counters() -> None:
    """Zero every registered counter."""
    for entry in _REGISTRY.values():
        entry.reset()


def counters_snapshot() -> dict[str, tuple[int, int]]:
    """An immutable ``{name: (hits, misses)}`` view of the registry."""
    return {
        name: (entry.hits, entry.misses)
        for name, entry in _REGISTRY.items()
    }


def counters_delta(
    before: dict[str, tuple[int, int]],
    after: dict[str, tuple[int, int]],
) -> dict[str, tuple[int, int]]:
    """Per-counter ``(hits, misses)`` accumulated between two snapshots.

    Counters absent from ``before`` are taken as starting from zero;
    counters unchanged between the snapshots are omitted.
    """
    changed: dict[str, tuple[int, int]] = {}
    for name, (hits, misses) in after.items():
        base_hits, base_misses = before.get(name, (0, 0))
        delta = (hits - base_hits, misses - base_misses)
        if delta != (0, 0):
            changed[name] = delta
    return changed
