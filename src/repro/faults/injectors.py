"""Composable, seed-deterministic fault injectors and replayable traces.

An injector plugs into the three hooks of
:class:`~repro.runtime.iterated.IteratedExecutor`:

* ``mid_round_crashes(round_index, schedule)`` — kill processes *between*
  their write and their snapshot (the write stays visible to survivors,
  the victim never sees a view);
* ``register_array(round_index, ids)`` — substitute the round's register
  array, optionally carrying a write or snapshot filter;
* ``choose_assignment(round_index, schedule, options, chosen)`` — override
  the adversary's black-box output assignment.

Injectors are split by *legality*.  Legal injectors (``legal = True``)
stay inside the model — crashes and adversarial-but-admissible box choices
are behaviors a wait-free algorithm must survive, so the oracles still
apply.  Illegal injectors break the model itself (lost writes, snapshots
inconsistent with the schedule, non-admissible assignments); correct
executor behavior is to *detect* them and raise
:class:`~repro.errors.FaultInjectionError`.  The chaos campaign uses both
kinds: legal ones to hunt property violations, illegal ones to prove the
safety nets fire.

Every random decision derives from a ``random.Random(seed)``, so a given
``(injector seed, adversary seed, inputs)`` triple replays identically;
the realized decisions are additionally recoverable from the execution's
:class:`~repro.runtime.iterated.RoundRecord` list as a :class:`FaultTrace`
that :class:`ReplayAdversary`/:class:`ReplayInjector` re-execute exactly —
the substrate of counterexample shrinking (:mod:`repro.faults.shrink`).
"""

from __future__ import annotations

import json
import random
from collections.abc import Hashable, Iterable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import RuntimeModelError
from repro.models.schedules import OneRoundSchedule, schedule_from_blocks
from repro.runtime.adversary import Adversary
from repro.runtime.iterated import ExecutionResult
from repro.runtime.registers import RegisterArray

__all__ = [
    "FaultInjector",
    "CompositeInjector",
    "MidRoundCrashInjector",
    "CrashStormInjector",
    "AdversarialBoxInjector",
    "LostWriteInjector",
    "StaleSnapshotInjector",
    "NonAdmissibleBoxInjector",
    "FaultTrace",
    "TraceRound",
    "ReplayAdversary",
    "ReplayInjector",
]

Assignment = Mapping[int, object]

#: Sentinel output value no black box ever produces; used by the
#: non-admissible injector so corruption can never collide with a real
#: admissible assignment.
_BOGUS_OUTPUT = "⊥-injected"


class FaultInjector:
    """Base injector: the identity on every hook (injects nothing).

    Subclasses override :meth:`mid_round_crashes`,
    :meth:`write_filter`/:meth:`snapshot_filter` (consumed by the default
    :meth:`register_array`), or :meth:`choose_assignment`.
    """

    #: ``False`` for injectors producing model-breaking faults that the
    #: executor must detect (see the module docstring).
    legal: bool = True

    def mid_round_crashes(
        self, round_index: int, schedule: OneRoundSchedule
    ) -> frozenset[int]:
        """Processes to kill between their write and their snapshot."""
        return frozenset()

    def write_filter(
        self, round_index: int
    ) -> Optional[Callable[[int, Hashable], bool]]:
        """Per-round write filter for the register array (None: faithful)."""
        return None

    def snapshot_filter(
        self, round_index: int
    ) -> Optional[Callable[[dict], dict]]:
        """Per-round snapshot filter (None: faithful)."""
        return None

    def register_array(
        self, round_index: int, ids: tuple[int, ...]
    ) -> RegisterArray:
        """The round's register array, carrying this injector's filters."""
        return RegisterArray(
            ids,
            write_filter=self.write_filter(round_index),
            snapshot_filter=self.snapshot_filter(round_index),
        )

    def choose_assignment(
        self,
        round_index: int,
        schedule: OneRoundSchedule,
        options: Sequence[Assignment],
        chosen: Assignment,
    ) -> Assignment:
        """Override the adversary's box assignment (default: keep it)."""
        return chosen


class CompositeInjector(FaultInjector):
    """Combine several injectors into one.

    Mid-round crash sets are unioned; write filters conjoin (any member
    dropping a write drops it); snapshot filters compose in member order;
    box overrides fold left to right.  The composite is legal only when
    every member is.
    """

    def __init__(self, *injectors: FaultInjector) -> None:
        self._injectors = tuple(injectors)
        self.legal = all(injector.legal for injector in self._injectors)

    def mid_round_crashes(
        self, round_index: int, schedule: OneRoundSchedule
    ) -> frozenset[int]:
        doomed: frozenset[int] = frozenset()
        for injector in self._injectors:
            doomed |= injector.mid_round_crashes(round_index, schedule)
        return doomed

    def write_filter(
        self, round_index: int
    ) -> Optional[Callable[[int, Hashable], bool]]:
        filters = [
            found
            for injector in self._injectors
            if (found := injector.write_filter(round_index)) is not None
        ]
        if not filters:
            return None

        def conjoined(process: int, value: Hashable) -> bool:
            return all(accept(process, value) for accept in filters)

        return conjoined

    def snapshot_filter(
        self, round_index: int
    ) -> Optional[Callable[[dict], dict]]:
        filters = [
            found
            for injector in self._injectors
            if (found := injector.snapshot_filter(round_index)) is not None
        ]
        if not filters:
            return None

        def composed(content: dict) -> dict:
            for transform in filters:
                content = transform(content)
            return content

        return composed

    def choose_assignment(
        self,
        round_index: int,
        schedule: OneRoundSchedule,
        options: Sequence[Assignment],
        chosen: Assignment,
    ) -> Assignment:
        for injector in self._injectors:
            chosen = injector.choose_assignment(
                round_index, schedule, options, chosen
            )
        return chosen


class MidRoundCrashInjector(FaultInjector):
    """Seed-deterministic mid-round crashes under a total budget.

    Each round, every participant independently dies between its write and
    its snapshot with probability ``probability``, subject to two caps: at
    most ``budget`` crashes over the whole execution, and at least one
    participant always survives the round.
    """

    def __init__(
        self, seed: int, probability: float = 0.1, budget: int = 1
    ) -> None:
        if not 0.0 <= probability <= 1.0:
            raise RuntimeModelError(
                f"crash probability {probability} outside [0, 1]"
            )
        if budget < 0:
            raise RuntimeModelError(f"crash budget {budget} is negative")
        self._rng = random.Random(seed)
        self._probability = probability
        self._budget = budget
        self._spent = 0

    def mid_round_crashes(
        self, round_index: int, schedule: OneRoundSchedule
    ) -> frozenset[int]:
        participants = sorted(schedule.participants)
        doomed: set[int] = set()
        for process in participants:
            if self._spent + len(doomed) >= self._budget:
                break
            if len(participants) - len(doomed) <= 1:
                break
            if self._rng.random() < self._probability:
                doomed.add(process)
        self._spent += len(doomed)
        return frozenset(doomed)


class CrashStormInjector(FaultInjector):
    """A crash-heavy adversary: kill as many as allowed at chosen rounds.

    At each round in ``storm_rounds`` it crashes every participant but one
    (the survivor with the smallest ID), capped by the remaining budget —
    the worst legal crash pattern, exercising executions where up to
    ``n − 1`` processes die at once.
    """

    def __init__(
        self, storm_rounds: Iterable[int], budget: Optional[int] = None
    ) -> None:
        self._storm_rounds = frozenset(storm_rounds)
        self._budget = budget
        self._spent = 0

    def mid_round_crashes(
        self, round_index: int, schedule: OneRoundSchedule
    ) -> frozenset[int]:
        if round_index not in self._storm_rounds:
            return frozenset()
        victims = sorted(schedule.participants)[1:]
        if self._budget is not None:
            victims = victims[: max(0, self._budget - self._spent)]
        self._spent += len(victims)
        return frozenset(victims)


class AdversarialBoxInjector(FaultInjector):
    """Replace the adversary's box choice by a seeded random *admissible* one.

    Stays legal — the realized assignment is always one of the box's own
    options — but decorrelates the box behavior from the schedule
    adversary, covering combinations a single RNG stream would miss.
    """

    def __init__(self, seed: int) -> None:
        self._rng = random.Random(seed)

    def choose_assignment(
        self,
        round_index: int,
        schedule: OneRoundSchedule,
        options: Sequence[Assignment],
        chosen: Assignment,
    ) -> Assignment:
        return options[self._rng.randrange(len(options))]


class LostWriteInjector(FaultInjector):
    """Illegal: silently drop one process's write in one round.

    The executor's completeness check (every active process must appear in
    ``array.written()`` before views are taken, and the single-writer
    re-read in the non-iterated executor) detects the loss and raises
    :class:`~repro.errors.FaultInjectionError`.
    """

    legal = False

    def __init__(self, round_index: int, victim: int) -> None:
        self._round_index = round_index
        self._victim = victim

    def write_filter(
        self, round_index: int
    ) -> Optional[Callable[[int, Hashable], bool]]:
        if round_index != self._round_index:
            return None
        victim = self._victim
        return lambda process, value: process != victim


class StaleSnapshotInjector(FaultInjector):
    """Illegal: erase one process from every snapshot of one round.

    Models a snapshot primitive returning stale (pre-write) contents.  The
    resulting views disagree with the schedule's declared view sets, which
    the executor's cross-check flags as a
    :class:`~repro.errors.FaultInjectionError`.
    """

    legal = False

    def __init__(self, round_index: int, victim: int) -> None:
        self._round_index = round_index
        self._victim = victim

    def snapshot_filter(
        self, round_index: int
    ) -> Optional[Callable[[dict], dict]]:
        if round_index != self._round_index:
            return None
        victim = self._victim

        def erase(content: dict) -> dict:
            return {
                process: value
                for process, value in content.items()
                if process != victim
            }

        return erase


class NonAdmissibleBoxInjector(FaultInjector):
    """Illegal: realize a box assignment outside the admissible options.

    Corrupts one participant's output to a sentinel value no box produces;
    the executor's membership check (`options.index`) fails and raises
    :class:`~repro.errors.FaultInjectionError`.
    """

    legal = False

    def __init__(self, round_index: int) -> None:
        self._round_index = round_index

    def choose_assignment(
        self,
        round_index: int,
        schedule: OneRoundSchedule,
        options: Sequence[Assignment],
        chosen: Assignment,
    ) -> Assignment:
        if round_index != self._round_index:
            return chosen
        corrupted = dict(chosen)
        victim = min(schedule.participants)
        corrupted[victim] = _BOGUS_OUTPUT
        return corrupted


# ----------------------------------------------------------------------
# Replayable traces
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TraceRound:
    """Every adversarial decision of one round, in replayable form.

    ``blocks`` are the temporal blocks for immediate-snapshot rounds; for
    general matrix rounds they are the matrix groups and ``views`` carries
    the matching view sets.  ``crashes`` die before the round,
    ``mid_crashes`` die between their write and their snapshot, and
    ``box_choice`` indexes the realized assignment among the box's
    admissible options.
    """

    blocks: tuple[tuple[int, ...], ...]
    crashes: tuple[int, ...] = ()
    mid_crashes: tuple[int, ...] = ()
    box_choice: int = 0
    views: Optional[tuple[tuple[int, ...], ...]] = None

    def is_benign(self) -> bool:
        """True when the round is a crash-free single block, first option."""
        return (
            len(self.blocks) <= 1
            and not self.crashes
            and not self.mid_crashes
            and self.box_choice == 0
            and self.views is None
        )


@dataclass(frozen=True)
class FaultTrace:
    """A complete, replayable record of one execution's adversary.

    Holds the inputs and the per-round decisions; together with the
    deterministic algorithm under test this pins down the execution
    exactly.  :meth:`to_json`/:meth:`from_json` round-trip through a
    plain-text format (input values are stringified — the campaign cell's
    ``parse_input`` restores them), so traces can be stored in incident
    reports and replayed with ``repro chaos --replay``.
    """

    inputs: tuple[tuple[int, str], ...]
    rounds: tuple[TraceRound, ...]
    cell: str = ""

    @classmethod
    def from_execution(
        cls,
        result: ExecutionResult,
        inputs: Mapping[int, Hashable],
        cell: str = "",
    ) -> "FaultTrace":
        """Distill the replayable decisions out of an execution result."""
        rounds = []
        for record in result.trace:
            mid = frozenset(record.mid_crashed)
            crashes = tuple(
                sorted(
                    process
                    for process, when in result.crashed.items()
                    if when == record.round_index and process not in mid
                )
            )
            rounds.append(
                TraceRound(
                    blocks=record.blocks,
                    crashes=crashes,
                    mid_crashes=tuple(sorted(mid)),
                    box_choice=record.box_choice or 0,
                    views=record.schedule_views,
                )
            )
        return cls(
            inputs=tuple(
                (process, str(inputs[process])) for process in sorted(inputs)
            ),
            rounds=tuple(rounds),
            cell=cell,
        )

    def parsed_inputs(
        self, parse: Callable[[str], Hashable]
    ) -> dict[int, Hashable]:
        """The input assignment with values restored from their strings."""
        return {process: parse(text) for process, text in self.inputs}

    def to_json(self) -> str:
        """A stable JSON encoding (sorted keys, no whitespace surprises)."""
        payload = {
            "cell": self.cell,
            "inputs": [[process, text] for process, text in self.inputs],
            "rounds": [
                {
                    "blocks": [list(block) for block in entry.blocks],
                    "crashes": list(entry.crashes),
                    "mid_crashes": list(entry.mid_crashes),
                    "box_choice": entry.box_choice,
                    "views": (
                        None
                        if entry.views is None
                        else [list(view) for view in entry.views]
                    ),
                }
                for entry in self.rounds
            ],
        }
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultTrace":
        """Parse a trace produced by :meth:`to_json`."""
        payload = json.loads(text)
        return cls(
            inputs=tuple(
                (int(process), str(value))
                for process, value in payload["inputs"]
            ),
            rounds=tuple(
                TraceRound(
                    blocks=tuple(
                        tuple(block) for block in entry["blocks"]
                    ),
                    crashes=tuple(entry.get("crashes", ())),
                    mid_crashes=tuple(entry.get("mid_crashes", ())),
                    box_choice=int(entry.get("box_choice", 0)),
                    views=(
                        None
                        if entry.get("views") is None
                        else tuple(
                            tuple(view) for view in entry["views"]
                        )
                    ),
                )
                for entry in payload["rounds"]
            ),
            cell=str(payload.get("cell", "")),
        )

    def replace_round(self, index: int, entry: TraceRound) -> "FaultTrace":
        """A copy with round ``index`` (0-based) replaced."""
        rounds = list(self.rounds)
        rounds[index] = entry
        return FaultTrace(
            inputs=self.inputs, rounds=tuple(rounds), cell=self.cell
        )


class ReplayAdversary(Adversary):
    """Re-execute the schedule/crash/box decisions recorded in a trace.

    Replay is *repairing*: shrinking edits a trace (un-crashing a process,
    merging blocks), which can leave recorded schedules inconsistent with
    the processes actually alive.  Each round the recorded blocks are
    intersected with the active set and any unscheduled active processes
    are appended as a final block; rounds beyond the trace run fully
    synchronous.  Box choices are clamped into the option range.
    """

    def __init__(self, trace: FaultTrace) -> None:
        self._trace = trace

    def _round(self, round_index: int) -> Optional[TraceRound]:
        if 1 <= round_index <= len(self._trace.rounds):
            return self._trace.rounds[round_index - 1]
        return None

    def crashes(
        self, round_index: int, active: frozenset[int]
    ) -> frozenset[int]:
        entry = self._round(round_index)
        if entry is None:
            return frozenset()
        doomed = frozenset(entry.crashes) & active
        if doomed >= active:
            # Repair: never crash the whole active set.
            doomed = doomed - {min(active)}
        return doomed

    def schedule(
        self, round_index: int, active: frozenset[int]
    ) -> OneRoundSchedule:
        entry = self._round(round_index)
        if entry is None:
            return schedule_from_blocks([active])
        if entry.views is not None:
            # General matrix round: trim groups and views to the active
            # set; fall back to full sync if the trim breaks the matrix
            # conditions (e.g. after an un-crash edit).
            groups = []
            views = []
            for group, view in zip(entry.blocks, entry.views):
                alive = frozenset(group) & active
                if alive:
                    groups.append(alive)
                    views.append(frozenset(view) & active)
            scheduled = frozenset().union(*groups) if groups else frozenset()
            if scheduled == active:
                try:
                    return OneRoundSchedule(tuple(groups), tuple(views))
                except Exception:
                    pass
            return schedule_from_blocks([active])
        blocks = []
        scheduled: frozenset[int] = frozenset()
        for block in entry.blocks:
            alive = frozenset(block) & active
            if alive:
                blocks.append(alive)
                scheduled |= alive
        missing = active - scheduled
        if missing:
            blocks.append(missing)
        if not blocks:
            blocks.append(active)
        return schedule_from_blocks(blocks)

    def choose_assignment(
        self,
        round_index: int,
        schedule: OneRoundSchedule,
        options: Sequence[Assignment],
    ) -> Assignment:
        entry = self._round(round_index)
        choice = entry.box_choice if entry is not None else 0
        return options[min(choice, len(options) - 1)]


class ReplayInjector(FaultInjector):
    """Replay the mid-round crashes recorded in a trace (repairing)."""

    def __init__(self, trace: FaultTrace) -> None:
        self._trace = trace

    def mid_round_crashes(
        self, round_index: int, schedule: OneRoundSchedule
    ) -> frozenset[int]:
        if not 1 <= round_index <= len(self._trace.rounds):
            return frozenset()
        entry = self._trace.rounds[round_index - 1]
        doomed = frozenset(entry.mid_crashes) & schedule.participants
        if doomed >= schedule.participants:
            doomed = doomed - {min(schedule.participants)}
        return doomed
