"""Counterexample shrinking: delta-debug a violating trace to a minimum.

A campaign violation comes with a replayable
:class:`~repro.faults.injectors.FaultTrace`; this module minimizes it
while preserving the verdict.  Candidate simplifications, tried greedily
until none applies:

* replace a whole round by the benign one (single synchronous block, no
  crashes, first box option);
* un-crash one process (drop it from a round's pre-round or mid-round
  crash set — replay repairs later schedules to include it);
* merge two adjacent schedule blocks (one step toward full synchrony);
* reset a round's box choice to the first admissible option;
* downgrade a general matrix round to its synchronous immediate-snapshot
  counterpart.

Every simplification strictly decreases :func:`trace_weight`, so the loop
terminates; the result is *locally minimal* — no single remaining
simplification preserves the verdict.  Re-execution is deterministic
(:func:`repro.faults.campaign.replay_trace`), so the minimized trace is a
self-contained, reproducible counterexample: for the broken fixtures it
typically pins the violation on one adversarial round with one split
block, which is exactly the schedule the impossibility arguments
(Corollary 1, Claim 3) reason about.
"""

from __future__ import annotations

from collections.abc import Iterator
from fractions import Fraction
from typing import Callable, Optional

from repro.faults.campaign import replay_trace
from repro.faults.injectors import FaultTrace, TraceRound
from repro.faults.oracles import Violation
from repro.instrumentation import counter

__all__ = ["shrink_trace", "trace_weight", "simplifications"]

_REPLAYS = counter("faults.shrink.replays")

Verdict = tuple[str, Optional[str]]
ReplayFn = Callable[[FaultTrace], Verdict]


def trace_weight(trace: FaultTrace) -> int:
    """How far a trace is from the benign synchronous execution.

    Zero iff every round is a crash-free single block realizing the first
    box option.  Every simplification in :func:`simplifications` strictly
    decreases this, which bounds the shrink loop.
    """
    weight = 0
    for entry in trace.rounds:
        weight += max(0, len(entry.blocks) - 1)
        weight += len(entry.crashes)
        weight += len(entry.mid_crashes)
        weight += entry.box_choice
        if entry.views is not None:
            weight += 1
    return weight


def _benign_round() -> TraceRound:
    """The fully synchronous, crash-free, first-option round."""
    return TraceRound(blocks=())


def simplifications(trace: FaultTrace) -> Iterator[FaultTrace]:
    """Candidate one-step simplifications, coarsest first.

    Coarse candidates (whole-round replacement) come before fine-grained
    ones so the greedy loop discards entire irrelevant rounds before
    polishing the essential ones.
    """
    # 1. Replace a whole adversarial round by the benign one.
    for index, entry in enumerate(trace.rounds):
        if not entry.is_benign():
            yield trace.replace_round(index, _benign_round())
    for index, entry in enumerate(trace.rounds):
        # 2. Un-crash one process.
        for victim in entry.crashes:
            yield trace.replace_round(
                index,
                TraceRound(
                    blocks=entry.blocks,
                    crashes=tuple(
                        p for p in entry.crashes if p != victim
                    ),
                    mid_crashes=entry.mid_crashes,
                    box_choice=entry.box_choice,
                    views=entry.views,
                ),
            )
        for victim in entry.mid_crashes:
            yield trace.replace_round(
                index,
                TraceRound(
                    blocks=entry.blocks,
                    crashes=entry.crashes,
                    mid_crashes=tuple(
                        p for p in entry.mid_crashes if p != victim
                    ),
                    box_choice=entry.box_choice,
                    views=entry.views,
                ),
            )
        # 3. Downgrade a matrix round to synchronous immediate snapshot.
        if entry.views is not None:
            participants = tuple(
                sorted(p for block in entry.blocks for p in block)
            )
            yield trace.replace_round(
                index,
                TraceRound(
                    blocks=(participants,),
                    crashes=entry.crashes,
                    mid_crashes=entry.mid_crashes,
                    box_choice=entry.box_choice,
                ),
            )
        elif len(entry.blocks) > 1:
            # 4. Merge two adjacent temporal blocks.
            for cut in range(len(entry.blocks) - 1):
                merged = tuple(
                    sorted(entry.blocks[cut] + entry.blocks[cut + 1])
                )
                yield trace.replace_round(
                    index,
                    TraceRound(
                        blocks=(
                            entry.blocks[:cut]
                            + (merged,)
                            + entry.blocks[cut + 2 :]
                        ),
                        crashes=entry.crashes,
                        mid_crashes=entry.mid_crashes,
                        box_choice=entry.box_choice,
                    ),
                )
        # 5. Reset the box choice.
        if entry.box_choice:
            yield trace.replace_round(
                index,
                TraceRound(
                    blocks=entry.blocks,
                    crashes=entry.crashes,
                    mid_crashes=entry.mid_crashes,
                    box_choice=0,
                    views=entry.views,
                ),
            )


def _default_replay(
    epsilon: Fraction, step_budget: Optional[int]
) -> ReplayFn:
    def replay(trace: FaultTrace) -> Verdict:
        classification, violation = replay_trace(
            trace, epsilon=epsilon, step_budget=step_budget
        )
        return classification, (
            violation.property if violation is not None else None
        )

    return replay


def shrink_trace(
    trace: FaultTrace,
    replay: Optional[ReplayFn] = None,
    epsilon: Fraction = Fraction(1, 8),
    step_budget: Optional[int] = 20_000,
    max_replays: int = 2_000,
) -> FaultTrace:
    """Minimize a trace while preserving its replay verdict.

    Parameters
    ----------
    trace:
        The counterexample to minimize.
    replay:
        ``trace -> (classification, property)``; defaults to
        :func:`repro.faults.campaign.replay_trace` with the given ε and
        step budget.  A candidate is accepted iff its verdict equals the
        original trace's verdict.
    max_replays:
        Hard cap on re-executions (defense in depth — the weight metric
        already guarantees termination).

    Returns
    -------
    FaultTrace
        A locally minimal trace with the same verdict as the input.
    """
    if replay is None:
        replay = _default_replay(epsilon, step_budget)
    _REPLAYS.built()
    target = replay(trace)
    replays = 1
    current = trace
    improved = True
    while improved and replays < max_replays:
        improved = False
        current_weight = trace_weight(current)
        for candidate in simplifications(current):
            if trace_weight(candidate) >= current_weight:
                continue
            _REPLAYS.built()
            replays += 1
            if replay(candidate) == target:
                current = candidate
                improved = True
                break
            if replays >= max_replays:
                break
    return current
