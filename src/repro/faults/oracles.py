"""Property oracles and the execution classification lattice.

Every chaos execution lands in exactly one bucket:

* ``DECIDED_OK`` — all survivors decided and every checked property holds;
* ``VIOLATION`` — survivors decided but a task property failed (the
  attached :class:`Violation` names the property and carries a witness);
* ``HUNG`` — the execution exceeded its step budget or wall-clock
  deadline (:class:`~repro.errors.ExecutionBudgetExceeded`);
* ``HARNESS_FAULT_DETECTED`` — the runtime's safety net fired
  (:class:`~repro.errors.FaultInjectionError`), the *expected* outcome
  when an illegal injector is active.

Oracles check decisions only — they are deliberately independent from the
algorithms and the executors, so an executor bug and an algorithm bug are
both visible to the same referee.
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping
from dataclasses import dataclass
from fractions import Fraction

from repro.errors import RuntimeModelError
from repro.runtime.iterated import ExecutionResult

__all__ = [
    "DECIDED_OK",
    "VIOLATION",
    "HUNG",
    "HARNESS_FAULT_DETECTED",
    "Violation",
    "PropertyOracle",
    "ConsensusOracle",
    "ApproximateAgreementOracle",
    "KSetAgreementOracle",
]

#: Classification labels (stable strings: they appear in JSON reports).
DECIDED_OK = "DECIDED_OK"
VIOLATION = "VIOLATION"
HUNG = "HUNG"
HARNESS_FAULT_DETECTED = "HARNESS_FAULT_DETECTED"


@dataclass(frozen=True)
class Violation:
    """A falsified property with a human-readable witness."""

    property: str
    witness: str


class PropertyOracle:
    """Judge one execution's decisions against a task's properties.

    Subclasses implement :meth:`check`; returning ``None`` means every
    property holds.  ``check`` receives the original inputs and the full
    :class:`~repro.runtime.iterated.ExecutionResult` (decisions are only
    expected from surviving processes — wait-freedom never requires
    crashed processes to decide).
    """

    #: Label used in reports.
    name = "oracle"

    def check(
        self,
        inputs: Mapping[int, Hashable],
        result: ExecutionResult,
    ) -> Violation | None:
        raise NotImplementedError

    def _require_decisions(self, result: ExecutionResult) -> Violation | None:
        if not result.decisions:
            return Violation(
                "termination", "no surviving process decided"
            )
        undecided = sorted(
            process
            for process, value in result.decisions.items()
            if value is None
        )
        if undecided:
            return Violation(
                "termination",
                f"survivors {undecided} decided None",
            )
        return None


class ConsensusOracle(PropertyOracle):
    """Agreement (one output value) and validity (some process's input)."""

    name = "consensus"

    def check(
        self,
        inputs: Mapping[int, Hashable],
        result: ExecutionResult,
    ) -> Violation | None:
        missing = self._require_decisions(result)
        if missing is not None:
            return missing
        values = set(result.decisions.values())
        if len(values) > 1:
            return Violation(
                "agreement",
                f"decisions {sorted(result.decisions.items())} "
                f"contain {len(values)} distinct values",
            )
        decided = next(iter(values))
        if decided not in set(inputs.values()):
            return Violation(
                "validity",
                f"decision {decided!r} is not any process's input "
                f"{sorted(map(repr, set(inputs.values())))}",
            )
        return None


class ApproximateAgreementOracle(PropertyOracle):
    """ε-agreement (spread ≤ ε) and range validity for ε-AA."""

    name = "approximate-agreement"

    def __init__(self, epsilon: Fraction) -> None:
        self.epsilon = Fraction(epsilon)
        if self.epsilon <= 0:
            raise RuntimeModelError("ε must be positive")

    def check(
        self,
        inputs: Mapping[int, Hashable],
        result: ExecutionResult,
    ) -> Violation | None:
        missing = self._require_decisions(result)
        if missing is not None:
            return missing
        decisions = {
            process: Fraction(value)
            for process, value in result.decisions.items()
        }
        spread = max(decisions.values()) - min(decisions.values())
        if spread > self.epsilon:
            return Violation(
                "epsilon-agreement",
                f"spread {spread} > ε = {self.epsilon} for decisions "
                f"{sorted((p, str(v)) for p, v in decisions.items())}",
            )
        lo = min(Fraction(value) for value in inputs.values())
        hi = max(Fraction(value) for value in inputs.values())
        outliers = sorted(
            (process, str(value))
            for process, value in decisions.items()
            if not lo <= value <= hi
        )
        if outliers:
            return Violation(
                "range-validity",
                f"decisions {outliers} leave the input range "
                f"[{lo}, {hi}]",
            )
        return None


class KSetAgreementOracle(PropertyOracle):
    """At most ``k`` distinct outputs, each some process's input."""

    name = "k-set-agreement"

    def __init__(self, k: int) -> None:
        if k < 1:
            raise RuntimeModelError("k must be at least 1")
        self.k = k

    def check(
        self,
        inputs: Mapping[int, Hashable],
        result: ExecutionResult,
    ) -> Violation | None:
        missing = self._require_decisions(result)
        if missing is not None:
            return missing
        values = set(result.decisions.values())
        if len(values) > self.k:
            return Violation(
                "k-agreement",
                f"{len(values)} distinct decisions exceed k = {self.k}: "
                f"{sorted(map(repr, values))}",
            )
        invalid = values - set(inputs.values())
        if invalid:
            return Violation(
                "validity",
                f"decisions {sorted(map(repr, invalid))} are nobody's "
                "input",
            )
        return None
