"""Executor-level chaos: seeded faults injected *around* shipped tasks.

The injectors in :mod:`repro.faults.injectors` attack the simulated
shared-memory runtime; the plan here attacks the *execution engine
itself* — the process pool of :mod:`repro.parallel`.  A fault plan is a
pure function of ``(seed, task index, attempt number)``, so every run of
the same plan provokes the same faults in the same places regardless of
worker count, scheduling, or how tasks are re-dispatched after a pool
rebuild.  That determinism is what lets AUD014 demand byte-identical
reports from a fault-injected supervised run and a fault-free serial
run.

Three fault kinds, mirroring what a real deployment sees:

* ``"kill"`` — the worker process dies mid-task (``SIGKILL``), which
  surfaces to the parent as ``BrokenProcessPool`` and takes every
  in-flight task of that round down with it;
* ``"error"`` — the task raises a transient
  :class:`~repro.errors.TransientTaskError` (a flaky pickling
  round-trip, a dropped result);
* ``"delay"`` — the task sleeps through the ambient clock, exercising
  per-task timeout classification.

Faults only fire while ``attempt < faulty_attempts``, so any retry
budget of at least ``faulty_attempts`` is guaranteed to converge — the
plan models *transient* failure, which is the regime where retrying is
the correct response.  (Permanent poison tasks are modeled in tests by
setting ``faulty_attempts`` above the retry budget.)
"""

from __future__ import annotations

import os
import signal
from dataclasses import dataclass
from random import Random
from typing import Optional

from repro.errors import TransientTaskError, WorkerCrashError
from repro.telemetry.clock import ambient_clock

__all__ = [
    "ExecutorFaultPlan",
    "fault_for",
    "apply_fault",
    "default_plan",
]

#: Large odd multipliers decorrelate the (seed, index, attempt) mix; the
#: modulus matches ``repro.faults.campaign.derive_seed``.
_INDEX_STRIDE = 1_000_003
_ATTEMPT_STRIDE = 7_919
_SEED_MODULUS = 2**31 - 1


@dataclass(frozen=True)
class ExecutorFaultPlan:
    """A seed-deterministic schedule of executor-level faults.

    Parameters
    ----------
    seed:
        Root seed; the per-(index, attempt) decision derives from it
        arithmetically, never from ambient state.
    kill_rate, error_rate, delay_rate:
        Independent probabilities (summed cumulatively, so their total
        must stay ≤ 1) that a given faulty attempt is killed, errored,
        or delayed.
    delay_s:
        How long a ``"delay"`` fault sleeps (through the ambient clock).
    faulty_attempts:
        Attempts numbered below this threshold are eligible for faults;
        later attempts always run clean.  ``1`` means only first
        attempts can fail — the classic transient-fault regime.
    """

    seed: int = 0
    kill_rate: float = 0.0
    error_rate: float = 0.0
    delay_rate: float = 0.0
    delay_s: float = 0.05
    faulty_attempts: int = 1

    def validate(self) -> None:
        for name in ("kill_rate", "error_rate", "delay_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must lie in [0, 1], got {rate}")
        total = self.kill_rate + self.error_rate + self.delay_rate
        if total > 1.0:
            raise ValueError(
                f"fault rates must sum to at most 1, got {total}"
            )
        if self.delay_s < 0:
            raise ValueError("delay_s must be non-negative")
        if self.faulty_attempts < 0:
            raise ValueError("faulty_attempts must be non-negative")


def fault_for(
    plan: ExecutorFaultPlan, index: int, attempt: int
) -> Optional[str]:
    """The fault (``"kill"``/``"error"``/``"delay"``/``None``) for one attempt.

    Pure in ``(plan, index, attempt)``: ``random.Random(...).random()``
    is the Mersenne Twister, stable across platforms and CPython
    versions, so fault placement is part of the reproducible artifact.
    """
    if attempt >= plan.faulty_attempts:
        return None
    mixed = (
        plan.seed * _INDEX_STRIDE
        + index * _ATTEMPT_STRIDE
        + attempt
    ) % _SEED_MODULUS
    roll = Random(mixed).random()
    if roll < plan.kill_rate:
        return "kill"
    if roll < plan.kill_rate + plan.error_rate:
        return "error"
    if roll < plan.kill_rate + plan.error_rate + plan.delay_rate:
        return "delay"
    return None


def apply_fault(
    plan: ExecutorFaultPlan,
    index: int,
    attempt: int,
    in_worker: bool,
) -> None:
    """Fire the planned fault for this attempt, if any.

    A ``"kill"`` SIGKILLs the current process — but only when it *is* a
    pool worker; on the serial/degraded path the same plan entry raises
    :class:`~repro.errors.WorkerCrashError` instead, so the harness
    process survives and the retry accounting still converges on the
    same attempt numbers.
    """
    kind = fault_for(plan, index, attempt)
    if kind is None:
        return
    if kind == "kill":
        if in_worker:
            os.kill(os.getpid(), signal.SIGKILL)
        raise WorkerCrashError(
            f"planned worker kill for task {index} attempt {attempt} "
            "(degraded to an in-process crash on the serial path)"
        )
    if kind == "error":
        raise TransientTaskError(
            f"planned transient fault for task {index} attempt {attempt}"
        )
    ambient_clock().sleep(plan.delay_s)


def default_plan(seed: int) -> ExecutorFaultPlan:
    """The CLI's stock chaos plan: frequent kills, occasional errors.

    Aggressive enough that a 2-worker campaign of a few dozen shards is
    all but guaranteed to lose at least one worker, yet every fault is
    transient (``faulty_attempts=1``), so ``--retries >= 1`` always
    completes.
    """
    return ExecutorFaultPlan(
        seed=seed,
        kill_rate=0.15,
        error_rate=0.15,
        faulty_attempts=1,
    )
