"""The chaos campaign runner: randomized executions with budget guards.

A *campaign* runs ``N`` seed-derived randomized executions of one cell —
an (algorithm, model, n, t) combination — and classifies every execution
with the cell's property oracle (:mod:`repro.faults.oracles`).  The runner
is built to survive its own subjects:

* **budgets** — every execution runs under a step budget and a monotonic
  wall-clock deadline (no signals involved), so a non-terminating
  algorithm is classified ``HUNG`` instead of stalling the campaign; a
  campaign-wide deadline skips the remaining executions once exceeded;
* **error isolation** — an execution that raises is converted into a
  structured :class:`CampaignIncident` (exception type, message, seed)
  and the campaign continues;
* **determinism** — execution ``i`` derives its RNG seeds from
  ``(campaign seed, i)`` only, so re-running a campaign reproduces every
  classification, and any single execution can be re-run alone from its
  recorded seed;
* **accounting** — aggregate counts feed the process-wide
  :mod:`repro.instrumentation` counters, and reports render to text
  (via :mod:`repro.analysis.reporting`) or deterministic JSON.

Violating executions carry a replayable
:class:`~repro.faults.injectors.FaultTrace`; feed it to
:func:`replay_trace` (or ``repro chaos --replay``) to reproduce the
verdict, or to :func:`repro.faults.shrink.shrink_trace` to minimize it.
"""

from __future__ import annotations

import random
import time
from collections.abc import Hashable, Mapping
from dataclasses import dataclass, field
from fractions import Fraction
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids the cycle
    from repro.parallel.supervisor import SupervisorConfig

from repro.analysis.reporting import render_rows
from repro.errors import (
    ExecutionBudgetExceeded,
    FaultInjectionError,
    ReproError,
    RuntimeModelError,
)
from repro.faults.fixtures import (
    ExplodingAlgorithm,
    IISConsensusAttempt,
    StubbornAlgorithm,
    TooFewRoundsAA,
)
from repro.faults.injectors import (
    AdversarialBoxInjector,
    CompositeInjector,
    FaultInjector,
    FaultTrace,
    LostWriteInjector,
    MidRoundCrashInjector,
    NonAdmissibleBoxInjector,
    ReplayAdversary,
    ReplayInjector,
    StaleSnapshotInjector,
)
from repro.faults.oracles import (
    DECIDED_OK,
    HARNESS_FAULT_DETECTED,
    HUNG,
    VIOLATION,
    ApproximateAgreementOracle,
    ConsensusOracle,
    KSetAgreementOracle,
    PropertyOracle,
    Violation,
)
from repro.algorithms.approximate_agreement import (
    HalvingAA,
    TwoProcessThirdsAA,
)
from repro.algorithms.consensus_bc import ConsensusViaBinaryConsensus
from repro.instrumentation import counter
from repro.objects import BinaryConsensusBox
from repro.objects.base import BlackBox
from repro.runtime.adversary import (
    Adversary,
    RandomAdversary,
    RandomMatrixAdversary,
)
from repro.runtime.algorithm import RoundAlgorithm
from repro.runtime.iterated import ExecutionResult, IteratedExecutor
from repro.telemetry import ambient_clock, span

__all__ = [
    "CampaignConfig",
    "CampaignIncident",
    "CampaignReport",
    "ExecutionOutcome",
    "CellSpec",
    "CELLS",
    "ILLEGAL_MODES",
    "TrialRecord",
    "run_campaign",
    "run_trial",
    "fold_record",
    "classify_execution",
    "replay_trace",
    "render_report",
    "report_to_json",
]

# Fetched once at import time (hot path — see repro.instrumentation).
_EXECUTIONS = counter("faults.campaign.executions")
_VIOLATIONS = counter("faults.campaign.violations")
_HUNG = counter("faults.campaign.hung")
_DETECTED = counter("faults.campaign.detected")
_INCIDENTS = counter("faults.campaign.incidents")

#: How many non-OK outcomes a report keeps in full (witness + trace).
_MAX_KEPT = 25

#: The illegal injector modes selectable via ``--inject-illegal``.
ILLEGAL_MODES = ("lost-write", "stale-snapshot", "bad-box")


# ----------------------------------------------------------------------
# Cells: the (algorithm, oracle, box) combinations a campaign can target
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CellSpec:
    """One chaos target: algorithm factory + referee + box + inputs."""

    key: str
    summary: str
    build: Callable[[int, Fraction], RoundAlgorithm]
    oracle: Callable[[int, Fraction], PropertyOracle]
    sample_inputs: Callable[
        [int, Fraction, random.Random], dict[int, Hashable]
    ]
    parse_input: Callable[[str], Hashable]
    make_box: Optional[Callable[[], BlackBox]] = None
    #: Models the cell supports.  Black-box cells need temporal blocks, so
    #: they are IIS-only (``OneRoundSchedule.blocks`` is undefined for
    #: general matrix schedules).
    models: tuple[str, ...] = ("iis", "snapshot", "collect")
    min_n: int = 2
    max_n: Optional[int] = None
    #: Broken/pathological fixtures: violations (or hangs) are *expected*.
    broken: bool = False


def _grid_inputs(
    n: int, epsilon: Fraction, rng: random.Random
) -> dict[int, Hashable]:
    """Uniform inputs on the ε-grid ``{0, 1/m, …, 1}``, ``m = 1/ε``."""
    m = epsilon.denominator
    return {
        process: Fraction(rng.randrange(m + 1), m)
        for process in range(1, n + 1)
    }


def _named_inputs(
    n: int, epsilon: Fraction, rng: random.Random
) -> dict[int, Hashable]:
    """Distinct symbolic inputs ``v1 … vn`` (consensus-style cells)."""
    return {process: f"v{process}" for process in range(1, n + 1)}


CELLS: dict[str, CellSpec] = {
    spec.key: spec
    for spec in (
        CellSpec(
            key="aa",
            summary="halving ε-AA (Eq. 3), ⌈log₂ 1/ε⌉ IIS rounds",
            build=lambda n, eps: HalvingAA(eps),
            oracle=lambda n, eps: ApproximateAgreementOracle(eps),
            sample_inputs=_grid_inputs,
            parse_input=Fraction,
        ),
        CellSpec(
            key="aa2",
            summary="two-process thirds ε-AA (Eq. 2), ⌈log₃ 1/ε⌉ rounds",
            build=lambda n, eps: TwoProcessThirdsAA(eps),
            oracle=lambda n, eps: ApproximateAgreementOracle(eps),
            sample_inputs=_grid_inputs,
            parse_input=Fraction,
            min_n=2,
            max_n=2,
        ),
        CellSpec(
            key="consensus",
            summary="consensus via binary-consensus box, ⌈log₂ n⌉ rounds",
            build=lambda n, eps: ConsensusViaBinaryConsensus(n),
            oracle=lambda n, eps: ConsensusOracle(),
            sample_inputs=_named_inputs,
            parse_input=str,
            make_box=BinaryConsensusBox,
            models=("iis",),
        ),
        CellSpec(
            key="aa-broken",
            summary="halving ε-AA run one round short (must violate ε)",
            build=lambda n, eps: TooFewRoundsAA(eps),
            oracle=lambda n, eps: ApproximateAgreementOracle(eps),
            sample_inputs=_grid_inputs,
            parse_input=Fraction,
            broken=True,
        ),
        CellSpec(
            key="consensus-broken",
            summary="consensus attempted in plain IIS (Corollary 1 says no)",
            build=lambda n, eps: IISConsensusAttempt(),
            oracle=lambda n, eps: ConsensusOracle(),
            sample_inputs=_named_inputs,
            parse_input=str,
            broken=True,
        ),
        CellSpec(
            key="hang",
            summary="non-converging no-op algorithm (exercises HUNG)",
            build=lambda n, eps: StubbornAlgorithm(),
            oracle=lambda n, eps: KSetAgreementOracle(n),
            sample_inputs=_named_inputs,
            parse_input=str,
            broken=True,
        ),
        CellSpec(
            key="exploding",
            summary="raises mid-round (exercises incident isolation)",
            build=lambda n, eps: ExplodingAlgorithm(),
            oracle=lambda n, eps: KSetAgreementOracle(n),
            sample_inputs=_named_inputs,
            parse_input=str,
            broken=True,
        ),
    )
}


def get_cell(key: str) -> CellSpec:
    """Look up a campaign cell by key."""
    try:
        return CELLS[key]
    except KeyError:
        known = ", ".join(sorted(CELLS))
        raise ReproError(
            f"unknown chaos cell {key!r}; known cells: {known}"
        ) from None


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CampaignConfig:
    """Everything a campaign needs; validated by :meth:`validate`."""

    cell: str = "aa"
    model: str = "iis"
    n: int = 3
    t: int = 1
    executions: int = 100
    seed: int = 0
    epsilon: Fraction = Fraction(1, 8)
    crash_probability: float = 0.15
    step_budget: Optional[int] = 20_000
    exec_deadline: Optional[float] = 30.0
    deadline: Optional[float] = None
    illegal: Optional[str] = None
    allow_illegal: bool = False

    def validate(self) -> None:
        """Raise :class:`ReproError` on an inconsistent configuration."""
        spec = get_cell(self.cell)
        if self.model not in ("iis", "snapshot", "collect"):
            raise ReproError(
                f"unknown model {self.model!r}: use iis/snapshot/collect"
            )
        if self.model not in spec.models:
            raise ReproError(
                f"cell {self.cell!r} supports models "
                f"{'/'.join(spec.models)}, not {self.model!r}"
            )
        if self.n < spec.min_n:
            raise ReproError(
                f"cell {self.cell!r} needs n ≥ {spec.min_n}, got {self.n}"
            )
        if spec.max_n is not None and self.n > spec.max_n:
            raise ReproError(
                f"cell {self.cell!r} needs n ≤ {spec.max_n}, got {self.n}"
            )
        if not 0 <= self.t < self.n:
            raise ReproError(
                f"crash budget t={self.t} must satisfy 0 ≤ t < n={self.n}"
            )
        if self.executions < 1:
            raise ReproError("at least one execution is required")
        if not 0.0 <= self.crash_probability <= 1.0:
            raise ReproError(
                f"crash probability {self.crash_probability} outside [0, 1]"
            )
        if not 0 < self.epsilon <= 1:
            raise ReproError(f"ε = {self.epsilon} outside (0, 1]")
        if self.illegal is not None:
            if self.illegal not in ILLEGAL_MODES:
                raise ReproError(
                    f"unknown illegal mode {self.illegal!r}; known: "
                    + ", ".join(ILLEGAL_MODES)
                )
            if not self.allow_illegal:
                raise ReproError(
                    f"illegal injector {self.illegal!r} requires "
                    "--allow-illegal (it deliberately breaks the model)"
                )
            if self.illegal == "bad-box" and get_cell(self.cell).make_box is None:
                raise ReproError(
                    "the bad-box injector needs a cell with a black box"
                )


@dataclass(frozen=True)
class ExecutionOutcome:
    """One classified execution kept in the report."""

    index: int
    seed: int
    classification: str
    property: str = ""
    witness: str = ""
    trace: Optional[FaultTrace] = None


@dataclass(frozen=True)
class CampaignIncident:
    """A raising execution, isolated and recorded (campaign continues)."""

    index: int
    seed: int
    error: str
    message: str


@dataclass
class CampaignReport:
    """Aggregate campaign outcome (text and JSON renderable)."""

    config: CampaignConfig
    counts: dict[str, int] = field(default_factory=dict)
    violations: list[ExecutionOutcome] = field(default_factory=list)
    hung: list[ExecutionOutcome] = field(default_factory=list)
    detected: list[ExecutionOutcome] = field(default_factory=list)
    incidents: list[CampaignIncident] = field(default_factory=list)
    skipped: int = 0
    elapsed: float = 0.0
    peak_rss_kb: Optional[int] = None

    @property
    def clean(self) -> bool:
        """No violations, hangs, undetected faults, or incidents."""
        return (
            not self.incidents
            and self.counts.get(VIOLATION, 0) == 0
            and self.counts.get(HUNG, 0) == 0
        )


# ----------------------------------------------------------------------
# Execution machinery
# ----------------------------------------------------------------------
class _BudgetedAlgorithm(RoundAlgorithm):
    """Wrap an algorithm with a step budget and a monotonic deadline."""

    def __init__(
        self,
        inner: RoundAlgorithm,
        step_budget: Optional[int],
        deadline_at: Optional[float],
    ) -> None:
        self._inner = inner
        self._step_budget = step_budget
        self._deadline_at = deadline_at
        self._steps = 0
        self.rounds = inner.rounds
        self.name = inner.name

    def initial_state(self, process: int, input_value: Hashable) -> object:
        return self._inner.initial_state(process, input_value)

    def box_input(
        self, process: int, state: object, round_index: int
    ) -> Hashable:
        return self._inner.box_input(process, state, round_index)

    def step(
        self,
        process: int,
        state: object,
        seen_states: Mapping[int, object],
        box_output: Optional[Hashable],
        round_index: int,
    ) -> object:
        self._steps += 1
        if (
            self._step_budget is not None
            and self._steps > self._step_budget
        ):
            raise ExecutionBudgetExceeded(
                f"step budget {self._step_budget} exhausted at round "
                f"{round_index}"
            )
        if (
            self._deadline_at is not None
            and time.monotonic() > self._deadline_at
        ):
            raise ExecutionBudgetExceeded(
                f"wall-clock deadline exceeded at round {round_index}"
            )
        return self._inner.step(
            process, state, seen_states, box_output, round_index
        )

    def decide(self, process: int, state: object) -> Hashable:
        return self._inner.decide(process, state)


def derive_seed(campaign_seed: int, index: int) -> int:
    """The deterministic per-execution seed (stable across runs)."""
    return (campaign_seed * 1_000_003 + index) % (2**31 - 1)


def _make_adversary(model: str, seed: int) -> Adversary:
    if model == "iis":
        return RandomAdversary(seed=seed)
    return RandomMatrixAdversary(kind=model, seed=seed)


def _make_injector(
    config: CampaignConfig, seed: int, spec: CellSpec
) -> Optional[FaultInjector]:
    parts: list[FaultInjector] = []
    if config.t > 0:
        parts.append(
            MidRoundCrashInjector(
                seed=seed + 1,
                probability=config.crash_probability,
                budget=config.t,
            )
        )
    if spec.make_box is not None:
        parts.append(AdversarialBoxInjector(seed=seed + 2))
    if config.illegal == "lost-write":
        parts.append(LostWriteInjector(round_index=1, victim=1))
    elif config.illegal == "stale-snapshot":
        parts.append(StaleSnapshotInjector(round_index=1, victim=1))
    elif config.illegal == "bad-box":
        parts.append(NonAdmissibleBoxInjector(round_index=1))
    if not parts:
        return None
    if len(parts) == 1:
        return parts[0]
    return CompositeInjector(*parts)


def classify_execution(
    algorithm: RoundAlgorithm,
    inputs: Mapping[int, Hashable],
    adversary: Adversary,
    injector: Optional[FaultInjector],
    box: Optional[BlackBox],
    oracle: PropertyOracle,
    step_budget: Optional[int] = None,
    deadline_at: Optional[float] = None,
) -> tuple[str, Optional[Violation], Optional[ExecutionResult]]:
    """Run one execution and classify it (see :mod:`repro.faults.oracles`).

    Returns ``(classification, violation, result)``; the violation is
    ``None`` for ``DECIDED_OK`` and the result is ``None`` when the
    execution did not complete.  Exceptions other than the budget guard
    and the safety net propagate — the campaign loop isolates them.
    """
    guarded = _BudgetedAlgorithm(algorithm, step_budget, deadline_at)
    executor = IteratedExecutor(box=box, injector=injector)
    try:
        result = executor.run(guarded, inputs, adversary)
    except ExecutionBudgetExceeded as exc:
        return HUNG, Violation("liveness", str(exc)), None
    except FaultInjectionError as exc:
        return HARNESS_FAULT_DETECTED, Violation("safety-net", str(exc)), None
    violation = oracle.check(inputs, result)
    if violation is not None:
        return VIOLATION, violation, result
    return DECIDED_OK, None, result


def run_campaign(
    config: CampaignConfig,
    workers: Optional[int] = None,
    supervisor: Optional["SupervisorConfig"] = None,
) -> CampaignReport:
    """Run the whole campaign; never raises on a misbehaving execution.

    With more than one (resolved) worker the trials are sharded across
    the process pool (:mod:`repro.parallel.chaos`) under the execution
    supervisor (``supervisor`` overrides the process-default policy);
    per-trial seeds derive from ``(campaign seed, index)`` alone and
    shards fold back in ascending index order, so the report — including
    its JSON rendering — is byte-identical to a serial run even when the
    supervisor retried or re-dispatched shards after worker failures.
    """
    config.validate()
    spec = get_cell(config.cell)
    # Imported lazily: repro.parallel imports this module at load time.
    from repro.parallel.pool import resolve_workers

    resolved = resolve_workers(workers)
    report = CampaignReport(
        config=config,
        counts={
            DECIDED_OK: 0,
            VIOLATION: 0,
            HUNG: 0,
            HARNESS_FAULT_DETECTED: 0,
        },
    )
    # The campaign-level clock is the ambient (injectable) one, so
    # deadline behaviour is scriptable in tests; the per-execution
    # budget guard keeps raw time.monotonic() — it exists to catch real
    # hangs and must not freeze with a scripted clock.
    started = ambient_clock().now()
    campaign_deadline_at = (
        started + config.deadline if config.deadline is not None else None
    )
    with span(
        "chaos/campaign",
        cell=config.cell,
        model=config.model,
        n=config.n,
        t=config.t,
        executions=config.executions,
        seed=config.seed,
        workers=resolved,
    ) as campaign_span:
        if resolved > 1:
            from repro.parallel.chaos import run_campaign_sharded

            run_campaign_sharded(
                config,
                report,
                campaign_deadline_at,
                resolved,
                supervisor=supervisor,
            )
        else:
            _run_trials(config, spec, report, campaign_deadline_at)
        campaign_span.set_attribute("clean", report.clean)
        campaign_span.set_attribute("incidents", len(report.incidents))
    report.elapsed = ambient_clock().now() - started
    report.peak_rss_kb = _peak_rss_kb()
    return report


@dataclass(frozen=True)
class TrialRecord:
    """Everything one trial produced, before report folding.

    The per-trial unit of work shared by the serial loop and the
    parallel shard runner: :func:`run_trial` produces records,
    :func:`fold_record` accumulates them into a report.  Incident
    records carry ``error``/``message`` and an empty classification.
    """

    index: int
    seed: int
    classification: str = ""
    property: str = ""
    witness: str = ""
    trace: Optional[FaultTrace] = None
    error: str = ""
    message: str = ""

    # NB: no helper @property here — the ``property`` *field* shadows
    # the builtin inside this class body.  A record is an incident iff
    # ``error`` is non-empty.


def run_trial(
    config: CampaignConfig, spec: CellSpec, index: int
) -> TrialRecord:
    """Run and classify the trial at ``index``; never raises.

    Fully determined by ``(config, index)``: the RNG seeds derive from
    the campaign seed and the index alone, so any trial can be re-run
    in isolation — or on any pool worker — with an identical outcome.
    """
    seed = derive_seed(config.seed, index)
    rng = random.Random(seed)
    inputs = spec.sample_inputs(config.n, config.epsilon, rng)
    exec_deadline_at = (
        time.monotonic() + config.exec_deadline
        if config.exec_deadline is not None
        else None
    )
    # One span per trial, carrying the oracle's verdict (or
    # "INCIDENT") as an attribute; the trial span stays open across
    # classification so executor/oracle work nests under it.
    with span("chaos/trial", index=index, seed=seed) as trial_span:
        try:
            classification, violation, result = classify_execution(
                algorithm=spec.build(config.n, config.epsilon),
                inputs=inputs,
                adversary=_make_adversary(config.model, seed),
                injector=_make_injector(config, seed, spec),
                box=(
                    spec.make_box()
                    if spec.make_box is not None
                    else None
                ),
                oracle=spec.oracle(config.n, config.epsilon),
                step_budget=config.step_budget,
                deadline_at=exec_deadline_at,
            )
        except Exception as exc:
            # Error isolation: one raising execution never kills the
            # campaign; it becomes a structured incident instead.
            trial_span.set_attribute("verdict", "INCIDENT")
            trial_span.set_attribute("error", type(exc).__name__)
            return TrialRecord(
                index=index,
                seed=seed,
                error=type(exc).__name__,
                message=str(exc),
            )
        trial_span.set_attribute("verdict", classification)
    if classification == VIOLATION:
        assert violation is not None and result is not None
        return TrialRecord(
            index=index,
            seed=seed,
            classification=classification,
            property=violation.property,
            witness=violation.witness,
            trace=FaultTrace.from_execution(result, inputs, spec.key),
        )
    if classification in (HUNG, HARNESS_FAULT_DETECTED):
        assert violation is not None
        return TrialRecord(
            index=index,
            seed=seed,
            classification=classification,
            property=violation.property,
            witness=violation.witness,
        )
    return TrialRecord(index=index, seed=seed, classification=classification)


def fold_record(report: CampaignReport, record: TrialRecord) -> None:
    """Accumulate one trial record into the report (parent-side only).

    All counter bumps happen here — not in :func:`run_trial` — so the
    process-wide tallies land in the parent process whether the trial
    ran inline or on a pool worker.  Records must be folded in ascending
    index order for reports to be independent of the worker count (the
    kept-outcome lists truncate at ``_MAX_KEPT``).
    """
    _EXECUTIONS.built()
    if record.error:
        _INCIDENTS.built()
        report.incidents.append(
            CampaignIncident(
                index=record.index,
                seed=record.seed,
                error=record.error,
                message=record.message,
            )
        )
        return
    report.counts[record.classification] += 1
    if record.classification == VIOLATION:
        _VIOLATIONS.built()
        if len(report.violations) < _MAX_KEPT:
            report.violations.append(
                ExecutionOutcome(
                    index=record.index,
                    seed=record.seed,
                    classification=record.classification,
                    property=record.property,
                    witness=record.witness,
                    trace=record.trace,
                )
            )
    elif record.classification == HUNG:
        _HUNG.built()
        if len(report.hung) < _MAX_KEPT:
            report.hung.append(
                ExecutionOutcome(
                    index=record.index,
                    seed=record.seed,
                    classification=record.classification,
                    property=record.property,
                    witness=record.witness,
                )
            )
    elif record.classification == HARNESS_FAULT_DETECTED:
        _DETECTED.built()
        if len(report.detected) < _MAX_KEPT:
            report.detected.append(
                ExecutionOutcome(
                    index=record.index,
                    seed=record.seed,
                    classification=record.classification,
                    property=record.property,
                    witness=record.witness,
                )
            )


def _run_trials(
    config: CampaignConfig,
    spec: CellSpec,
    report: CampaignReport,
    campaign_deadline_at: Optional[float],
) -> None:
    """The serial campaign loop: run and fold one trial per index."""
    for index in range(config.executions):
        if (
            campaign_deadline_at is not None
            and ambient_clock().now() > campaign_deadline_at
        ):
            report.skipped = config.executions - index
            break
        fold_record(report, run_trial(config, spec, index))


def _peak_rss_kb() -> Optional[int]:
    """The process's peak RSS in kB, when the platform exposes it."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platform
        return None
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def replay_trace(
    trace: FaultTrace,
    epsilon: Fraction = Fraction(1, 8),
    step_budget: Optional[int] = 20_000,
) -> tuple[str, Optional[Violation]]:
    """Deterministically re-execute a recorded trace and re-classify it.

    The trace's cell key selects the algorithm/oracle/box; the recorded
    inputs and per-round decisions are replayed through
    :class:`~repro.faults.injectors.ReplayAdversary` /
    :class:`~repro.faults.injectors.ReplayInjector`.
    """
    spec = get_cell(trace.cell)
    inputs = trace.parsed_inputs(spec.parse_input)
    if not inputs:
        raise RuntimeModelError("trace has no inputs to replay")
    classification, violation, _ = classify_execution(
        algorithm=spec.build(len(inputs), epsilon),
        inputs=inputs,
        adversary=ReplayAdversary(trace),
        injector=ReplayInjector(trace),
        box=spec.make_box() if spec.make_box is not None else None,
        oracle=spec.oracle(len(inputs), epsilon),
        step_budget=step_budget,
    )
    return classification, violation


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
def report_to_json(report: CampaignReport) -> dict:
    """A deterministic JSON-serializable view (timing/memory excluded)."""
    config = report.config
    return {
        "config": {
            "cell": config.cell,
            "model": config.model,
            "n": config.n,
            "t": config.t,
            "executions": config.executions,
            "seed": config.seed,
            "epsilon": str(config.epsilon),
            "crash_probability": config.crash_probability,
            "step_budget": config.step_budget,
            "illegal": config.illegal,
        },
        "counts": {key: report.counts[key] for key in sorted(report.counts)},
        "skipped": report.skipped,
        "violations": [
            {
                "index": outcome.index,
                "seed": outcome.seed,
                "property": outcome.property,
                "witness": outcome.witness,
                "trace": (
                    None
                    if outcome.trace is None
                    else outcome.trace.to_json()
                ),
            }
            for outcome in report.violations
        ],
        "hung": [
            {
                "index": outcome.index,
                "seed": outcome.seed,
                "witness": outcome.witness,
            }
            for outcome in report.hung
        ],
        "detected": [
            {
                "index": outcome.index,
                "seed": outcome.seed,
                "witness": outcome.witness,
            }
            for outcome in report.detected
        ],
        "incidents": [
            {
                "index": incident.index,
                "seed": incident.seed,
                "error": incident.error,
                "message": incident.message,
            }
            for incident in report.incidents
        ],
    }


def render_report(report: CampaignReport) -> str:
    """The human-readable campaign summary."""
    config = report.config
    title = (
        f"chaos campaign: cell={config.cell} model={config.model} "
        f"n={config.n} t={config.t} seed={config.seed} "
        f"executions={config.executions}"
    )
    rows = [
        (label, str(report.counts.get(label, 0)))
        for label in (DECIDED_OK, VIOLATION, HUNG, HARNESS_FAULT_DETECTED)
    ]
    rows.append(("incidents", str(len(report.incidents))))
    if report.skipped:
        rows.append(("skipped (deadline)", str(report.skipped)))
    lines = [render_rows(title, rows, ("classification", "count"))]
    for outcome in report.violations:
        lines.append(
            f"violation @ execution {outcome.index} (seed {outcome.seed}): "
            f"{outcome.property}: {outcome.witness}"
        )
    for outcome in report.hung:
        lines.append(
            f"hung @ execution {outcome.index} (seed {outcome.seed}): "
            f"{outcome.witness}"
        )
    for incident in report.incidents:
        lines.append(
            f"incident @ execution {incident.index} "
            f"(seed {incident.seed}): {incident.error}: {incident.message}"
        )
    lines.append(
        f"elapsed: {report.elapsed:.2f}s"
        + (
            f", peak RSS: {report.peak_rss_kb} kB"
            if report.peak_rss_kb is not None
            else ""
        )
    )
    return "\n".join(lines)
