"""Fault-injection and chaos-testing harness for the operational runtime.

The runtime of :mod:`repro.runtime` claims wait-freedom: algorithms survive
*every* legal adversary (crashes, schedules, adversarial black-box
choices).  This subpackage stress-tests that claim operationally and — just
as importantly — verifies the runtime's *safety nets*: behaviors outside
the model (lost writes, corrupted snapshots, non-admissible box outputs,
non-linearizable objects) must surface as
:class:`~repro.errors.FaultInjectionError`, never be silently absorbed.

* :mod:`repro.faults.injectors` — composable, seed-deterministic fault
  injectors plugging into the executor hooks, plus the replayable
  :class:`~repro.faults.injectors.FaultTrace`;
* :mod:`repro.faults.oracles` — property oracles (consensus, ε-approximate
  agreement, k-set agreement) and the execution classification lattice;
* :mod:`repro.faults.campaign` — the chaos campaign runner: N randomized
  executions per (algorithm, model, n, t) cell with budget guards, error
  isolation, and JSON/text reporting;
* :mod:`repro.faults.executor` — executor-level chaos plans (seeded
  worker kills, transient task errors, task delays) attacking the
  process pool of :mod:`repro.parallel` instead of the simulated
  runtime, consumed by the execution supervisor;
* :mod:`repro.faults.shrink` — delta-debugging of violating traces down to
  locally minimal counterexamples;
* :mod:`repro.faults.fixtures` — deliberately broken algorithms used to
  prove the harness actually detects violations (ε-AA with too few rounds;
  consensus in plain IIS, impossible by Corollary 1).
"""

from repro.faults.injectors import (
    FaultInjector,
    CompositeInjector,
    MidRoundCrashInjector,
    CrashStormInjector,
    AdversarialBoxInjector,
    LostWriteInjector,
    StaleSnapshotInjector,
    NonAdmissibleBoxInjector,
    FaultTrace,
    TraceRound,
    ReplayAdversary,
    ReplayInjector,
)
from repro.faults.oracles import (
    DECIDED_OK,
    VIOLATION,
    HUNG,
    HARNESS_FAULT_DETECTED,
    PropertyOracle,
    ConsensusOracle,
    ApproximateAgreementOracle,
    KSetAgreementOracle,
    Violation,
)
from repro.faults.campaign import (
    CampaignConfig,
    CampaignIncident,
    CampaignReport,
    ExecutionOutcome,
    CELLS,
    run_campaign,
    replay_trace,
    render_report,
    report_to_json,
)
from repro.faults.executor import (
    ExecutorFaultPlan,
    apply_fault,
    default_plan,
    fault_for,
)
from repro.faults.shrink import shrink_trace, trace_weight

__all__ = [
    "FaultInjector",
    "CompositeInjector",
    "MidRoundCrashInjector",
    "CrashStormInjector",
    "AdversarialBoxInjector",
    "LostWriteInjector",
    "StaleSnapshotInjector",
    "NonAdmissibleBoxInjector",
    "FaultTrace",
    "TraceRound",
    "ReplayAdversary",
    "ReplayInjector",
    "DECIDED_OK",
    "VIOLATION",
    "HUNG",
    "HARNESS_FAULT_DETECTED",
    "PropertyOracle",
    "ConsensusOracle",
    "ApproximateAgreementOracle",
    "KSetAgreementOracle",
    "Violation",
    "CampaignConfig",
    "CampaignIncident",
    "CampaignReport",
    "ExecutionOutcome",
    "CELLS",
    "run_campaign",
    "replay_trace",
    "render_report",
    "report_to_json",
    "ExecutorFaultPlan",
    "apply_fault",
    "default_plan",
    "fault_for",
    "shrink_trace",
    "trace_weight",
]
