"""Deliberately broken or pathological algorithms for harness validation.

A chaos harness that only ever reports ``DECIDED_OK`` proves nothing; the
fixtures here give it targets it *must* flag:

* :class:`TooFewRoundsAA` — the halving algorithm run one round short.
  Claim 3's invariant ("entering round ``r`` the spread is at most
  ``2·ε_r``") fails at round 1, and adversarial schedules drive the final
  spread far above ε — while the fully synchronous schedule still
  converges, so shrinking keeps at least one genuinely adversarial round.
* :class:`IISConsensusAttempt` — consensus attempted in plain IIS, which
  Corollary 1 proves impossible: the adversary separates a solo process
  from the rest and agreement breaks.
* :class:`StubbornAlgorithm` — declares an absurd round count; only the
  campaign's step budget / deadline guard terminates it (``HUNG``).
* :class:`ExplodingAlgorithm` — raises a :class:`ValueError` at a chosen
  round, exercising the campaign's error isolation (one raising execution
  must become an incident record, not kill the campaign).
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping
from fractions import Fraction
from typing import Optional

from repro.algorithms.approximate_agreement import HalvingAA, Rational
from repro.core.lower_bounds import ceil_log
from repro.errors import RuntimeModelError
from repro.runtime.algorithm import RoundAlgorithm

__all__ = [
    "TooFewRoundsAA",
    "IISConsensusAttempt",
    "StubbornAlgorithm",
    "ExplodingAlgorithm",
]


class TooFewRoundsAA(HalvingAA):
    """Halving ε-AA with one round too few (violates ε under adversaries)."""

    name = "halving-AA-too-few-rounds"

    def __init__(self, epsilon: Rational) -> None:
        tight = ceil_log(2, 1 / Fraction(epsilon))
        if tight < 2:
            raise RuntimeModelError(
                "ε must need at least two rounds for the broken fixture"
            )
        super().__init__(epsilon, rounds=tight - 1)


class IISConsensusAttempt(RoundAlgorithm):
    """Adopt-the-minimum "consensus" in plain IIS — impossible (Corollary 1).

    Each round every process adopts the minimum value it saw; after
    ``rounds`` rounds it decides its current value.  Synchronous runs
    agree (everyone adopts the global minimum), but whenever the adversary
    keeps the minimum's holder hidden from some process for every round,
    the decisions differ — the operational face of consensus not being
    wait-free solvable in IIS.
    """

    name = "iis-consensus-attempt"

    def __init__(self, rounds: int = 2) -> None:
        if rounds < 1:
            raise RuntimeModelError("at least one round is required")
        self.rounds = rounds

    def initial_state(self, process: int, input_value: Hashable) -> Hashable:
        return input_value

    def step(
        self,
        process: int,
        state: Hashable,
        seen_states: Mapping[int, Hashable],
        box_output: Optional[Hashable],
        round_index: int,
    ) -> Hashable:
        return min(seen_states.values())

    def decide(self, process: int, state: Hashable) -> Hashable:
        return state


class StubbornAlgorithm(RoundAlgorithm):
    """Never converges: runs an absurd number of no-op rounds.

    Used to validate the ``HUNG`` classification — only the campaign's
    step budget or wall-clock deadline stops it.
    """

    name = "stubborn"
    rounds = 10**9

    def initial_state(self, process: int, input_value: Hashable) -> Hashable:
        return input_value

    def step(
        self,
        process: int,
        state: Hashable,
        seen_states: Mapping[int, Hashable],
        box_output: Optional[Hashable],
        round_index: int,
    ) -> Hashable:
        return state

    def decide(self, process: int, state: Hashable) -> Hashable:
        return state


class ExplodingAlgorithm(RoundAlgorithm):
    """Raises ``ValueError`` at a chosen round (error-isolation fixture)."""

    name = "exploding"
    rounds = 3

    def __init__(self, explode_at: int = 2) -> None:
        self._explode_at = explode_at

    def initial_state(self, process: int, input_value: Hashable) -> Hashable:
        return input_value

    def step(
        self,
        process: int,
        state: Hashable,
        seen_states: Mapping[int, Hashable],
        box_output: Optional[Hashable],
        round_index: int,
    ) -> Hashable:
        if round_index >= self._explode_at:
            raise ValueError(
                f"deliberate fixture explosion at round {round_index}"
            )
        return state

    def decide(self, process: int, state: Hashable) -> Hashable:
        return state
