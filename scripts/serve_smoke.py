#!/usr/bin/env python3
"""End-to-end smoke check of the solver service (``repro.serve``).

Boots a real server on localhost with a fresh content-addressed store,
then drives the serving tier through its whole contract:

* **cold requests** for every cacheable endpoint family, byte-compared
  (canonical JSON) against the in-process ``handlers.execute`` result;
* **warm repeats**, which must be byte-identical *and* carry store
  provenance (``served.cached``);
* **concurrent duplicates** of one fresh query, which must coalesce to
  a single computation (nonzero coalesce count in ``stats``);
* **a warm restart**: a second server on the same store directory must
  answer the earlier queries from disk without recomputing.

Run directly (``python scripts/serve_smoke.py``) — CI runs it twice,
once plainly and once under ``REPRO_SANITIZE=1``.  Exit status 0 on
success, 1 on any failed check.
"""

from __future__ import annotations

import os
import pathlib
import sys
import tempfile
import threading

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

PROBES = [
    ("lower_bound", {"n": 4, "eps": "1/8"}),
    (
        "solvability",
        {"task": "consensus", "n": 2, "rounds": 1, "model": "iis"},
    ),
    ("closure", {"n": 2, "eps": "1/2", "m": 2, "model": "iis"}),
]

#: The query duplicated concurrently to exercise single-flight dedup.
DUP_PROBE = (
    "solvability",
    {"task": "consensus", "n": 2, "rounds": 2, "model": "iis"},
)
DUP_FANOUT = 6


def run_smoke() -> list[str]:
    """Run every check; the list of failure descriptions (empty = pass)."""
    from repro.serve.handlers import execute
    from repro.serve.protocol import canonical_json
    from repro.serve.server import ServeConfig
    from repro.serve.testing import ServerHandle

    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as tmp:
        store_dir = os.path.join(tmp, "store")
        config = ServeConfig(store_dir=store_dir, batch_window=0.01)

        with ServerHandle(config) as handle:
            baselines: dict[str, str] = {}
            # Cold + warm parity per endpoint family.
            for method, params in PROBES:
                expected = canonical_json(execute(method, dict(params)))
                baselines[method] = expected
                with handle.connect() as client:
                    cold = client.call_raw(method, dict(params))
                    warm = client.call_raw(method, dict(params))
                for label, envelope in (("cold", cold), ("warm", warm)):
                    got = canonical_json(envelope.get("result"))
                    if got != expected:
                        failures.append(
                            f"{method}: {label} served bytes diverge "
                            f"from in-process ({got[:80]} != "
                            f"{expected[:80]})"
                        )
                if not warm.get("served", {}).get("cached"):
                    failures.append(
                        f"{method}: warm repeat not served from the "
                        f"store ({warm.get('served')})"
                    )

            # Concurrent duplicates must coalesce to one computation.
            method, params = DUP_PROBE
            results: list[str] = []
            errors: list[str] = []

            def fire() -> None:
                try:
                    results.append(
                        canonical_json(handle.call(method, dict(params)))
                    )
                except Exception as exc:  # surfaced as a smoke failure
                    errors.append(f"{type(exc).__name__}: {exc}")

            threads = [
                threading.Thread(target=fire) for _ in range(DUP_FANOUT)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            failures.extend(f"duplicate request failed: {e}" for e in errors)
            if len(set(results)) > 1:
                failures.append(
                    "concurrent duplicates returned diverging payloads"
                )
            dup_expected = canonical_json(execute(method, dict(params)))
            if results and results[0] != dup_expected:
                failures.append(
                    "duplicated query diverges from in-process result"
                )
            stats = handle.call("stats")
            if stats["serve"]["coalesced"] < 1:
                failures.append(
                    f"expected nonzero coalesce count, got "
                    f"{stats['serve']['coalesced']}"
                )
            print(
                "serve smoke: "
                f"{stats['serve']['requests']} requests, "
                f"{stats['serve']['computed']} computed, "
                f"{stats['serve']['cache_hits']} cache hits, "
                f"{stats['serve']['coalesced']} coalesced, "
                f"{stats['store']['writes']} store writes"
            )

        # Warm restart: a fresh server on the same store directory must
        # answer from disk.
        with ServerHandle(
            ServeConfig(store_dir=store_dir, batch_window=0.01)
        ) as handle:
            for method, params in PROBES:
                with handle.connect() as client:
                    envelope = client.call_raw(method, dict(params))
                got = canonical_json(envelope.get("result"))
                if got != baselines[method]:
                    failures.append(
                        f"{method}: post-restart bytes diverge"
                    )
                if not envelope.get("served", {}).get("cached"):
                    failures.append(
                        f"{method}: post-restart request recomputed "
                        "instead of hitting the persisted store"
                    )
            restart_stats = handle.call("stats")
            print(
                "serve smoke: warm restart answered "
                f"{restart_stats['serve']['cache_hits']}/{len(PROBES)} "
                "probes from the persisted store"
            )
    return failures


def main() -> int:
    if os.environ.get("REPRO_SANITIZE"):
        print("serve smoke: running with REPRO_SANITIZE=1")
    failures = run_smoke()
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
