#!/usr/bin/env python3
"""Performance smoke check for the protocol-complex hot path.

Expands the 2-round immediate-snapshot protocol complex of a 3-process
input simplex — the workload behind every closure and solvability sweep —
and fails if it blows a deliberately generous wall-clock budget or
reproduces the wrong substrate.  The budget is two orders of magnitude
above the measured time on commodity hardware (~5 ms with the model-level
one-round memo, ~80 ms cold before it), so a failure means a real
regression, not a noisy machine.

Run directly (``python scripts/perf_smoke.py``) or through the test
wrapper ``tests/test_perf_smoke.py``.  Exit status 0 on success, 1 on
budget or shape failure.
"""

from __future__ import annotations

import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

#: Wall-clock budget for one cold 2-round expansion, in seconds.
BUDGET_SECONDS = 30.0

EXPECTED_FACETS = 169  # 13^2
EXPECTED_F_VECTOR = (99, 267, 169)


def run_smoke() -> dict:
    """Time a cold 2-round 3-process IIS expansion; return measurements."""
    from repro.instrumentation import counters_delta, counters_snapshot
    from repro.models import ImmediateSnapshotModel, ProtocolOperator
    from repro.topology import Simplex

    iis = ImmediateSnapshotModel()
    operator = ProtocolOperator(iis)
    triangle = Simplex([(1, "a"), (2, "b"), (3, "c")])

    before = counters_snapshot()
    start = time.perf_counter()
    protocol = operator.of_simplex(triangle, 2)
    elapsed = time.perf_counter() - start
    stats = counters_delta(before, counters_snapshot())

    hits, misses = stats.get(
        "one-round-complex[iterated-immediate-snapshot]", (0, 0)
    )
    return {
        "seconds": elapsed,
        "facets": len(protocol.facets),
        "f_vector": protocol.f_vector(),
        "one_round_requests": hits + misses,
        "one_round_materializations": misses,
    }


def main() -> int:
    data = run_smoke()
    failures = []
    if data["seconds"] > BUDGET_SECONDS:
        failures.append(
            f"2-round expansion took {data['seconds']:.2f}s "
            f"(budget {BUDGET_SECONDS:.0f}s)"
        )
    if data["facets"] != EXPECTED_FACETS:
        failures.append(
            f"expected {EXPECTED_FACETS} facets, got {data['facets']}"
        )
    if data["f_vector"] != EXPECTED_F_VECTOR:
        failures.append(
            f"expected f-vector {EXPECTED_F_VECTOR}, got {data['f_vector']}"
        )
    if data["one_round_requests"] < data["one_round_materializations"]:
        failures.append("counter bookkeeping inconsistent")

    print(
        f"perf smoke: P^(2)(triangle) in {data['seconds'] * 1000:.1f} ms, "
        f"{data['facets']} facets, "
        f"{data['one_round_materializations']} one-round materializations "
        f"for {data['one_round_requests']} requests"
    )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
