#!/usr/bin/env python3
"""Load generator for the solver service; records ``BENCH_serve.json``.

Drives a freshly booted localhost server through three phases and
records latency and serving-tier efficiency into
``benchmarks/results/BENCH_serve.json`` (standard benchmark schema plus
serve-specific extras):

* **cold** — distinct cacheable queries, every one computed;
* **warm** — the same queries repeated, every one answered from the
  content-addressed store;
* **burst** — concurrent duplicates of fresh queries, exercising
  single-flight coalescing.

The headline acceptance gate is enforced here: warm-cache p50 latency
for repeated solvability queries must be at least ``SPEEDUP_FLOOR``×
faster than cold.  Exit status 0 on success, 1 on a failed gate.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import tempfile
import threading
import time
from datetime import datetime, timezone
from fractions import Fraction
from typing import Any

REPO = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

#: Warm p50 must beat cold p50 by at least this factor (repeated
#: solvability queries; the store answers without recomputing).
SPEEDUP_FLOOR = 5.0


def _percentile(samples: list[float], q: float) -> float:
    """The q-quantile (0..1) of a nonempty sample list, by rank."""
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[rank]


def _workload(queries: int) -> list[tuple[str, dict[str, Any]]]:
    """``queries`` pairwise-distinct cacheable requests, solvability-heavy.

    Distinctness matters: the cold phase must actually compute every
    query, so the parameter combinations are enumerated (never cycled)
    — consensus variants over round counts, then ε-AA over a ladder of
    grids, interleaved 2:1 with lower-bound queries.
    """
    solvability: list[tuple[str, dict[str, Any]]] = []
    for rounds in (1, 2, 3):
        for task in ("consensus", "relaxed-consensus"):
            solvability.append(
                (
                    "solvability",
                    {
                        "task": task,
                        "n": 2,
                        "rounds": rounds,
                        "model": "iis",
                    },
                )
            )
    for denominator in (2, 3, 4, 5, 6, 8, 10, 12):
        for rounds in (1, 2):
            eps = Fraction(1, denominator)
            solvability.append(
                (
                    "solvability",
                    {
                        "task": "aa",
                        "n": 2,
                        "rounds": rounds,
                        "model": "iis",
                        "eps": str(eps),
                        "m": denominator,
                    },
                )
            )
    bounds: list[tuple[str, dict[str, Any]]] = [
        ("lower_bound", {"n": n, "eps": f"1/{denominator}"})
        for n in (3, 4, 5, 6)
        for denominator in (2, 4, 8, 16, 32, 64)
    ]
    work: list[tuple[str, dict[str, Any]]] = []
    while len(work) < queries and (solvability or bounds):
        for _ in range(2):
            if solvability:
                work.append(solvability.pop(0))
        if bounds:
            work.append(bounds.pop(0))
    return work[:queries]


def _timed_calls(
    handle: Any, work: list[tuple[str, dict[str, Any]]]
) -> tuple[list[float], list[str]]:
    """Issue every request sequentially; (latencies_s, canonical results)."""
    from repro.serve.protocol import canonical_json

    latencies: list[float] = []
    payloads: list[str] = []
    with handle.connect() as client:
        for method, params in work:
            started = time.perf_counter()
            result = client.call(method, dict(params))
            latencies.append(time.perf_counter() - started)
            payloads.append(canonical_json(result))
    return latencies, payloads


def run_load(
    queries: int, burst: int, output: pathlib.Path
) -> tuple[dict[str, Any], list[str]]:
    """Run the three phases; the benchmark record and gate failures."""
    from repro.parallel.pool import resolve_workers
    from repro.serve.handlers import execute
    from repro.serve.protocol import canonical_json
    from repro.serve.server import ServeConfig
    from repro.serve.testing import ServerHandle

    failures: list[str] = []
    work = _workload(queries)
    started = time.perf_counter()
    with tempfile.TemporaryDirectory(prefix="repro-load-serve-") as tmp:
        config = ServeConfig(
            store_dir=os.path.join(tmp, "store"), batch_window=0.005
        )
        with ServerHandle(config) as handle:
            cold, cold_payloads = _timed_calls(handle, work)
            warm, warm_payloads = _timed_calls(handle, work)
            if cold_payloads != warm_payloads:
                failures.append(
                    "warm payloads diverge from cold payloads"
                )
            # Spot-check byte-identity against in-process execution on a
            # deterministic sample (full parity is AUD015's job).
            for position in range(0, len(work), max(1, len(work) // 5)):
                method, params = work[position]
                expected = canonical_json(execute(method, dict(params)))
                if cold_payloads[position] != expected:
                    failures.append(
                        f"served bytes diverge from in-process for "
                        f"{method} {params}"
                    )

            # Burst phase: concurrent duplicates of a query that is NOT
            # part of the cold/warm workload (rounds=4 is outside the
            # enumerated ladder), so the duplicates race the first
            # computation and must coalesce rather than hit the store.
            burst_probe = {
                "task": "consensus",
                "n": 2,
                "rounds": 4,
                "model": "iis",
            }
            burst_results: list[str] = []

            def fire() -> None:
                burst_results.append(
                    canonical_json(
                        handle.call("solvability", dict(burst_probe))
                    )
                )

            threads = [
                threading.Thread(target=fire) for _ in range(burst)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            if len(set(burst_results)) > 1:
                failures.append("burst duplicates diverged")
            stats = handle.call("stats")

    wall_s = time.perf_counter() - started
    serve_stats = stats["serve"]
    store_stats = stats["store"]
    lookups = store_stats["hits"] + store_stats["misses"]
    solv_positions = [
        i for i, (method, _) in enumerate(work) if method == "solvability"
    ]
    cold_solv = [cold[i] for i in solv_positions]
    warm_solv = [warm[i] for i in solv_positions]
    cold_p50 = _percentile(cold_solv, 0.5)
    warm_p50 = _percentile(warm_solv, 0.5)
    speedup = cold_p50 / warm_p50 if warm_p50 > 0 else float("inf")
    if speedup < SPEEDUP_FLOOR:
        failures.append(
            f"warm solvability p50 ({warm_p50 * 1000:.2f} ms) is only "
            f"{speedup:.1f}x faster than cold "
            f"({cold_p50 * 1000:.2f} ms); floor is {SPEEDUP_FLOOR}x"
        )

    record = {
        "name": "serve",
        "workers": resolve_workers(None),
        "wall_s": round(wall_s, 6),
        "facets": 0,
        "timestamp": datetime.now(timezone.utc).isoformat(),
        "queries": len(work),
        "burst_fanout": burst,
        "cold_p50_ms": round(_percentile(cold, 0.5) * 1000, 3),
        "cold_p99_ms": round(_percentile(cold, 0.99) * 1000, 3),
        "warm_p50_ms": round(_percentile(warm, 0.5) * 1000, 3),
        "warm_p99_ms": round(_percentile(warm, 0.99) * 1000, 3),
        "solvability_cold_p50_ms": round(cold_p50 * 1000, 3),
        "solvability_warm_p50_ms": round(warm_p50 * 1000, 3),
        "warm_speedup": round(speedup, 2),
        "cache_hit_rate": round(
            store_stats["hits"] / lookups if lookups else 0.0, 4
        ),
        "coalesce_count": serve_stats["coalesced"],
        "coalesce_rate": round(
            serve_stats["coalesced"] / serve_stats["requests"], 4
        ),
        "batches": serve_stats["batches"],
        "batched_queries": serve_stats["batched_queries"],
        "requests": serve_stats["requests"],
        "errors": serve_stats["errors"],
    }
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return record, failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--queries",
        type=int,
        default=30,
        help="distinct cacheable queries per phase (default: 30)",
    )
    parser.add_argument(
        "--burst",
        type=int,
        default=8,
        help="concurrent duplicates in the coalescing burst (default: 8)",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=REPO / "benchmarks" / "results" / "BENCH_serve.json",
        help="where to write the benchmark record",
    )
    args = parser.parse_args()
    record, failures = run_load(args.queries, args.burst, args.output)
    print(
        f"load serve: {record['requests']} requests in "
        f"{record['wall_s']:.2f}s — cold p50/p99 "
        f"{record['cold_p50_ms']}/{record['cold_p99_ms']} ms, warm "
        f"p50/p99 {record['warm_p50_ms']}/{record['warm_p99_ms']} ms, "
        f"solvability warm speedup {record['warm_speedup']}x, cache hit "
        f"rate {record['cache_hit_rate']}, "
        f"{record['coalesce_count']} coalesced "
        f"({record['coalesce_rate']})"
    )
    print(f"load serve: wrote {args.output}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
