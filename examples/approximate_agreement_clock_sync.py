#!/usr/bin/env python3
"""Approximate agreement as wait-free clock synchronization.

Approximate agreement is the classic abstraction behind clock
synchronization and sensor fusion: each process holds a local estimate in
[0, 1] and all must converge to within ε of each other, inside the range of
the original estimates, despite asynchrony and crashes.

This example runs the paper's tight algorithms operationally:

* the halving algorithm (Eq. 3) for n ≥ 3 — ⌈log₂ 1/ε⌉ rounds;
* the thirds algorithm (Eq. 2) for n = 2 — ⌈log₃ 1/ε⌉ rounds;

under three adversaries (synchronous, solo-first, randomized with crashes),
prints the per-round convergence trace, and checks the outcome against the
paper's lower bounds: running one round fewer than ⌈log₂ 1/ε⌉ demonstrably
fails.

Run:  python examples/approximate_agreement_clock_sync.py
"""

from fractions import Fraction

from repro import (
    FullSyncAdversary,
    HalvingAA,
    IteratedExecutor,
    RandomAdversary,
    SoloFirstAdversary,
    TwoProcessThirdsAA,
    aa_lower_bound_iis,
)


def spread(values) -> Fraction:
    values = list(values)
    return max(values) - min(values)


def run_and_report(title, algorithm, inputs, adversary, epsilon) -> None:
    executor = IteratedExecutor()
    result = executor.run(algorithm, inputs, adversary)
    print(f"  {title}")
    for record in result.trace:
        blocks = " | ".join(
            ",".join(map(str, block)) for block in record.blocks
        )
        print(f"    round {record.round_index}: blocks [{blocks}]")
    if result.crashed:
        print(f"    crashed: {result.crashed}")
    decisions = {p: str(v) for p, v in sorted(result.decisions.items())}
    final_spread = spread(result.decisions.values())
    verdict = "OK" if final_spread <= epsilon else "VIOLATION"
    print(f"    decisions: {decisions}")
    print(f"    spread {final_spread} ≤ ε = {epsilon}?  {verdict}")
    assert final_spread <= epsilon
    print()


def main() -> None:
    eps = Fraction(1, 8)
    clocks = {1: Fraction(0), 2: Fraction(3, 8), 3: Fraction(5, 8), 4: Fraction(1)}
    print(f"Clock estimates: { {p: str(v) for p, v in clocks.items()} }")
    print(f"Target precision ε = {eps}; paper lower bound "
          f"⌈log₂ 1/ε⌉ = {aa_lower_bound_iis(4, eps)} rounds.\n")

    algorithm = HalvingAA(eps)
    print(f"Halving algorithm (Eq. 3), {algorithm.rounds} rounds:")
    run_and_report("synchronous run", algorithm, clocks, FullSyncAdversary(), eps)
    run_and_report(
        "process 3 always runs solo first",
        algorithm,
        clocks,
        SoloFirstAdversary(3),
        eps,
    )
    run_and_report(
        "randomized schedule with crashes (seed 7)",
        algorithm,
        clocks,
        RandomAdversary(seed=7, crash_probability=0.2),
        eps,
    )

    # ------------------------------------------------------------------
    # The lower bound binds: one round fewer fails on some schedule.
    # ------------------------------------------------------------------
    hurried = HalvingAA(eps, rounds=algorithm.rounds - 1)
    executor = IteratedExecutor()
    worst = None
    for seed in range(200):
        result = executor.run(
            hurried, clocks, RandomAdversary(seed=seed)
        )
        s = spread(result.decisions.values())
        if worst is None or s > worst:
            worst = s
    print(f"With only {hurried.rounds} rounds the adversary forces spread "
          f"{worst} > ε = {eps}: the ⌈log₂ 1/ε⌉ bound binds.")
    assert worst > eps

    # ------------------------------------------------------------------
    # Two processes are faster: base 3 instead of base 2 (Corollary 3).
    # ------------------------------------------------------------------
    eps2 = Fraction(1, 9)
    two = TwoProcessThirdsAA(eps2)
    print(f"\nTwo processes, ε = {eps2}: thirds algorithm needs "
          f"{two.rounds} rounds (halving would need "
          f"{HalvingAA(eps2).rounds}).")
    run_and_report(
        "two-process run",
        two,
        {1: Fraction(0), 2: Fraction(1)},
        RandomAdversary(seed=1),
        eps2,
    )


if __name__ == "__main__":
    main()
