#!/usr/bin/env python3
"""Reused registers change the game: exploring the non-iterated model.

The paper proves its speedup theorem for *iterated* models (a fresh
register array per round) and leaves the non-iterated setting — one
register per process, reused forever — as an open question, noting the two
are equivalent for solvability but not known to be equivalent for round
complexity.

This example shows the difference is not hypothetical:

1. the paper's tight halving algorithm (Eq. 3) is correct in every iterated
   model, down to weak collect schedules;
2. the same algorithm VIOLATES ε under non-iterated asynchrony — a slow
   process's register still holds its wide, early-phase value, and a fast
   reader folds it into a late, narrow round;
3. even phase barriers don't save it: a register not yet written this phase
   exposes last phase's value, where an iterated collect would see nothing;
4. tagging writes with their phase and filtering stale values restores
   ε-agreement at the same round count (`NonIteratedHalvingAA`).

Run:  python examples/noniterated_registers.py
"""

from fractions import Fraction

from repro import HalvingAA, IteratedExecutor, NonIteratedHalvingAA, RandomAdversary
from repro.runtime import NonIteratedExecutor


def spread(decisions):
    values = list(decisions.values())
    return max(values) - min(values)


def sweep(executor_factory, algorithm, inputs, eps, samples=400):
    violations = 0
    worst = Fraction(0)
    for seed in range(samples):
        result = executor_factory(seed).run(algorithm, inputs)
        s = spread(result.decisions)
        worst = max(worst, s)
        if s > eps:
            violations += 1
    return violations, worst, samples


def main() -> None:
    F = Fraction
    eps = F(1, 4)
    inputs = {1: F(0), 2: F(1, 2), 3: F(1)}
    print(f"ε = {eps}, inputs = { {p: str(v) for p, v in inputs.items()} }\n")

    # 1. Iterated baseline: always correct.
    violations = 0
    for seed in range(400):
        result = IteratedExecutor().run(
            HalvingAA(eps), inputs, RandomAdversary(seed)
        )
        if spread(result.decisions) > eps:
            violations += 1
    print(f"1. iterated IIS, plain halving:         "
          f"{violations}/400 violations (the paper's tight algorithm)")

    # 2. Non-iterated asynchrony breaks it.
    v, worst, n = sweep(
        lambda seed: NonIteratedExecutor(seed=seed), HalvingAA(eps),
        inputs, eps,
    )
    print(f"2. non-iterated, plain halving:         "
          f"{v}/{n} violations, worst spread {worst}")

    # 3. Even with phase barriers.
    v, worst, n = sweep(
        lambda seed: NonIteratedExecutor(seed=seed, synchronized=True),
        HalvingAA(eps), inputs, eps,
    )
    print(f"3. non-iterated + phase barriers:       "
          f"{v}/{n} violations, worst spread {worst}")
    print("   (a register not yet written this phase exposes last phase's")
    print("   value — iterated collects would structurally hide it)")

    # 4. Phase filtering repairs it.
    for sync in (False, True):
        v, worst, n = sweep(
            lambda seed: NonIteratedExecutor(seed=seed, synchronized=sync),
            NonIteratedHalvingAA(eps), inputs, eps,
        )
        label = "barriers" if sync else "async   "
        print(f"4. phase-filtered halving ({label}):  "
              f"{v}/{n} violations, worst spread {worst}")
        assert v == 0

    print("\nSame round count, non-iterated-safe: evidence that, for")
    print("approximate agreement, reused registers cost no extra rounds —")
    print("the direction the paper's conclusion conjectures.")


if __name__ == "__main__":
    main()
