#!/usr/bin/env python3
"""Do stronger objects make approximate agreement faster?

The paper's headline application: test&set (consensus number 2) and even a
binary consensus object (consensus number ∞, when called by process ID) do
NOT reduce the round complexity of ε-approximate agreement for n ≥ 3 —
although both are strictly stronger than registers for *solvability*.

This example makes that concrete:

1. test&set solves 2-process consensus in one round (Fig. 4) — run it;
2. yet the closure of liberal ε-AA w.r.t. IIS+test&set is still (2ε)-AA
   (Claim 4) — compute it;
3. the resulting round bounds coincide with plain IIS (Theorem 3);
4. with an ID-called binary consensus object, the β-closure collapses only
   on the majority call side (Claim 6), giving Theorem 4's
   min{⌈log₂ 1/ε⌉, ⌈log₂ n⌉ − 1};
5. the algorithms that ARE faster (bitwise AA) call the object with
   value-dependent inputs — outside Theorem 4's hypothesis — run one.

Run:  python examples/powerful_objects.py
"""

from fractions import Fraction

from repro import (
    AugmentedModel,
    BinaryConsensusBox,
    BitwiseAA,
    ClosureComputer,
    IteratedExecutor,
    RandomAdversary,
    Simplex,
    TestAndSetBox,
    TwoProcessConsensusTAS,
    aa_lower_bound_iis,
    aa_lower_bound_iis_bc,
    aa_lower_bound_iis_tas,
    beta_input_function,
    liberal_approximate_agreement_task,
    majority_side,
)


def main() -> None:
    F = Fraction

    # ------------------------------------------------------------------
    # 1. test&set beats registers for solvability: 2-proc consensus.
    # ------------------------------------------------------------------
    executor = IteratedExecutor(box=TestAndSetBox())
    result = executor.run(
        TwoProcessConsensusTAS(), {1: "red", 2: "blue"},
        RandomAdversary(seed=3),
    )
    print("1. Two-process consensus with test&set (one round):")
    print(f"   decisions = {result.decisions} — exact agreement, "
          "impossible with registers alone.\n")

    # ------------------------------------------------------------------
    # 2. ...but its closure of ε-AA is still only (2ε)-AA.
    # ------------------------------------------------------------------
    eps, m = F(1, 4), 4
    tas_model = AugmentedModel(TestAndSetBox())
    task = liberal_approximate_agreement_task([1, 2, 3], eps, m)
    target = liberal_approximate_agreement_task([1, 2, 3], 2 * eps, m)
    computer = ClosureComputer(task, tas_model)
    sigma = Simplex([(1, F(0)), (2, F(1, 2)), (3, F(1))])
    same = (
        computer.delta_prime(sigma).simplices
        == target.delta(sigma).simplices
    )
    print(f"2. CL_(IIS+t&s)(liberal {eps}-AA) on a full window equals "
          f"liberal {2 * eps}-AA: {same}")
    print("   test&set buys nothing per round for three processes.\n")

    # ------------------------------------------------------------------
    # 3. The round bounds coincide with plain IIS (Theorem 3).
    # ------------------------------------------------------------------
    print("3. Round lower bounds for ε-AA, n = 3 (Theorem 3):")
    print(f"   {'ε':>7}  {'IIS':>4}  {'IIS+t&s':>8}")
    for k in (1, 2, 3, 4):
        e = F(1, 2**k)
        print(f"   {str(e):>7}  {aa_lower_bound_iis(3, e):>4}"
              f"  {aa_lower_bound_iis_tas(3, e):>8}")
    print()

    # ------------------------------------------------------------------
    # 4. ID-called binary consensus: the β-closure halves the world.
    # ------------------------------------------------------------------
    beta = {1: 0, 2: 1, 3: 0, 4: 0, 5: 1}
    side = sorted(majority_side(beta, beta))
    bc_model = AugmentedModel(
        BinaryConsensusBox(), beta_input_function(beta)
    )
    side_task = liberal_approximate_agreement_task(side, eps, m)
    side_target = liberal_approximate_agreement_task(side, 2 * eps, m)
    side_computer = ClosureComputer(side_task, bc_model)
    sigma_side = Simplex(
        [(side[0], F(0)), (side[1], F(1, 2)), (side[2], F(1))]
    )
    collapsed = (
        side_computer.delta_prime(sigma_side).simplices
        == side_target.delta(sigma_side).simplices
    )
    print(f"4. β = {beta}: majority side S' = {side}")
    print(f"   β-closure restricted to S' equals liberal 2ε-AA: {collapsed}")
    print("   Theorem 4 bounds, min(⌈log₂ 1/ε⌉, ⌈log₂ n⌉ − 1):")
    for n in (8, 64):
        for e in (F(1, 8), F(1, 64)):
            print(f"     n={n:>3}, ε={str(e):>5}: "
                  f"{aa_lower_bound_iis_bc(n, e)} rounds")
    print()

    # ------------------------------------------------------------------
    # 5. Value-called binary consensus escapes the bound: bitwise AA.
    # ------------------------------------------------------------------
    algorithm = BitwiseAA(F(1, 8))
    executor = IteratedExecutor(box=BinaryConsensusBox())
    inputs = {1: F(0), 2: F(5, 16), 3: F(1)}
    result = executor.run(algorithm, inputs, RandomAdversary(seed=11))
    values = list(result.decisions.values())
    print(f"5. Bitwise AA (value-called box), ε = 1/8, "
          f"{algorithm.rounds} rounds:")
    print(f"   decisions = { {p: str(v) for p, v in result.decisions.items()} }")
    print(f"   spread = {max(values) - min(values)} ≤ 1/8 — fast, but only "
          "because its box calls depend on values, not IDs.")


if __name__ == "__main__":
    main()
