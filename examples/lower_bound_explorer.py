#!/usr/bin/env python3
"""Lower-bound explorer: apply the closure machinery to your own task.

The speedup theorem is generic: define any finite task (I, O, Δ), pick a
model, and the library will compute closures, detect fixed points, and
derive round lower bounds by iteration.  This example does it for three
tasks the paper does not fully work out:

* **leader election** (every process outputs the ID of one common
  participant) — a consensus-like fixed point, hence unsolvable;
* **2-set agreement** among three processes — not a fixed point (the
  closure strictly grows), matching the paper's remark that its
  impossibility needs connectivity-type arguments beyond the closure;
* a custom "within-one-slot agreement" task on a value ladder, whose
  closure iteration yields a genuine round lower bound.

Run:  python examples/lower_bound_explorer.py
"""

from fractions import Fraction

from repro import (
    ClosureComputer,
    ImmediateSnapshotModel,
    Simplex,
    SimplicialComplex,
    Task,
    impossibility_from_fixed_point,
    is_solvable,
    iterated_closure_lower_bound,
    set_agreement_task,
)
from repro.tasks.inputs import full_input_complex


def leader_election_task(ids):
    """Every process outputs the same participant ID (a participant's)."""
    id_list = sorted(ids)
    input_complex = full_input_complex(id_list, ["token"])
    output_complex = SimplicialComplex(
        Simplex((i, leader) for i in id_list) for leader in id_list
    )

    def delta(sigma):
        participants = sorted(sigma.ids)
        return SimplicialComplex(
            Simplex((i, leader) for i in participants)
            for leader in participants
        )

    return Task(f"leader-election(n={len(id_list)})", input_complex,
                output_complex, delta)


def ladder_agreement_task(ids, slots):
    """Processes start on ladder slots and must end within one slot.

    A discrete cousin of approximate agreement: inputs and outputs are
    integers 0..slots, outputs within the input range, pairwise ≤ 1 apart.
    """
    id_list = sorted(ids)
    values = list(range(slots + 1))
    input_complex = full_input_complex(id_list, values)
    from itertools import product

    output_complex = SimplicialComplex(
        Simplex(zip(id_list, combo))
        for combo in product(values, repeat=len(id_list))
        if max(combo) - min(combo) <= 1
    )

    def delta(sigma):
        lo = min(v.value for v in sigma.vertices)
        hi = max(v.value for v in sigma.vertices)
        participants = sorted(sigma.ids)
        window = [v for v in values if lo <= v <= hi]
        return SimplicialComplex(
            Simplex(zip(participants, combo))
            for combo in product(window, repeat=len(participants))
            if max(combo) - min(combo) <= 1
        )

    return Task(f"ladder(n={len(id_list)}, slots={slots})", input_complex,
                output_complex, delta)


def main() -> None:
    iis = ImmediateSnapshotModel()

    # ------------------------------------------------------------------
    # Leader election: a fixed point ⟹ unsolvable (like consensus).
    # ------------------------------------------------------------------
    leader = leader_election_task([1, 2])
    report = impossibility_from_fixed_point(leader, iis)
    print("Leader election (n = 2):")
    print(f"  {report.summary()}\n")

    # ------------------------------------------------------------------
    # 2-set agreement: the closure grows, so Lemma 1 does not apply.
    # ------------------------------------------------------------------
    kset = set_agreement_task([1, 2, 3], ["a", "b", "c"], 2)
    computer = ClosureComputer(kset, iis)
    rainbow = Simplex([(1, "a"), (2, "b"), (3, "c")])
    grew = (
        computer.delta_prime(rainbow).simplices
        > kset.delta(rainbow).simplices
    )
    one_round = is_solvable(
        kset, iis, 1,
        input_simplices=[rainbow] + list(rainbow.proper_faces()),
    )
    print("2-set agreement (n = 3):")
    print(f"  closure strictly grows: {grew} — not a fixed point, the")
    print("  closure technique alone cannot reprove its impossibility")
    print(f"  (1-round brute force still says unsolvable: {not one_round}).\n")

    # ------------------------------------------------------------------
    # Ladder agreement: a genuine iterative lower bound.
    # ------------------------------------------------------------------
    ladder = ladder_agreement_task([1, 2], slots=4)
    bound = iterated_closure_lower_bound(ladder, iis, max_rounds=4)
    print("Ladder agreement (n = 2, slots 0..4, outputs within one slot):")
    print(f"  closure-iteration lower bound: {bound} round(s)")
    print("  (each closure triples the allowed slot distance, exactly the")
    print("  ε-AA behavior on the grid m = 4, ε = 1/4 — compare")
    print("  ⌈log₃ 4⌉ = 2.)")
    assert bound == 2


if __name__ == "__main__":
    main()
