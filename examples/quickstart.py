#!/usr/bin/env python3
"""Quickstart: the asynchronous speedup theorem in five minutes.

Walks through the library's core objects on the consensus task:

1. build the wait-free IIS model and look at one round of it (the standard
   chromatic subdivision);
2. state the binary consensus task;
3. compute its closure and observe that it is consensus itself — a fixed
   point;
4. conclude impossibility via Lemma 1;
5. contrast with approximate agreement, whose closure genuinely relaxes.

Run:  python examples/quickstart.py
"""

from fractions import Fraction

from repro import (
    ClosureComputer,
    ImmediateSnapshotModel,
    Simplex,
    approximate_agreement_task,
    binary_consensus_task,
    impossibility_from_fixed_point,
    standard_chromatic_subdivision,
)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. One round of wait-free IIS = the standard chromatic subdivision.
    # ------------------------------------------------------------------
    iis = ImmediateSnapshotModel()
    sigma = Simplex([(1, "a"), (2, "b"), (3, "c")])
    subdivision = standard_chromatic_subdivision(sigma)
    print("One IIS round on a triangle:")
    print(f"  facets     : {len(subdivision.facets)} (13 = Fubini(3))")
    print(f"  f-vector   : {subdivision.f_vector()}")
    print(f"  solo views : every process can run alone —",
          iis.allows_solo_executions([1, 2, 3]))
    print()

    # ------------------------------------------------------------------
    # 2–3. Consensus and its closure.
    # ------------------------------------------------------------------
    consensus = binary_consensus_task([1, 2, 3])
    computer = ClosureComputer(consensus, iis)
    mixed = Simplex([(1, 0), (2, 1), (3, 0)])
    closure_outputs = computer.legal_outputs(mixed)
    print("Closure of consensus on inputs (0, 1, 0):")
    for tau in closure_outputs:
        print(f"  legal output: {tau.as_mapping()}")
    print("  — exactly the two unanimous outputs: CL(consensus) = consensus.")
    print()

    # ------------------------------------------------------------------
    # 4. Lemma 1: fixed point + not 0-round solvable ⟹ unsolvable.
    # ------------------------------------------------------------------
    report = impossibility_from_fixed_point(binary_consensus_task([1, 2]), iis)
    print("Lemma 1 pipeline (n = 2):")
    print(f"  {report.summary()}")
    print()

    # ------------------------------------------------------------------
    # 5. Approximate agreement escapes: its closure relaxes ε to 3ε.
    # ------------------------------------------------------------------
    eps = Fraction(1, 4)
    aa = approximate_agreement_task([1, 2], eps, 4)
    aa_computer = ClosureComputer(aa, iis)
    wide = Simplex([(1, Fraction(0)), (2, Fraction(1))])
    legal = aa_computer.legal_outputs(wide)
    spreads = sorted(
        {
            abs(tau.value_of(1) - tau.value_of(2))
            for tau in legal
        }
    )
    print(f"Closure of {eps}-approximate agreement on inputs (0, 1):")
    print(f"  allowed output spreads: {[str(s) for s in spreads]}")
    print(f"  max spread = {max(spreads)} = 3ε — the closure is (3ε)-AA,")
    print("  which is why ε-AA needs ⌈log₃ 1/ε⌉ rounds for two processes.")


if __name__ == "__main__":
    main()
