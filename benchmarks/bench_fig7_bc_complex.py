"""E11 — Fig. 7: the 1-round IIS+binary-consensus complex.

Paper shape: with the black process calling the object with 0 and the other
two with 1, the complex is two decorated copies of the chromatic
subdivision; the black process's solo vertex disappears from the 1-copy,
and executions among the 1-callers only exist in the 1-copy.
"""

from repro.analysis import ExperimentRow, render_table
from repro.experiments import reproduce_fig7


def test_fig7_bc_complex(benchmark, record_table):
    bundle = benchmark(reproduce_fig7)
    data = bundle["mixed"]

    assert all(data["opposite_solo_removed"].values())
    assert data["facets_per_agreed_bit"] == {0: 6, 1: 10}

    uniform = bundle["uniform"]
    assert uniform["facets_per_agreed_bit"] == {0: 0, 1: 13}

    rows = [
        ExperimentRow(
            "solo vertices with opposite bit removed",
            "yes (validity)",
            str(all(data["opposite_solo_removed"].values())),
            all(data["opposite_solo_removed"].values()),
        ),
        ExperimentRow(
            "facets deciding 0 (black in first block)",
            "6 of 13 schedules",
            str(data["facets_per_agreed_bit"][0]),
            data["facets_per_agreed_bit"][0] == 6,
        ),
        ExperimentRow(
            "facets deciding 1",
            "10 of 13 schedules",
            str(data["facets_per_agreed_bit"][1]),
            data["facets_per_agreed_bit"][1] == 10,
        ),
        ExperimentRow(
            "uniform calls collapse to one copy",
            "13 facets, all agree",
            str(uniform["facets_per_agreed_bit"]),
            uniform["facets_per_agreed_bit"] == {0: 0, 1: 13},
        ),
    ]
    record_table(
        "E11_fig7",
        render_table(
            "E11 / Fig. 7 — IIS+binary-consensus one-round complex", rows
        ),
    )
