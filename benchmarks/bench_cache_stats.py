"""E22 (cache effectiveness) — one-round materializations saved.

The model-level memo introduced for ``one_round_complex`` is shared by
every :class:`ProtocolOperator` built over the same model, so the
closure-style sweep (independent operators, each expanding every face of
a 3-process simplex to two rounds) requests far more one-round complexes
than it materializes.  The pre-caching baseline materialized once per
request; the measured ``requests / materializations`` ratio is therefore
the saving factor, and the acceptance bar is ≥ 5×.
"""

from repro.analysis import ExperimentRow, render_cache_report, render_table
from repro.experiments import reproduce_cache_effectiveness


def test_cache_effectiveness(benchmark, record_table):
    data = benchmark.pedantic(
        reproduce_cache_effectiveness, rounds=1, iterations=1
    )

    # The memoized run must reproduce the substrate bit-identically.
    assert data["facets"] == 169
    assert data["f_vector"] == (99, 267, 169)
    # Acceptance bar: ≥ 5× fewer materializations than requests.
    assert data["requests"] >= 5 * data["materializations"]
    # The per-operator (σ, rounds) memo also absorbs repeat requests.
    assert data["operator_requests"] >= data["operator_materializations"]

    rows = [
        ExperimentRow(
            "P^(2)(triangle) facets",
            "13² = 169",
            str(data["facets"]),
            data["facets"] == 169,
        ),
        ExperimentRow(
            "P^(2)(triangle) f-vector",
            "(99, 267, 169)",
            str(data["f_vector"]),
            data["f_vector"] == (99, 267, 169),
        ),
        ExperimentRow(
            "one-round materializations",
            f"≤ requests/5 = {data['requests'] / 5:.0f}",
            f"{data['materializations']} for {data['requests']} requests",
            data["requests"] >= 5 * data["materializations"],
        ),
        ExperimentRow(
            "saving factor vs pre-caching baseline",
            "≥ 5×",
            f"{data['saving_factor']:.1f}×",
            data["saving_factor"] >= 5,
        ),
    ]
    table = render_table(
        "E22 (cache effectiveness) — model-level one-round memo", rows
    )
    report = render_cache_report(
        data["stats"], title="Counter deltas during the sweep"
    )
    record_table("E22_cache_stats", table + "\n\n" + report)
