"""E9 — Corollary 3: the round complexity of ε-AA in wait-free IIS.

Paper shape (the central "table" of Section 5.1):

    n = 2:  ⌈log₃ 1/ε⌉ rounds (closure triples ε),
    n ≥ 3:  ⌈log₂ 1/ε⌉ rounds (closure doubles ε),

both tight.  Measured three ways: the closed form backed by the verified
closure identities, the generic closure-iteration engine on a small
instance, and the algorithms' round counts (tightness).
"""

from repro.analysis import ExperimentRow, render_table
from repro.experiments import reproduce_corollary3

def test_corollary3_lower_bounds(benchmark, record_table):
    data = benchmark.pedantic(reproduce_corollary3, rounds=1, iterations=1)

    rows = []
    for n, eps, k, lower, upper in data["table"]:
        assert lower == upper == k
        base = 3 if n == 2 else 2
        rows.append(
            ExperimentRow(
                f"n={n}, ε={eps}",
                f"⌈log_{base} 1/ε⌉ = {k}",
                f"lower {lower}, algorithm {upper} rounds",
                lower == upper == k,
            )
        )
    assert data["generic_quarter"] == 2
    rows.append(
        ExperimentRow(
            "generic closure iteration (n=2, ε=1/4)",
            "2",
            str(data["generic_quarter"]),
            data["generic_quarter"] == 2,
        )
    )
    rows.append(
        ExperimentRow(
            "bound binds (1 round fails at ε=1/4)",
            "yes",
            str(data["binding"]),
            data["binding"],
        )
    )
    record_table(
        "E9_corollary3",
        render_table("E9 / Corollary 3 — ε-AA round complexity in IIS", rows),
    )
