"""E18 (ablation) — what makes the solvability engine fast.

DESIGN.md calls out two design choices in the decision procedure: pairwise
arc-consistency propagation and constraint-graph component decomposition.
This ablation measures both on the paper's canonical *refutation* instance
(ε = 1/4 approximate agreement is not 1-round solvable for two processes,
grid m = 4), counting explored search nodes:

* full engine (propagation + components) — refutes with zero search nodes
  (an empty domain is found during propagation);
* components only — each window's subproblem isolates its own failure;
* propagation only — the empty-domain window still kills the search;
* neither — chronological backtracking interleaves independent windows and
  rediscovers the same local failure over and over; we cap it with a node
  budget of 2·10⁶ and report the overrun (during development this
  configuration ran for minutes without terminating).
"""

from repro.analysis import ExperimentRow, render_table
from repro.experiments import reproduce_solver_ablation
from repro.experiments.performance import SOLVER_NODE_BUDGET as NODE_BUDGET

def test_solver_ablation(benchmark, record_table):
    data = benchmark.pedantic(
        reproduce_solver_ablation, rounds=1, iterations=1
    )

    assert data["full"]["refuted"] and data["full"]["nodes"] == 0
    assert data["components_only"]["refuted"]
    assert data["propagation_only"]["refuted"]
    # Unassisted search must be orders of magnitude worse: either it blows
    # the node budget or it needed vastly more nodes than the aided runs.
    aided_worst = max(
        data["components_only"]["nodes"], data["propagation_only"]["nodes"]
    )
    assert data["none"]["exceeded"] or data["none"]["nodes"] > 100 * max(
        1, aided_worst
    )

    def cell(entry):
        if entry["exceeded"]:
            return f"> {NODE_BUDGET:,} nodes (budget hit)"
        return f"{entry['nodes']:,} nodes, {entry['seconds'] * 1000:.1f} ms"

    rows = [
        ExperimentRow(
            "AC + components", "refutes with 0 search nodes", cell(data["full"]),
            data["full"]["nodes"] == 0,
        ),
        ExperimentRow(
            "components only", "small per-window searches",
            cell(data["components_only"]), data["components_only"]["refuted"],
        ),
        ExperimentRow(
            "AC only", "empty domain found by propagation",
            cell(data["propagation_only"]), data["propagation_only"]["refuted"],
        ),
        ExperimentRow(
            "neither", "exponential interleaved thrashing",
            cell(data["none"]),
            data["none"]["exceeded"] or data["none"]["nodes"] > aided_worst,
        ),
    ]
    record_table(
        "E18_solver_ablation",
        render_table(
            "E18 (ablation) — solvability-engine design choices "
            "(refuting 1-round ε=1/4 AA, n=2, m=4)",
            rows,
        ),
    )
