"""BENCH (telemetry) — the cost of *disabled* telemetry on a hot workload.

The tracer's contract (docs/OBSERVABILITY.md) is that instrumented hot
paths pay only a module-global check plus a shared no-op span handle
when no tracer is installed.  This harness quantifies that claim on the
E22 cache-effectiveness workload — the hot pattern of every closure and
solvability sweep — in three configurations:

* ``baseline`` — the wired modules' ``span`` bindings are replaced with
  a stub that returns the no-op span without even consulting the
  tracer state: the code as close to "spans never wired" as patching
  allows;
* ``disabled`` — the shipped fast path: no tracer installed, every
  ``span()`` call checks the module global and returns ``NOOP_SPAN``;
* ``enabled`` — a real tracer recording the full span tree, for scale.

The configurations are timed *interleaved* — every repeat measures all
three back to back, and the minimum per configuration is kept.  Timing
them in sequential blocks instead bakes clock-speed drift into the
comparison (observed: a >20 % phantom "overhead" from thermal drift
alone); interleaving puts every configuration under the same drift.
The verdict compares ``disabled`` to ``baseline``: the overhead must
stay under 3 %.  Results go to ``benchmarks/results/BENCH_telemetry.json``.

Run directly::

    PYTHONPATH=src python benchmarks/bench_telemetry_overhead.py
"""

from __future__ import annotations

import argparse
import importlib
import json
import pathlib
import sys
import time
from datetime import datetime, timezone
from typing import Callable

from repro.experiments.performance import reproduce_cache_effectiveness
from repro.instrumentation import reset_counters
from repro.telemetry import NOOP_SPAN, Tracer, disable, enable

#: Every module that binds ``from repro.telemetry import span`` on a path
#: the E22 workload exercises.  ``from``-imports bind per module, so the
#: baseline must patch each binding, not the telemetry module itself.
WIRED_MODULES = (
    "repro.models.base",
    "repro.models.protocol",
    "repro.core.closure",
    "repro.core.solvability",
)

#: Acceptance threshold: disabled telemetry may cost at most this much.
MAX_OVERHEAD_PCT = 3.0

RESULTS_PATH = (
    pathlib.Path(__file__).parent / "results" / "BENCH_telemetry.json"
)


def _stub_span(name, **attributes):  # noqa: ANN001 - signature mirror
    """The no-wiring baseline: hand back the shared no-op span."""
    return NOOP_SPAN


def _patch_spans(stub: Callable) -> dict:
    saved = {}
    for module_name in WIRED_MODULES:
        module = importlib.import_module(module_name)
        saved[module_name] = module.span
        module.span = stub
    return saved


def _restore_spans(saved: dict) -> None:
    for module_name, original in saved.items():
        importlib.import_module(module_name).span = original


def _time_once() -> float:
    reset_counters()
    start = time.perf_counter()
    reproduce_cache_effectiveness()
    return time.perf_counter() - start


def run(repeats: int = 7) -> dict:
    """Measure the three configurations and return the result record."""
    # One untimed warmup absorbs import and allocator effects.
    _time_once()
    baseline = disabled = enabled = float("inf")
    for _ in range(repeats):
        saved = _patch_spans(_stub_span)
        try:
            baseline = min(baseline, _time_once())
        finally:
            _restore_spans(saved)

        disabled = min(disabled, _time_once())

        enable(Tracer())
        try:
            enabled = min(enabled, _time_once())
        finally:
            disable()

    overhead_pct = (
        (disabled - baseline) / baseline * 100.0 if baseline else 0.0
    )
    return {
        # Standard BENCH_<name>.json keys (see benchmarks/conftest.py).
        "name": "telemetry",
        "workers": 1,
        "wall_s": disabled,
        "facets": None,
        "timestamp": datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
        "benchmark": "telemetry-disabled-overhead",
        "workload": "E22 reproduce_cache_effectiveness",
        "repeats": repeats,
        "baseline_s": baseline,
        "disabled_s": disabled,
        "enabled_s": enabled,
        "overhead_pct": overhead_pct,
        "max_overhead_pct": MAX_OVERHEAD_PCT,
        "pass": overhead_pct < MAX_OVERHEAD_PCT,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repeats",
        type=int,
        default=7,
        help="timed repetitions per configuration (min is kept)",
    )
    args = parser.parse_args(argv)
    record = run(repeats=args.repeats)
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(
        f"baseline {record['baseline_s'] * 1000.0:.2f} ms | "
        f"disabled {record['disabled_s'] * 1000.0:.2f} ms | "
        f"enabled {record['enabled_s'] * 1000.0:.2f} ms"
    )
    print(
        f"disabled-telemetry overhead: {record['overhead_pct']:.2f}% "
        f"(budget {MAX_OVERHEAD_PCT}%) -> "
        + ("PASS" if record["pass"] else "FAIL")
    )
    print(f"wrote {RESULTS_PATH}")
    return 0 if record["pass"] else 1


if __name__ == "__main__":
    sys.exit(main())
