"""E14 — Claim 1: zero-round unsolvability of approximate agreement.

Paper shape: for ε < 1 no 0-round algorithm solves ε-AA (solo outputs are
forced to the inputs), and the same holds for the liberal version with
n ≥ 3 — while for exactly two processes the liberal version IS 0-round
solvable (the technical wrinkle that costs Theorem 4 its additive −1).
"""

from repro.analysis import ExperimentRow, render_table
from repro.experiments import reproduce_claim1

def test_claim1_zero_round_unsolvability(benchmark, record_table):
    data = benchmark(reproduce_claim1)

    assert not data["strict_2"]
    assert not data["strict_3"]
    assert not data["liberal_3"]
    assert data["liberal_2"]
    assert data["eps_1"]

    rows = [
        ExperimentRow(
            "ε-AA, n=2, ε=1/2, 0 rounds",
            "unsolvable",
            "unsolvable" if not data["strict_2"] else "solvable",
            not data["strict_2"],
        ),
        ExperimentRow(
            "ε-AA, n=3, 0 rounds",
            "unsolvable",
            "unsolvable" if not data["strict_3"] else "solvable",
            not data["strict_3"],
        ),
        ExperimentRow(
            "liberal ε-AA, n=3, 0 rounds",
            "unsolvable",
            "unsolvable" if not data["liberal_3"] else "solvable",
            not data["liberal_3"],
        ),
        ExperimentRow(
            "liberal ε-AA, n=2, 0 rounds",
            "solvable (the −1 of Theorem 4)",
            "solvable" if data["liberal_2"] else "unsolvable",
            data["liberal_2"],
        ),
        ExperimentRow(
            "ε = 1 boundary",
            "solvable",
            "solvable" if data["eps_1"] else "unsolvable",
            data["eps_1"],
        ),
    ]
    record_table(
        "E14_claim1",
        render_table("E14 / Claim 1 — zero-round (un)solvability", rows),
    )
