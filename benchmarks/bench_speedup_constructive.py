"""E13 — Theorems 1–2 run constructively: f ↦ f' on real algorithms.

Paper shape: from any t-round solution f, the map f'(i, V) = f(i, solo(V))
solves the closure in t−1 rounds — in the register model (Theorem 1) and
with black boxes (Theorem 2).
"""

from repro.analysis import ExperimentRow, render_table
from repro.experiments import reproduce_speedup

def test_speedup_constructive(benchmark, record_table):
    data = benchmark.pedantic(reproduce_speedup, rounds=1, iterations=1)

    t1, t2 = data["theorem1"], data["theorem2"]
    assert t1.holds and t2.holds

    rows = [
        ExperimentRow(
            "Theorem 1: 2-round thirds AA (ε=1/9)",
            "f valid; f' solves CL in 1 round",
            f"f valid={t1.original_valid}, f' valid={t1.sped_up_valid}",
            t1.holds,
        ),
        ExperimentRow(
            "violations found",
            "0",
            str(len(t1.violations)),
            not t1.violations,
        ),
        ExperimentRow(
            "Theorem 2: 1-round t&s consensus",
            "f valid; f' solves CL in 0 rounds",
            f"f valid={t2.original_valid}, f' valid={t2.sped_up_valid}",
            t2.holds,
        ),
    ]
    record_table(
        "E13_speedup",
        render_table(
            "E13 / Theorems 1–2 — the speedup construction, verified", rows
        ),
    )
