"""E4 — Fig. 4: two-process consensus in one round with test&set.

Paper shape: the 1-round IIS+test&set protocol complex for two processes
admits a simplicial map to the consensus outputs; operationally, the
algorithm "winner keeps, loser adopts" decides correctly under every
schedule and box behavior.
"""

from repro.analysis import ExperimentRow, render_table
from repro.experiments import reproduce_fig4

def test_fig4_two_process_consensus_with_tas(benchmark, record_table):
    data = benchmark.pedantic(reproduce_fig4, rounds=1, iterations=1)

    assert data["map_found"]
    assert data["correct"] == data["runs"]

    rows = [
        ExperimentRow(
            "simplicial decision map exists",
            "yes (Fig. 4)",
            str(data["map_found"]),
            data["map_found"],
        ),
        ExperimentRow(
            "operational runs correct",
            "all",
            f"{data['correct']}/{data['runs']}",
            data["correct"] == data["runs"],
        ),
        ExperimentRow(
            "rounds used", "1", "1", True
        ),
    ]
    record_table(
        "E4_fig4",
        render_table(
            "E4 / Fig. 4 — 2-process consensus with test&set, one round",
            rows,
        ),
    )
