"""E21 (extension) — the non-iterated model, the conclusion's open question.

The paper proves the speedup theorem for iterated models and asks whether
it extends to non-iterated ones, noting the two settings are equivalent for
solvability but not known to be equivalent for round complexity.  This
bench gives the question empirical teeth:

* the round-indexed halving map of Eq. (3) — correct in every *iterated*
  model down to collect (see E20) — violates ε on a sizable fraction of
  random non-iterated interleavings, because reused registers expose stale
  previous-phase values that an iterated round structurally hides;
* even phase-synchronized non-iterated runs violate ε (the stale value of
  a process that has not yet written the current phase substitutes for the
  iterated model's "nothing written");
* filtering collected values by phase tag (``NonIteratedHalvingAA``)
  empirically restores ε-agreement on every interleaving tried, at the
  same round count — evidence that, for approximate agreement, the
  non-iterated model costs no extra rounds, consistent with the paper's
  suggestion that the models may be complexity-equivalent.
"""

from repro.analysis import ExperimentRow, render_table
from repro.experiments import reproduce_noniterated


def test_noniterated_model(benchmark, record_table):
    data = benchmark.pedantic(reproduce_noniterated, rounds=1, iterations=1)

    assert data["plain_async"]["violations"] > 0
    assert data["plain_sync"]["violations"] > 0
    assert data["filtered_async"]["violations"] == 0
    assert data["filtered_sync"]["violations"] == 0
    assert data["plain_async"]["max_skew"] >= 1

    samples = data["samples"]
    rows = [
        ExperimentRow(
            "plain halving, async interleavings",
            "violates ε (stale reads)",
            f"{data['plain_async']['violations']}/{samples} violations, "
            f"worst spread {data['plain_async']['worst']}",
            data["plain_async"]["violations"] > 0,
        ),
        ExperimentRow(
            "plain halving, phase barriers",
            "still violates ε (stale values ≠ ⊥)",
            f"{data['plain_sync']['violations']}/{samples} violations, "
            f"worst spread {data['plain_sync']['worst']}",
            data["plain_sync"]["violations"] > 0,
        ),
        ExperimentRow(
            "phase-filtered halving, async",
            "ε restored, same round count",
            f"{data['filtered_async']['violations']}/{samples} violations, "
            f"worst spread {data['filtered_async']['worst']}",
            data["filtered_async"]["violations"] == 0,
        ),
        ExperimentRow(
            "phase-filtered halving, barriers",
            "ε restored",
            f"{data['filtered_sync']['violations']}/{samples} violations",
            data["filtered_sync"]["violations"] == 0,
        ),
        ExperimentRow(
            "phase skew observed",
            "≥ 1 (genuinely non-iterated)",
            str(data["plain_async"]["max_skew"]),
            data["plain_async"]["max_skew"] >= 1,
        ),
    ]
    record_table(
        "E21_noniterated",
        render_table(
            "E21 (extension) — the non-iterated model "
            f"(ε = {data['eps']}, n = 3)",
            rows,
        ),
    )
