"""E3 — Corollary 1: wait-free consensus impossibility via the closure.

Paper shape: CL_IIS(consensus) = consensus (fixed point), consensus is not
0-round solvable, hence unsolvable in any number of rounds (Lemma 1).
Reproduced mechanically for n = 2 and n = 3.
"""

from repro.analysis import ExperimentRow, render_table
from repro.experiments import reproduce_corollary1

def test_corollary1_consensus_impossibility(benchmark, record_table):
    outcomes = benchmark.pedantic(reproduce_corollary1, rounds=1, iterations=1)

    rows = []
    for n, data in outcomes.items():
        assert data["fixed_point"]
        assert not data["zero_round"]
        assert data["unsolvable"]
        assert not data["brute_force_1_round"]
        rows.append(
            ExperimentRow(
                f"n={n}: CL(consensus) = consensus",
                "yes",
                str(data["fixed_point"]),
                data["fixed_point"],
            )
        )
        rows.append(
            ExperimentRow(
                f"n={n}: 0-round solvable",
                "no",
                str(data["zero_round"]),
                not data["zero_round"],
            )
        )
        rows.append(
            ExperimentRow(
                f"n={n}: verdict (Lemma 1)",
                "unsolvable",
                "unsolvable" if data["unsolvable"] else "solvable?",
                data["unsolvable"],
            )
        )
    record_table(
        "E3_corollary1",
        render_table(
            "E3 / Corollary 1 — wait-free consensus impossibility", rows
        ),
    )
