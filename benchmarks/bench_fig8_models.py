"""E1 — Fig. 8: the one-round complexes of collect / snapshot / IIS.

Paper shape: for three processes, immediate snapshot is the standard
chromatic subdivision (13 facets), snapshot adds 6 facets (19), and collect
adds 6 more (25); inclusions are strict and all three share the same 12
vertices.
"""

from repro.analysis import ExperimentRow, render_table
from repro.experiments import reproduce_fig8

def test_fig8_model_hierarchy(benchmark, record_table):
    data = benchmark(reproduce_fig8)

    assert data["immediate_snapshot"].facets == 13
    assert data["immediate_snapshot"].f_vector == (12, 24, 13)
    assert data["snapshot"].facets == 19
    assert data["collect"].facets == 25
    assert data["iis_strictly_inside_snapshot"]
    assert data["snapshot_strictly_inside_collect"]

    rows = [
        ExperimentRow(
            "IIS facets (chromatic subdivision)",
            "13",
            str(data["immediate_snapshot"].facets),
            data["immediate_snapshot"].facets == 13,
        ),
        ExperimentRow(
            "snapshot facets",
            "13 + extra",
            str(data["snapshot"].facets),
            data["snapshot"].facets == 19,
        ),
        ExperimentRow(
            "collect facets",
            "snapshot + extra",
            str(data["collect"].facets),
            data["collect"].facets == 25,
        ),
        ExperimentRow(
            "IIS ⊂ snapshot ⊂ collect (strict)",
            "yes",
            "yes"
            if data["iis_strictly_inside_snapshot"]
            and data["snapshot_strictly_inside_collect"]
            else "no",
            True,
        ),
        ExperimentRow(
            "shared vertex set",
            "12 views",
            str(data["immediate_snapshot"].vertices),
            data["immediate_snapshot"].vertices == 12,
        ),
    ]
    record_table(
        "E1_fig8",
        render_table("E1 / Fig. 8 — one-round complexes, n = 3", rows),
    )
