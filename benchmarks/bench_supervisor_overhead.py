"""BENCH (supervisor) — the cost of supervision on a fault-free map.

:func:`repro.parallel.supervisor.supervised_map` wraps every task in an
attempt payload (pickling the function, index, and policy per task) and
folds structured attempt records on the way back.  On the happy path —
no faults, no retries — that bookkeeping must stay in the noise: the
resilience story is free until something actually breaks.

This harness times a chaos campaign — the workload the supervisor
actually fronts (``run_campaign`` routes its shards through
``supervised_map``) — in two configurations:

* ``baseline`` — the raw primitive: the campaign's trials through
  :func:`~repro.parallel.pool.parallel_map` at ``workers=1`` (the
  pre-PR-8 execution path for a sharded campaign);
* ``supervised`` — the same payloads through ``supervised_map`` at
  ``workers=1`` (the supervisor's in-process serial path: identical
  trial code plus the full attempt/retry bookkeeping, no pool noise).

The configurations are timed *interleaved* — every repeat measures both
back to back and the minimum per configuration is kept — for the same
reason as ``bench_telemetry_overhead.py``: sequential blocks bake
clock-speed drift into the comparison.  The verdict: supervision may
cost at most 3 % over the raw loop.  Results go to
``benchmarks/results/BENCH_supervisor_overhead.json``.

Run directly::

    PYTHONPATH=src python benchmarks/bench_supervisor_overhead.py
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from datetime import datetime, timezone

from repro.faults import CampaignConfig
from repro.faults.campaign import get_cell, run_trial
from repro.parallel.pool import parallel_map
from repro.parallel.supervisor import supervised_map

#: Acceptance threshold: fault-free supervision may cost at most this.
MAX_OVERHEAD_PCT = 3.0

RESULTS_PATH = (
    pathlib.Path(__file__).parent
    / "results"
    / "BENCH_supervisor_overhead.json"
)

CONFIG = CampaignConfig(cell="aa", n=3, t=1, executions=60, seed=0)


def _trial_payload(index: int):
    return (CONFIG, get_cell(CONFIG.cell), index)


def _run_one_trial(payload) -> object:
    config, spec, index = payload
    return run_trial(config, spec, index)


def _payloads() -> list:
    return [_trial_payload(i) for i in range(CONFIG.executions)]


def _time_baseline() -> float:
    payloads = _payloads()
    start = time.perf_counter()
    outcome = parallel_map(_run_one_trial, payloads, workers=1)
    elapsed = time.perf_counter() - start
    assert outcome.completed == CONFIG.executions
    return elapsed


def _time_supervised() -> float:
    payloads = _payloads()
    start = time.perf_counter()
    outcome = supervised_map(_run_one_trial, payloads, workers=1)
    elapsed = time.perf_counter() - start
    assert outcome.completed == CONFIG.executions
    return elapsed


def run(repeats: int = 7) -> dict:
    """Measure both configurations and return the result record."""
    # One untimed warmup absorbs import and cell-registry effects.
    _time_baseline()
    _time_supervised()
    baseline = supervised = float("inf")
    for _ in range(repeats):
        baseline = min(baseline, _time_baseline())
        supervised = min(supervised, _time_supervised())

    overhead_pct = (
        (supervised - baseline) / baseline * 100.0 if baseline else 0.0
    )
    return {
        # Standard BENCH_<name>.json keys (see benchmarks/conftest.py).
        "name": "supervisor-overhead",
        "workers": 1,
        "wall_s": supervised,
        "facets": None,
        "timestamp": datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
        "benchmark": "supervisor-fault-free-overhead",
        "workload": f"chaos campaign {CONFIG.cell} x{CONFIG.executions}",
        "repeats": repeats,
        "baseline_s": baseline,
        "supervised_s": supervised,
        "overhead_pct": overhead_pct,
        "max_overhead_pct": MAX_OVERHEAD_PCT,
        "pass": overhead_pct < MAX_OVERHEAD_PCT,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repeats",
        type=int,
        default=7,
        help="timed repetitions per configuration (min is kept)",
    )
    args = parser.parse_args(argv)
    record = run(repeats=args.repeats)
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(
        f"baseline {record['baseline_s'] * 1000.0:.2f} ms | "
        f"supervised {record['supervised_s'] * 1000.0:.2f} ms"
    )
    print(
        f"fault-free supervision overhead: "
        f"{record['overhead_pct']:.2f}% "
        f"(budget {MAX_OVERHEAD_PCT}%) -> "
        + ("PASS" if record["pass"] else "FAIL")
    )
    print(f"wrote {RESULTS_PATH}")
    return 0 if record["pass"] else 1


if __name__ == "__main__":
    sys.exit(main())
