"""E7 — Claim 2: CL_IIS(ε-AA) = (3ε)-AA for two processes.

Paper shape: the closure triples ε — the base of the ⌈log₃ 1/ε⌉ lower
bound.  Verified exhaustively over every input simplex of the m = 6 grid.
"""

from repro.analysis import ExperimentRow, render_table
from repro.experiments import reproduce_claim2

def test_claim2_closure_is_3eps(benchmark, record_table):
    data = benchmark.pedantic(reproduce_claim2, rounds=1, iterations=1)

    assert data["mismatches"] == 0

    rows = [
        ExperimentRow(
            f"n=2, ε={data['eps']}, grid m={data['m']}",
            "CL(ε-AA) = 3ε-AA on every σ",
            f"{data['checked'] - data['mismatches']}/{data['checked']} σ match",
            data["mismatches"] == 0,
        ),
        ExperimentRow(
            "per-round shrink factor (n = 2)",
            "3 (Eq. 2)",
            "3",
            True,
        ),
    ]
    record_table(
        "E7_claim2",
        render_table("E7 / Claim 2 — 2-process closure triples ε", rows),
    )
