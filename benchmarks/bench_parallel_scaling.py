"""Parallel-engine scaling — worker fan-out on the E19/E23 workloads.

Times the two fan-outs that dominate the evaluation suite at different
worker counts and proves the engine's determinism contract on each:

* the 3-process ``P^(3)`` IIS expansion (E19's hot loop, ``13^3 = 2197``
  facets) must produce the *same facet set* at every worker count;
* an E23-style chaos campaign must render a *byte-identical* JSON
  report at every worker count (seeds derive from ``(campaign seed,
  trial index)`` alone; shards fold in ascending index order).

Wall-clock speedup is asserted only when the host actually has the
cores (``os.cpu_count()``): on a single-core container the pool still
runs — and must still be bit-identical — but cannot be faster.  The
default run records the 1- and 2-worker baselines in
``BENCH_parallel.json``; the 4-worker sweep is marked ``slow`` and
records ``BENCH_parallel-w4.json``.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.faults import CampaignConfig, report_to_json, run_campaign
from repro.models import ImmediateSnapshotModel
from repro.models.protocol import ProtocolOperator
from repro.parallel import parallel_map
from repro.topology import Simplex

ROUNDS = 3
EXPECTED_FACETS = 13**ROUNDS


def _triangle() -> Simplex:
    return Simplex((i, f"x{i}") for i in range(1, 4))


def _expand(workers: int):
    """Cold-cache ``P^(3)`` expansion; returns (wall seconds, facets)."""
    operator = ProtocolOperator(ImmediateSnapshotModel())
    start = time.perf_counter()
    result = operator.of_simplex(_triangle(), ROUNDS, workers=workers)
    return time.perf_counter() - start, result.facets


def _campaign(workers: int):
    """E23-style chaos slice; returns (wall seconds, canonical JSON)."""
    config = CampaignConfig(
        cell="aa-broken", n=3, t=1, executions=60, seed=7
    )
    start = time.perf_counter()
    report = run_campaign(config, workers=workers)
    wall = time.perf_counter() - start
    rendered = json.dumps(report_to_json(report), sort_keys=True)
    return wall, rendered


def _warm_pool(workers: int) -> None:
    """Fork the workers before timing so pool start-up is not billed."""
    parallel_map(len, [(), ()], workers=workers, label="warmup")


def _sweep(benchmark, workers: int, bench_name: str) -> None:
    _warm_pool(workers)
    serial_expand_s, serial_facets = _expand(1)
    parallel_expand_s, parallel_facets = benchmark.pedantic(
        _expand, args=(workers,), rounds=1, iterations=1
    )
    assert len(serial_facets) == EXPECTED_FACETS
    assert parallel_facets == serial_facets

    serial_chaos_s, serial_json = _campaign(1)
    parallel_chaos_s, parallel_json = _campaign(workers)
    assert parallel_json == serial_json  # byte-identical report

    serial_s = serial_expand_s + serial_chaos_s
    parallel_s = parallel_expand_s + parallel_chaos_s
    speedup = serial_s / parallel_s if parallel_s else 0.0
    cores = os.cpu_count() or 1
    if cores >= workers:
        # The acceptance bar for the engine; only meaningful when the
        # host can actually run the workers concurrently.
        assert speedup >= 1.6, (
            f"{workers}-worker sweep only {speedup:.2f}x over serial "
            f"on a {cores}-core host"
        )
    benchmark.extra_info.update(
        bench_name=bench_name,
        workers=workers,
        facets=EXPECTED_FACETS,
        wall_s=parallel_s,
        serial_wall_s=serial_s,
        expand_wall_s=parallel_expand_s,
        chaos_wall_s=parallel_chaos_s,
        speedup=round(speedup, 3),
        cores=cores,
        byte_identical=True,
    )


def test_parallel_scaling_two_workers(benchmark):
    _sweep(benchmark, workers=2, bench_name="parallel")


@pytest.mark.slow
def test_parallel_scaling_four_workers(benchmark):
    _sweep(benchmark, workers=4, bench_name="parallel-w4")
