"""E19 (scaling) — how the combinatorial substrate grows.

Characterizes the implementation's scale limits declared in DESIGN.md:

* the chromatic subdivision's facet count is the Fubini number (ordered
  set partitions): 1, 3, 13, 75, 541 for n = 1..5;
* iterating IIS multiplies facets by 13 per round (n = 3);
* the closure computer's (Δ(σ), τ)-memoization collapses a full grid sweep
  to the number of distinct windows — measured hit counts.
"""

from repro.analysis import ExperimentRow, render_table
from repro.experiments import reproduce_scaling

FUBINI = {1: 1, 2: 3, 3: 13, 4: 75, 5: 541}

def test_scaling(benchmark, record_table):
    data = benchmark.pedantic(reproduce_scaling, rounds=1, iterations=1)

    rows = []
    for n, count in data["subdivision"].items():
        assert count == FUBINI[n]
        rows.append(
            ExperimentRow(
                f"subdivision facets, n={n}",
                f"Fubini({n}) = {FUBINI[n]}",
                str(count),
                count == FUBINI[n],
            )
        )
    for t, count in data["rounds"].items():
        expected = 13**t if t else 1
        assert count == expected
        rows.append(
            ExperimentRow(
                f"P^({t}) facets, n=3",
                f"13^{t} = {expected}",
                str(count),
                count == expected,
            )
        )
    assert data["cache_entries"] < data["queries"]
    rows.append(
        ExperimentRow(
            "closure sweep memoization (m=4, n=2)",
            "windows ≪ membership queries",
            f"{data['cache_entries']} cache entries for "
            f"{data['queries']} queries",
            data["cache_entries"] < data["queries"],
        )
    )
    record_table(
        "E19_scaling",
        render_table("E19 (scaling) — substrate growth characteristics", rows),
    )
