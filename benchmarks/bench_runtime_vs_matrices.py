"""E16 — Appendix A: operation-level executions ⟷ matrix schedules.

Paper shape: the matrices of Appendix A.3.4 characterize exactly the view
maps real interleavings can produce, with the strict hierarchy
IS ⊆ snapshot ⊆ collect.  Measured: 1000 random op-level rounds per model
land inside (and, for n = 3, cover much of) the corresponding matrix sets.
"""

from repro.analysis import ExperimentRow, render_table
from repro.experiments import reproduce_runtime_vs_matrices

def test_runtime_vs_matrices(benchmark, record_table):
    report = benchmark.pedantic(
        reproduce_runtime_vs_matrices, rounds=1, iterations=1
    )

    rows = []
    expectations = {"immediate": 13, "snapshot": 19, "collect": 25}
    for name, data in report.items():
        assert data["sound"], name
        assert data["total"] == expectations[name]
        rows.append(
            ExperimentRow(
                f"{name}: op-level views ⊆ matrices",
                "yes",
                str(data["sound"]),
                data["sound"],
            )
        )
        rows.append(
            ExperimentRow(
                f"{name}: distinct view maps reached",
                f"≤ {expectations[name]}",
                f"{data['reached']}/{data['total']}",
                data["reached"] <= data["total"],
            )
        )
    # The IS executor is complete for n = 3 at this sample size.
    assert report["immediate"]["reached"] == 13
    record_table(
        "E16_runtime_vs_matrices",
        render_table(
            "E16 / Appendix A — real interleavings vs matrix schedules", rows
        ),
    )
